//! Offline stand-in for `serde_json`.
//!
//! Provides the two entry points the workspace uses: [`to_string`] (serialization through the
//! shim's `serde::Serialize`) and [`from_str`] into a dynamically typed [`Value`] (no typed
//! deserialization exists anywhere in the workspace).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// A serialization/parsing error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// A dynamically typed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-integer (or out-of-range) number, stored as `f64`.
    Number(f64),
    /// An integer literal, stored exactly (`i128` covers the full `u64` and `i64` ranges, so
    /// 64-bit seeds round-trip without the 2⁵³ precision loss of `f64`).
    Integer(i128),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with string keys.
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The string content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content, when this is a number (lossy for integers beyond 2⁵³).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Integer(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The exact unsigned-integer content, when this is an in-range integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Integer(i) => u64::try_from(*i).ok(),
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The exact signed-integer content, when this is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => i64::try_from(*i).ok(),
            Value::Number(n)
                if n.fract() == 0.0 && n.abs() <= (1u64 << 53) as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The boolean content, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object member by key, when this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_value_int_eq {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Integer(i) => *i == *other as i128,
                    Value::Number(n) => *n == *other as f64,
                    _ => false,
                }
            }
        }
    )*};
}

impl_value_int_eq!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Parses a JSON document into a [`Value`].
pub fn from_str(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at offset {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected , or ] at offset {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error(format!("expected : at offset {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error(format!("expected , or }} at offset {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at offset {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at offset {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error("invalid escape".into())),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input came from &str, so boundaries are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).unwrap_or("\u{fffd}"));
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error("invalid number".into()))?;
    // Integer literals are kept exact (f64 would corrupt 64-bit values beyond 2^53).
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(i) = text.parse::<i128>() {
            return Ok(Value::Integer(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| Error(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = from_str(r#"{"label":"x","metrics":{"m":1.5},"ok":true,"xs":[1,2,null]}"#)
            .unwrap();
        assert_eq!(v["label"], "x");
        assert_eq!(v["metrics"]["m"], 1.5);
        assert_eq!(v["ok"], true);
        assert_eq!(v["xs"][1], 2.0);
        assert_eq!(v["xs"][2], Value::Null);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn roundtrips_shim_serialization() {
        let mut map = std::collections::BTreeMap::new();
        map.insert("k".to_string(), 2.5f64);
        let json = to_string(&map).unwrap();
        assert_eq!(from_str(&json).unwrap()["k"], 2.5);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn parses_strings_with_escapes() {
        let v = from_str(r#""a\"bA\n""#).unwrap();
        assert_eq!(v, "a\"bA\n");
    }

    #[test]
    fn integers_beyond_f64_precision_round_trip_exactly() {
        // 2^63 + 1 is not representable in f64; the Integer variant keeps it exact.
        let big: u64 = (1 << 63) + 1;
        let v = from_str(&to_string(&big).unwrap()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        assert_eq!(v, big);
        // Negative integers and plain floats keep working.
        assert_eq!(from_str("-42").unwrap().as_i64(), Some(-42));
        assert_eq!(from_str("-42").unwrap().as_f64(), Some(-42.0));
        assert_eq!(from_str("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(from_str("3").unwrap().as_f64(), Some(3.0));
        // Exponent literals parse as floats but still convert when integral and in range.
        assert_eq!(from_str("1e3").unwrap().as_u64(), Some(1000));
        assert_eq!(from_str("2.5").unwrap().as_u64(), None);
    }
}
