//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace vendors a minimal
//! serialization facility under the `serde` name.  [`Serialize`] writes JSON directly into a
//! `String` (the only output format the workspace uses — see the sibling `serde_json` shim);
//! [`Deserialize`] is a marker trait kept so `#[derive(Deserialize)]` attributes in the
//! protocol crates continue to compile (nothing in the workspace deserializes into typed
//! values — JSON is only ever parsed into `serde_json::Value`).
//!
//! The derive macros live in the sibling `serde_derive` proc-macro crate and are re-exported
//! here, mirroring upstream serde's `derive` feature.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A type that can write itself as JSON.
///
/// The derive macro emits field-by-field implementations matching upstream serde's JSON data
/// model: structs as objects, unit enum variants as strings, data-carrying variants as
/// externally tagged single-key objects.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Marker trait standing in for serde's `Deserialize`.
///
/// Derived impls carry no behaviour; the workspace never deserializes into typed values.
pub trait Deserialize {}

/// Escapes and appends a string literal body (without the surrounding quotes).
pub fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

macro_rules! impl_serialize_display {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_serialize_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            // JSON has no NaN/Inf; serde_json emits null for them.
            out.push_str("null");
        }
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        f64::from(*self).serialize_json(out);
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}
impl Deserialize for bool {}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        out.push('"');
        let mut buf = [0u8; 4];
        escape_into(self.encode_utf8(&mut buf), out);
        out.push('"');
    }
}
impl Deserialize for char {}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        out.push('"');
        escape_into(self, out);
        out.push('"');
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        self.as_str().serialize_json(out);
    }
}
impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}
impl<T> Deserialize for Option<T> {}

fn serialize_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}
impl<T> Deserialize for Vec<T> {}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

/// Types usable as JSON object keys.
pub trait MapKey {
    /// Appends the key (quoted) to `out`.
    fn write_key(&self, out: &mut String);
}

impl MapKey for String {
    fn write_key(&self, out: &mut String) {
        self.as_str().write_key(out);
    }
}

impl MapKey for str {
    fn write_key(&self, out: &mut String) {
        out.push('"');
        escape_into(self, out);
        out.push('"');
    }
}

impl<K: MapKey + ?Sized> MapKey for &K {
    fn write_key(&self, out: &mut String) {
        (**self).write_key(out);
    }
}

macro_rules! impl_int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn write_key(&self, out: &mut String) {
                out.push('"');
                out.push_str(&self.to_string());
                out.push('"');
            }
        }
    )*};
}

impl_int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn serialize_map<'a, K: MapKey + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
    out: &mut String,
) {
    out.push('{');
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        k.write_key(out);
        out.push(':');
        v.serialize_json(out);
    }
    out.push('}');
}

impl<K: MapKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        serialize_map(self.iter(), out);
    }
}
impl<K, V> Deserialize for std::collections::BTreeMap<K, V> {}

impl<K: MapKey, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize_json(&self, out: &mut String) {
        serialize_map(self.iter(), out);
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}

impl_serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::Serialize;
    use std::collections::BTreeMap;

    fn to_json<T: Serialize>(v: &T) -> String {
        let mut out = String::new();
        v.serialize_json(&mut out);
        out
    }

    #[test]
    fn primitives_and_containers_serialize_as_json() {
        assert_eq!(to_json(&5u64), "5");
        assert_eq!(to_json(&true), "true");
        assert_eq!(to_json(&"a\"b"), "\"a\\\"b\"");
        assert_eq!(to_json(&vec![1, 2, 3]), "[1,2,3]");
        assert_eq!(to_json(&Some(1.5f64)), "1.5");
        assert_eq!(to_json(&None::<u8>), "null");
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 2u32);
        assert_eq!(to_json(&m), "{\"k\":2}");
        assert_eq!(to_json(&(1u8, "x")), "[1,\"x\"]");
    }
}
