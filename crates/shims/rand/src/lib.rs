//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace vendors a minimal,
//! dependency-free implementation of the subset of the `rand` 0.8 API the simulator uses:
//! [`rngs::StdRng`] (a seeded xoshiro256** generator), [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The stream of numbers differs from upstream `rand`'s `StdRng` (which is ChaCha-based);
//! every consumer in this workspace only relies on *seeded determinism*, not on a specific
//! stream, so the substitution is behaviour-preserving for all experiments and tests.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniformly sampleable type over a range (the shim's analogue of `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching `rand`'s contract.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a "natural" full-domain distribution (the shim's analogue of `Standard`).
pub trait Standard: Sized {
    /// Draws one full-domain sample.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-domain inclusive range of a 128-bit-wide type cannot occur for the
                    // integer widths below; span == 0 only for the full u128 domain.
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A uniform draw from `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + (end - start) * unit_f64(rng)
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

/// The user-facing extension trait: `gen`, `gen_range`, `gen_bool`.
pub trait Rng: RngCore {
    /// Draws a full-domain sample of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws a uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            unit_f64(self) < p
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256** seeded through SplitMix64.
    ///
    /// Not the upstream ChaCha12-based `StdRng`; see the crate docs for why that is fine here.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn full_domain_samples_cover_small_types() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..2_000 {
            seen.insert(rng.gen::<u8>());
        }
        assert!(seen.len() > 200);
    }
}
