//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use — benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, throughput annotations, and the
//! `criterion_group!`/`criterion_main!` macros — over plain wall-clock timing.  No statistical
//! machinery: each bench runs a short calibration pass, then measures `sample_size` samples
//! and reports the median, mean, and throughput on stdout.
//!
//! Environment knobs:
//!
//! * `CRITERION_SAMPLE_SIZE` — overrides every group's sample size (useful for smoke runs);
//! * `CRITERION_TARGET_MS` — per-sample time budget in milliseconds (default 200).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== group {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10, throughput: None }
    }
}

/// How many "items" one iteration processes, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter string.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing a name, sample size, and throughput annotation.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput of subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&self.name, &id.id, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.id, self.throughput);
        self
    }

    /// Ends the group (upstream criterion finalizes reports here; the shim prints eagerly).
    pub fn finish(&mut self) {}
}

/// Times a closure, handed to every bench body.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        let sample_size = std::env::var("CRITERION_SAMPLE_SIZE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(sample_size);
        Bencher { sample_size, samples: Vec::new(), iters_per_sample: 1 }
    }

    /// Measures `routine`: calibrates the per-sample iteration count against the time budget,
    /// then records `sample_size` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let target_ms: u64 = std::env::var("CRITERION_TARGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(200);
        let target = Duration::from_millis(target_ms);
        // Calibration: time one iteration, derive how many fit the budget.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            eprintln!("{group}/{id}: no samples recorded");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let mut sorted = per_iter.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let mut line = format!(
            "{group}/{id}: median {} mean {} ({} samples x {} iters)",
            format_secs(median),
            format_secs(mean),
            self.samples.len(),
            self.iters_per_sample,
        );
        match throughput {
            Some(Throughput::Elements(n)) => {
                line.push_str(&format!(", {:.0} elem/s", n as f64 / median));
            }
            Some(Throughput::Bytes(n)) => {
                line.push_str(&format!(", {:.0} B/s", n as f64 / median));
            }
            None => {}
        }
        eprintln!("{line}");
    }
}

fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_shapes_compile_and_run() {
        std::env::set_var("CRITERION_SAMPLE_SIZE", "2");
        std::env::set_var("CRITERION_TARGET_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_function("plain-name", |b| b.iter(|| black_box(5)));
        group.finish();
    }
}
