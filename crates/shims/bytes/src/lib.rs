//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the wire codec uses: [`BytesMut`] as a growable buffer with the
//! little-endian `put_*` methods, [`Bytes`] as an immutable byte container, and [`Buf`] as a
//! cursor over `&[u8]` with the little-endian `get_*` methods.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable contiguous byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: std::sync::Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: std::sync::Arc::from(&[][..]) }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: std::sync::Arc::from(data) }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The bytes as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: std::sync::Arc::from(v.into_boxed_slice()) }
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Removes all content, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side extension methods (the `bytes::BufMut` subset the codec uses).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, bytes: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

/// Read-side cursor methods (the `bytes::Buf` subset the codec uses).
///
/// # Panics
///
/// Like upstream `bytes`, the `get_*` methods panic when the buffer holds too few bytes;
/// callers are expected to check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes, advancing the cursor.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// True when at least one byte is left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_bytes(2).try_into().unwrap())
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_get_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u64_le(0x0102030405060708);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 11);
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16_le(), 0xBEEF);
        assert_eq!(cursor.get_u64_le(), 0x0102030405060708);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn clear_keeps_reusing_the_buffer() {
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        buf.clear();
        assert!(buf.is_empty());
        buf.put_u8(2);
        assert_eq!(&buf[..], &[2]);
    }
}
