//! Derive macros for the vendored `serde` shim.
//!
//! The offline build environment has neither `syn` nor `quote`, so the input item is parsed
//! directly from the `proc_macro` token trees.  Supported shapes cover everything this
//! workspace derives on: non-generic structs (named, tuple, unit) and non-generic enums with
//! unit, tuple, and struct variants.  Output follows serde's JSON data model (externally
//! tagged enums).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field-or-variant description.
enum Shape {
    /// `struct S;`
    UnitStruct,
    /// `struct S { a: T, b: U }` — field names in order.
    NamedStruct(Vec<String>),
    /// `struct S(T, U);` — number of fields.
    TupleStruct(usize),
    /// `enum E { ... }` — variants as (name, fields).
    Enum(Vec<(String, VariantFields)>),
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives the shim's `serde::Serialize` (JSON writer) for the item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match shape {
        Shape::UnitStruct => "out.push_str(\"null\");".to_string(),
        Shape::NamedStruct(fields) => {
            let mut code = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    code.push_str("out.push(',');\n");
                }
                code.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\nserde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            code.push_str("out.push('}');");
            code
        }
        Shape::TupleStruct(1) => {
            "serde::Serialize::serialize_json(&self.0, out);".to_string()
        }
        Shape::TupleStruct(n) => {
            let mut code = String::from("out.push('[');\n");
            for i in 0..n {
                if i > 0 {
                    code.push_str("out.push(',');\n");
                }
                code.push_str(&format!("serde::Serialize::serialize_json(&self.{i}, out);\n"));
            }
            code.push_str("out.push(']');");
            code
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, fields) in &variants {
                match fields {
                    VariantFields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{v} => {{ out.push_str(\"\\\"{v}\\\"\"); }}\n"
                        ));
                    }
                    VariantFields::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{v}(f0) => {{ out.push_str(\"{{\\\"{v}\\\":\"); \
                             serde::Serialize::serialize_json(f0, out); out.push('}}'); }}\n"
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let mut inner = format!(
                            "{name}::{v}({}) => {{ out.push_str(\"{{\\\"{v}\\\":[\");\n",
                            binds.join(", ")
                        );
                        for (i, b) in binds.iter().enumerate() {
                            if i > 0 {
                                inner.push_str("out.push(',');\n");
                            }
                            inner.push_str(&format!(
                                "serde::Serialize::serialize_json({b}, out);\n"
                            ));
                        }
                        inner.push_str("out.push_str(\"]}\"); }\n");
                        arms.push_str(&inner);
                    }
                    VariantFields::Named(fs) => {
                        let mut inner = format!(
                            "{name}::{v} {{ {} }} => {{ out.push_str(\"{{\\\"{v}\\\":{{\");\n",
                            fs.join(", ")
                        );
                        for (i, f) in fs.iter().enumerate() {
                            if i > 0 {
                                inner.push_str("out.push(',');\n");
                            }
                            inner.push_str(&format!(
                                "out.push_str(\"\\\"{f}\\\":\");\nserde::Serialize::serialize_json({f}, out);\n"
                            ));
                        }
                        inner.push_str("out.push_str(\"}}\"); }\n");
                        arms.push_str(&inner);
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let code = format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut String) {{\n{body}\n}}\n}}"
    );
    code.parse().expect("generated Serialize impl must parse")
}

/// Derives the shim's marker `serde::Deserialize` for the item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, _) = parse_item(input);
    format!("impl serde::Deserialize for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl must parse")
}

/// Parses a struct or enum item down to the pieces the derives need.
fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut trees = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    let kind = loop {
        match trees.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let _bracket = trees.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = trees.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        trees.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                panic!("serde_derive shim: unexpected token `{s}` before struct/enum keyword");
            }
            other => panic!("serde_derive shim: unexpected token {other:?}"),
        }
    };
    let name = match trees.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = trees.peek() {
        if p.as_char() == '<' {
            panic!(
                "serde_derive shim: generic type `{name}` is not supported; \
                 write the Serialize impl by hand"
            );
        }
    }
    if kind == "enum" {
        let body = match trees.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde_derive shim: expected enum body, got {other:?}"),
        };
        return (name, Shape::Enum(parse_variants(body)));
    }
    // Struct: brace body (named), paren body (tuple), or bare `;` (unit).
    match trees.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            (name, Shape::NamedStruct(parse_named_fields(g.stream())))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            (name, Shape::TupleStruct(count_tuple_fields(g.stream())))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => (name, Shape::UnitStruct),
        other => panic!("serde_derive shim: expected struct body, got {other:?}"),
    }
}

/// Extracts field names from a named-field body, skipping attributes, visibility, and types.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut trees = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let field = loop {
            match trees.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _bracket = trees.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = trees.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            trees.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde_derive shim: unexpected field token {other:?}"),
            }
        };
        fields.push(field);
        match trees.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field name, got {other:?}"),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut depth: i32 = 0;
        loop {
            match trees.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

/// Counts the fields of a tuple body (top-level commas at angle depth 0).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth: i32 = 0;
    let mut saw_tokens = false;
    let mut last_was_comma = false;
    for tree in body {
        saw_tokens = true;
        last_was_comma = false;
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    last_was_comma = true;
                }
                _ => {}
            }
        }
    }
    if !saw_tokens {
        0
    } else if last_was_comma {
        count
    } else {
        count + 1
    }
}

/// Parses enum variants (unit, tuple, or struct-like).
fn parse_variants(body: TokenStream) -> Vec<(String, VariantFields)> {
    let mut variants = Vec::new();
    let mut trees = body.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        let variant = loop {
            match trees.next() {
                None => return variants,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _bracket = trees.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde_derive shim: unexpected variant token {other:?}"),
            }
        };
        let fields = match trees.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                trees.next();
                VariantFields::Named(parse_named_fields(stream))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let stream = g.stream();
                trees.next();
                VariantFields::Tuple(count_tuple_fields(stream))
            }
            _ => VariantFields::Unit,
        };
        variants.push((variant, fields));
        // Consume the trailing comma, if any.
        if let Some(TokenTree::Punct(p)) = trees.peek() {
            if p.as_char() == ',' {
                trees.next();
            }
        }
    }
}
