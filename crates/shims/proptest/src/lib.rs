//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: range and `any::<T>()`
//! strategies, tuples of strategies, `prop_map`, `Just`, `prop_oneof!`,
//! `proptest::collection::vec`, per-block `ProptestConfig { cases, .. }`, and the `proptest!`
//! macro with `pattern in strategy` arguments.
//!
//! Differences from upstream: cases are generated from a deterministic per-test seed (derived
//! from the test name, overridable with `PROPTEST_SEED`) and failing cases are **not shrunk** —
//! the panic message carries the test name, case number, and seed so a failure can be replayed
//! exactly.  `PROPTEST_CASES` overrides the per-run case count.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
pub use rand::SeedableRng;

/// Run-time configuration of one `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for upstream compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

impl ProptestConfig {
    /// The effective case count: the config's, unless `PROPTEST_CASES` overrides it.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// A generator of random values (no shrinking in the shim).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps the generated value through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!` to mix heterogeneous arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        boxed_arm(self)
    }
}

/// A type-erased strategy handle.
pub struct BoxedStrategy<T> {
    generate: Box<dyn Fn(&mut StdRng) -> T>,
}

/// Type-erases one strategy (the helper behind `prop_oneof!` arms).
pub fn boxed_arm<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy { generate: Box::new(move |rng| strategy.generate(rng)) }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.generate)(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a full-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rand::Rng::gen(rng)
            }
        }
    )*};
}

impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// The strategy behind [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// A strategy for `Vec<T>` with a length drawn from `len` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = len.bounds();
        VecStrategy { element, min, max }
    }

    /// Length specifications accepted by [`vec()`].
    pub trait SizeRange {
        /// Inclusive length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec length range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Derives a stable 64-bit seed from a test name.
pub fn seed_for(name: &str) -> u64 {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = seed.parse() {
            return seed;
        }
    }
    // FNV-1a, good enough to decorrelate test names.
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Uniformly picks one of several boxed strategies.
pub struct OneOf<T> {
    /// The candidate strategies.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        assert!(!self.options.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rand::Rng::gen_range(rng, 0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Uniform choice among heterogeneous strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf { options: vec![$($crate::boxed_arm($strategy)),+] }
    };
}

/// Asserts inside a `proptest!` body (the shim simply panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
}

/// The test-declaration macro: each `fn name(pat in strategy, ...) { body }` becomes a
/// `#[test]` running `cases` seeded random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (
        $(#[$first_meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(
            @with_config ($crate::ProptestConfig::default())
            $(#[$first_meta])*
            fn $($rest)*
        );
    };
    (
        @with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let cases = config.effective_cases();
                let base_seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..u64::from(cases) {
                    let seed = base_seed.wrapping_add(case);
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut rng = <$crate::__StdRng as $crate::SeedableRng>::seed_from_u64(seed);
                        $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                        $body
                    }));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest case {}/{} of {} failed (replay with PROPTEST_SEED={} PROPTEST_CASES=1)",
                            case + 1, cases, stringify!($name), seed,
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Re-export used by the `proptest!` expansion.
pub use rand::rngs::StdRng as __StdRng;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, bool)> {
        (1usize..10, any::<bool>()).prop_map(|(n, b)| (n * 2, b))
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(n in 3usize..=7, x in 0.0f64..1.0) {
            prop_assert!((3..=7).contains(&n));
            prop_assert!((0.0..1.0).contains(&x));
        }

        #[test]
        fn mapped_tuples_apply_the_function((n, _b) in pair()) {
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_and_collections_generate(xs in collection::vec(any::<u8>(), 0..5),
                                          v in prop_oneof![Just(1u8), Just(2u8), 3u8..=9]) {
            prop_assert!(xs.len() < 5);
            prop_assert!((1..=9).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

        #[test]
        fn config_override_applies(_x in any::<u64>()) {
            // Runs 3 cases; nothing to assert beyond successful generation.
        }
    }
}
