//! Auxiliary topologies used by the baseline protocols: oriented rings and complete graphs.

use crate::{ChannelLabel, NodeId, Topology};
use serde::{Deserialize, Serialize};

/// An oriented (unidirectional) ring of `n` processes with a distinguished root (node `0`).
///
/// This is the topology of the prior self-stabilizing k-out-of-ℓ exclusion protocols the
/// paper cites as related work (Datta–Hadid–Villain).  Every process has a single channel,
/// label `0`, on which it *receives* from its predecessor and *sends* to its successor:
/// sending on channel `0` from node `i` delivers into node `(i + 1) mod n`'s channel `0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ring {
    n: usize,
}

impl Ring {
    /// Creates a ring of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a ring needs at least one node");
        Ring { n }
    }

    /// Successor of `node` in the orientation of the ring.
    pub fn successor(&self, node: NodeId) -> NodeId {
        (node + 1) % self.n
    }

    /// Predecessor of `node` in the orientation of the ring.
    pub fn predecessor(&self, node: NodeId) -> NodeId {
        (node + self.n - 1) % self.n
    }
}

impl Topology for Ring {
    fn len(&self) -> usize {
        self.n
    }

    fn degree(&self, _node: NodeId) -> usize {
        if self.n == 1 {
            // A single-node ring sends to itself on its only channel.
            1
        } else {
            1
        }
    }

    fn endpoint(&self, node: NodeId, label: ChannelLabel) -> (NodeId, ChannelLabel) {
        assert_eq!(label, 0, "ring nodes only have channel 0");
        (self.successor(node), 0)
    }
}

/// A complete graph on `n` processes, used by the permission-based baseline.
///
/// Node `p` labels its channel to node `q` with `q` if `q < p` and `q - 1` if `q > p`
/// (i.e. the labels `0..n-1` enumerate the other nodes in increasing id order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Complete {
    n: usize,
}

impl Complete {
    /// Creates a complete graph on `n >= 1` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a complete graph needs at least one node");
        Complete { n }
    }

    /// The node reached from `node` through its channel `label`.
    pub fn peer(&self, node: NodeId, label: ChannelLabel) -> NodeId {
        assert!(label < self.n - 1, "label {label} out of range");
        if label < node {
            label
        } else {
            label + 1
        }
    }

    /// The label under which `node` knows `peer`.
    ///
    /// # Panics
    ///
    /// Panics if `peer == node`.
    pub fn label_of(&self, node: NodeId, peer: NodeId) -> ChannelLabel {
        assert_ne!(node, peer, "a node has no channel to itself");
        if peer < node {
            peer
        } else {
            peer - 1
        }
    }
}

impl Topology for Complete {
    fn len(&self) -> usize {
        self.n
    }

    fn degree(&self, _node: NodeId) -> usize {
        self.n - 1
    }

    fn endpoint(&self, node: NodeId, label: ChannelLabel) -> (NodeId, ChannelLabel) {
        let peer = self.peer(node, label);
        (peer, self.label_of(peer, node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_successor_wraps() {
        let r = Ring::new(5);
        assert_eq!(r.successor(4), 0);
        assert_eq!(r.predecessor(0), 4);
        assert_eq!(r.endpoint(3, 0), (4, 0));
        assert_eq!(r.endpoint(4, 0), (0, 0));
    }

    #[test]
    fn ring_degree_is_one() {
        let r = Ring::new(7);
        for v in 0..7 {
            assert_eq!(r.degree(v), 1);
        }
        assert_eq!(r.directed_channels(), 7);
    }

    #[test]
    fn single_node_ring_self_loop() {
        let r = Ring::new(1);
        assert_eq!(r.endpoint(0, 0), (0, 0));
    }

    #[test]
    #[should_panic(expected = "only have channel 0")]
    fn ring_rejects_other_labels() {
        Ring::new(3).endpoint(0, 1);
    }

    #[test]
    fn complete_labels_are_consistent() {
        let c = Complete::new(6);
        for v in 0..6 {
            assert_eq!(c.degree(v), 5);
            for l in 0..5 {
                let (p, pl) = c.endpoint(v, l);
                assert_ne!(p, v);
                let (back, back_l) = c.endpoint(p, pl);
                assert_eq!(back, v);
                assert_eq!(back_l, l);
            }
        }
    }

    #[test]
    fn complete_peer_enumeration() {
        let c = Complete::new(4);
        assert_eq!(c.peer(2, 0), 0);
        assert_eq!(c.peer(2, 1), 1);
        assert_eq!(c.peer(2, 2), 3);
        assert_eq!(c.label_of(2, 3), 2);
        assert_eq!(c.label_of(2, 0), 0);
    }
}
