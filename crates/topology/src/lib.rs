//! Network topologies for the k-out-of-ℓ exclusion reproduction.
//!
//! The paper (Datta, Devismes, Horn, Larmore, IPPS 2009) assumes an *oriented tree*: a rooted
//! tree in which every non-root process knows which incident channel leads to its parent, and
//! channels incident to a process `p` are locally labelled `0..Δp`.  The depth-first token
//! circulation rule ("a token received on channel `i` leaves on channel `(i+1) mod Δp`")
//! turns the tree into a *virtual ring* (the Euler tour of the tree), which is what all token
//! types travel along.
//!
//! This crate provides:
//!
//! * [`OrientedTree`] — the tree model with the paper's channel-labelling convention
//!   (the parent channel of every non-root process is labelled `0`);
//! * [`builders`] — chains, stars, balanced binary trees, caterpillars, brooms, random trees,
//!   and the exact trees drawn in Figures 1–4 of the paper;
//! * [`euler`] — the virtual ring (Euler tour) induced by the DFS retransmission rule;
//! * [`Ring`] and [`Complete`] — auxiliary topologies used by the baseline protocols;
//! * [`graph`] — general rooted graphs plus spanning-tree construction, realising the
//!   extension sketched in the paper's conclusion (composing the protocol with a spanning
//!   tree makes it run on arbitrary rooted networks).
//!
//! Everything implements the [`Topology`] trait consumed by the `treenet` simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod euler;
pub mod graph;
pub mod ring;
pub mod tree;

pub use euler::{VirtualRing, VirtualRingSlot};
pub use graph::{RootedGraph, SpanningTreeMethod};
pub use ring::{Complete, Ring};
pub use tree::OrientedTree;

/// Identifier of a process (node) in a network. Nodes are numbered `0..n`.
pub type NodeId = usize;

/// A locally-scoped channel label, in `0..degree(node)`.
///
/// Following the paper, every non-root process labels the channel towards its parent `0`;
/// the remaining channels (towards children) are labelled `1, 2, ...` in child order.  The
/// root labels its channels `0..Δr` in child order.
pub type ChannelLabel = usize;

/// A communication topology as seen by the simulator.
///
/// A topology is a set of `n` nodes, each with `degree(node)` bidirectional links.  Each link
/// endpoint is identified by a local [`ChannelLabel`].  `endpoint(p, i)` answers: "if `p`
/// sends on its channel `i`, which node receives the message, and on which of *its* local
/// labels does it arrive?".
pub trait Topology {
    /// Number of nodes in the network.
    fn len(&self) -> usize;

    /// True when the network has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of channels incident to `node` (Δ_node in the paper).
    fn degree(&self, node: NodeId) -> usize;

    /// Resolves the remote endpoint of `node`'s channel `label`.
    ///
    /// Returns `(peer, peer_label)`: the neighbouring node and the label under which the
    /// *peer* knows the same link.  Sending on `(node, label)` enqueues onto the peer's
    /// incoming channel `peer_label`.
    fn endpoint(&self, node: NodeId, label: ChannelLabel) -> (NodeId, ChannelLabel);

    /// The distinguished root process (the paper's `r`). Defaults to node `0`.
    fn root(&self) -> NodeId {
        0
    }

    /// Total number of directed channels in the network (`Σ degree`).
    fn directed_channels(&self) -> usize {
        (0..self.len()).map(|v| self.degree(v)).sum()
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn directed_channels_counts_both_directions() {
        let t = builders::chain(4);
        // A chain of 4 nodes has 3 edges, i.e. 6 directed channels.
        assert_eq!(t.directed_channels(), 6);
    }

    #[test]
    fn default_root_is_zero() {
        let t = builders::star(5);
        assert_eq!(t.root(), 0);
    }
}
