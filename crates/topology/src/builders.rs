//! Tree builders: canonical shapes, random trees, and the exact trees of the paper's figures.

use crate::tree::OrientedTree;
use crate::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A chain (path) of `n` nodes rooted at one end: `0 - 1 - 2 - ... - n-1`.
///
/// Chains maximise the virtual-ring distance between the root and the deepest node and are
/// the worst case for the waiting-time experiments (Theorem 2).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn chain(n: usize) -> OrientedTree {
    assert!(n > 0);
    let mut children = vec![Vec::new(); n];
    for v in 0..n - 1 {
        children[v].push(v + 1);
    }
    OrientedTree::from_children(children)
}

/// A star: the root has `n - 1` leaf children.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> OrientedTree {
    assert!(n > 0);
    let mut children = vec![Vec::new(); n];
    children[0] = (1..n).collect();
    OrientedTree::from_children(children)
}

/// A balanced `arity`-ary tree with `n` nodes, filled level by level.
///
/// # Panics
///
/// Panics if `n == 0` or `arity == 0`.
pub fn balanced(n: usize, arity: usize) -> OrientedTree {
    assert!(n > 0 && arity > 0);
    let mut children = vec![Vec::new(); n];
    for v in 1..n {
        let parent = (v - 1) / arity;
        children[parent].push(v);
    }
    OrientedTree::from_children(children)
}

/// A balanced binary tree with `n` nodes.
pub fn binary(n: usize) -> OrientedTree {
    balanced(n, 2)
}

/// A caterpillar: a spine of `spine` nodes, each spine node carrying `legs` leaf children.
///
/// Total node count is `spine * (legs + 1)`.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> OrientedTree {
    assert!(spine > 0);
    let n = spine * (legs + 1);
    let mut children = vec![Vec::new(); n];
    // Spine nodes are 0..spine.
    for s in 0..spine {
        if s + 1 < spine {
            children[s].push(s + 1);
        }
        for l in 0..legs {
            children[s].push(spine + s * legs + l);
        }
    }
    OrientedTree::from_children(children)
}

/// A broom: a handle (chain) of `handle` nodes whose last node has `bristles` leaf children.
///
/// Total node count is `handle + bristles`.
///
/// # Panics
///
/// Panics if `handle == 0`.
pub fn broom(handle: usize, bristles: usize) -> OrientedTree {
    assert!(handle > 0);
    let n = handle + bristles;
    let mut children = vec![Vec::new(); n];
    for v in 0..handle - 1 {
        children[v].push(v + 1);
    }
    for b in 0..bristles {
        children[handle - 1].push(handle + b);
    }
    OrientedTree::from_children(children)
}

/// A uniformly random recursive tree with `n` nodes: node `v > 0` attaches to a uniformly
/// random earlier node. Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: usize, seed: u64) -> OrientedTree {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut parents: Vec<Option<NodeId>> = vec![None; n];
    for v in 1..n {
        parents[v] = Some(rng.gen_range(0..v));
    }
    OrientedTree::from_parents(&parents)
}

/// A random tree with bounded maximum number of children per node, useful to sweep over
/// "bushiness" while keeping `n` fixed. Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics if `n == 0` or `max_children == 0`.
pub fn random_bounded_degree(n: usize, max_children: usize, seed: u64) -> OrientedTree {
    assert!(n > 0 && max_children > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut open: Vec<NodeId> = vec![0];
    for v in 1..n {
        let idx = rng.gen_range(0..open.len());
        let parent = open[idx];
        children[parent].push(v);
        if children[parent].len() >= max_children {
            open.swap_remove(idx);
        }
        open.push(v);
    }
    OrientedTree::from_children(children)
}

/// The 8-node tree of **Figures 1, 2 and 4** of the paper.
///
/// Nodes (paper → id): `r=0, a=1, b=2, c=3, d=4, e=5, f=6, g=7`;
/// `r` has children `a, d`; `a` has children `b, c`; `d` has children `e, f, g`.
pub fn figure1_tree() -> OrientedTree {
    OrientedTree::from_children(vec![
        vec![1, 4],    // r -> a, d
        vec![2, 3],    // a -> b, c
        vec![],        // b
        vec![],        // c
        vec![5, 6, 7], // d -> e, f, g
        vec![],        // e
        vec![],        // f
        vec![],        // g
    ])
}

/// Paper-name lookup for [`figure1_tree`] nodes: returns the id of `"r"`, `"a"`, ... `"g"`.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn figure1_node(name: &str) -> NodeId {
    match name {
        "r" => 0,
        "a" => 1,
        "b" => 2,
        "c" => 3,
        "d" => 4,
        "e" => 5,
        "f" => 6,
        "g" => 7,
        other => panic!("unknown figure-1 node name {other:?}"),
    }
}

/// The 3-node tree of **Figure 3** of the paper: root `r = 0` with children `a = 1`, `b = 2`.
pub fn figure3_tree() -> OrientedTree {
    OrientedTree::from_children(vec![vec![1, 2], vec![], vec![]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    #[test]
    fn chain_shape() {
        let t = chain(6);
        assert_eq!(t.len(), 6);
        assert_eq!(t.height(), 5);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.degree(0), 1);
        assert_eq!(t.degree(3), 2);
        assert_eq!(t.degree(5), 1);
    }

    #[test]
    fn star_shape() {
        let t = star(7);
        assert_eq!(t.degree(0), 6);
        assert_eq!(t.height(), 1);
        assert_eq!(t.leaf_count(), 6);
    }

    #[test]
    fn balanced_binary_shape() {
        let t = binary(7);
        assert_eq!(t.height(), 2);
        assert_eq!(t.children(0), &[1, 2]);
        assert_eq!(t.children(1), &[3, 4]);
        assert_eq!(t.children(2), &[5, 6]);
    }

    #[test]
    fn caterpillar_shape() {
        let t = caterpillar(3, 2);
        assert_eq!(t.len(), 9);
        // Only the 6 legs are leaves; every spine node has at least its legs as children.
        assert_eq!(t.leaf_count(), 6);
    }

    #[test]
    fn caterpillar_spine_is_connected() {
        let t = caterpillar(4, 1);
        assert_eq!(t.len(), 8);
        assert_eq!(t.depth(3), 3);
    }

    #[test]
    fn broom_shape() {
        let t = broom(3, 4);
        assert_eq!(t.len(), 7);
        assert_eq!(t.height(), 3);
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.degree(2), 5); // parent + 4 bristles
    }

    #[test]
    fn random_tree_is_deterministic() {
        let a = random_tree(40, 123);
        let b = random_tree(40, 123);
        assert_eq!(a, b);
        let c = random_tree(40, 124);
        assert_ne!(a, c);
    }

    #[test]
    fn random_bounded_degree_respects_bound() {
        for seed in 0..5 {
            let t = random_bounded_degree(50, 3, seed);
            for v in 0..t.len() {
                assert!(t.children(v).len() <= 3);
            }
        }
    }

    #[test]
    fn figure1_tree_matches_paper() {
        let t = figure1_tree();
        assert_eq!(t.len(), 8);
        assert_eq!(t.children(figure1_node("r")), &[1, 4]);
        assert_eq!(t.children(figure1_node("a")), &[2, 3]);
        assert_eq!(t.children(figure1_node("d")), &[5, 6, 7]);
        assert_eq!(t.degree(figure1_node("d")), 4);
        assert!(t.is_leaf(figure1_node("g")));
    }

    #[test]
    fn figure3_tree_matches_paper() {
        let t = figure3_tree();
        assert_eq!(t.len(), 3);
        assert_eq!(t.degree(0), 2);
        assert!(t.is_leaf(1));
        assert!(t.is_leaf(2));
    }

    #[test]
    fn builders_accept_minimal_sizes() {
        assert_eq!(chain(1).len(), 1);
        assert_eq!(star(1).len(), 1);
        assert_eq!(balanced(1, 3).len(), 1);
        assert_eq!(broom(1, 0).len(), 1);
        assert_eq!(random_tree(1, 0).len(), 1);
    }
}
