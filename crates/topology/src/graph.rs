//! General rooted graphs and spanning-tree construction.
//!
//! The paper's conclusion notes that the oriented-tree protocol extends to arbitrary rooted
//! networks by composing it with a (self-stabilizing) spanning-tree construction.  This module
//! provides the rooted-graph model and deterministic spanning-tree extraction (BFS or DFS) so
//! the `general_network` example and the corresponding tests can exercise that composition.

use crate::tree::OrientedTree;
use crate::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How to extract a spanning tree from a rooted graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanningTreeMethod {
    /// Breadth-first: parents are chosen along shortest paths from the root, which minimises
    /// tree height (and therefore virtual-ring eccentricity).
    Bfs,
    /// Depth-first: parents follow the DFS discovery order.
    Dfs,
}

/// An undirected connected graph with a distinguished root process.
///
/// Adjacency lists are kept sorted so that spanning-tree extraction is deterministic.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RootedGraph {
    n: usize,
    root: NodeId,
    adj: Vec<Vec<NodeId>>,
}

impl RootedGraph {
    /// Builds a graph on `n` nodes from an undirected edge list, rooted at `root`.
    ///
    /// Self-loops and duplicate edges are rejected.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `root >= n`, an endpoint is out of range, an edge is a self-loop
    /// or a duplicate, or the resulting graph is not connected.
    pub fn new(n: usize, root: NodeId, edges: &[(NodeId, NodeId)]) -> Self {
        assert!(n > 0, "a graph needs at least one node");
        assert!(root < n, "root {root} out of range");
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range");
            assert_ne!(u, v, "self-loop at {u}");
            assert!(!adj[u].contains(&v), "duplicate edge ({u},{v})");
            adj[u].push(v);
            adj[v].push(u);
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        let g = RootedGraph { n, root, adj };
        assert!(g.is_connected(), "graph is not connected");
        g
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The distinguished root.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Neighbours of `v` in increasing id order.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v]
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    fn is_connected(&self) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack = vec![self.root];
        seen[self.root] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in &self.adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.n
    }

    /// Extracts a spanning tree rooted at this graph's root.
    ///
    /// The returned [`OrientedTree`] renumbers the graph's root to node `0` (the convention of
    /// the tree type); the mapping is returned alongside: `mapping[graph_id] = tree_id`.
    pub fn spanning_tree(&self, method: SpanningTreeMethod) -> (OrientedTree, Vec<NodeId>) {
        let mut parent: Vec<Option<NodeId>> = vec![None; self.n];
        let mut visited = vec![false; self.n];
        visited[self.root] = true;
        match method {
            SpanningTreeMethod::Bfs => {
                let mut queue = VecDeque::new();
                queue.push_back(self.root);
                while let Some(v) = queue.pop_front() {
                    for &w in &self.adj[v] {
                        if !visited[w] {
                            visited[w] = true;
                            parent[w] = Some(v);
                            queue.push_back(w);
                        }
                    }
                }
            }
            SpanningTreeMethod::Dfs => {
                let mut stack = vec![self.root];
                while let Some(v) = stack.pop() {
                    for &w in self.adj[v].iter().rev() {
                        if !visited[w] {
                            visited[w] = true;
                            parent[w] = Some(v);
                            stack.push(w);
                        }
                    }
                }
            }
        }
        // Compute the same renumbering OrientedTree::from_parents applies (root -> 0,
        // remaining nodes keep relative order) so callers can translate ids.
        let mut mapping = vec![0usize; self.n];
        let mut next = 1usize;
        for v in 0..self.n {
            if v == self.root {
                mapping[v] = 0;
            } else {
                mapping[v] = next;
                next += 1;
            }
        }
        (OrientedTree::from_parents(&parent), mapping)
    }

    /// The local channel label under which `v` reaches its neighbour `peer`.
    ///
    /// Labels follow adjacency order: `v`'s channel `i` leads to `neighbors(v)[i]`.  This is
    /// the labelling the distributed spanning-tree protocol (`stree` crate) runs on; once a
    /// tree is constructed, the `OrientedTree` relabelling (parent = channel 0) applies.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is not a neighbour of `v`.
    pub fn label_of(&self, v: NodeId, peer: NodeId) -> usize {
        self.adj[v]
            .iter()
            .position(|&w| w == peer)
            .unwrap_or_else(|| panic!("{peer} is not a neighbour of {v}"))
    }

    /// The graph's diameter-bounding quantity used by the spanning-tree protocol: every
    /// correct distance value lies in `0..len()`, so `len()` itself serves as the "infinity"
    /// sentinel of bounded-memory distance variables.
    pub fn distance_bound(&self) -> usize {
        self.n
    }

    /// Hop distances from the root computed offline by BFS (ground truth for the distributed
    /// spanning-tree protocol's stabilized `dist` variables).
    pub fn bfs_distances(&self) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n];
        dist[self.root] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(self.root);
        while let Some(v) = queue.pop_front() {
            for &w in &self.adj[v] {
                if dist[w] == usize::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// A deterministic pseudo-random connected graph: a random recursive tree plus
    /// `extra_edges` additional random chords.  Useful for exercising the spanning-tree
    /// composition on non-tree networks.
    pub fn random_connected(n: usize, extra_edges: usize, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        assert!(n > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for v in 1..n {
            edges.push((v, rng.gen_range(0..v)));
        }
        let mut added = 0usize;
        let mut attempts = 0usize;
        while added < extra_edges && attempts < extra_edges * 20 + 100 {
            attempts += 1;
            if n < 2 {
                break;
            }
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let (a, b) = (u.min(v), u.max(v));
            if edges.iter().any(|&(x, y)| (x.min(y), x.max(y)) == (a, b)) {
                continue;
            }
            edges.push((a, b));
            added += 1;
        }
        RootedGraph::new(n, 0, &edges)
    }
}

impl crate::Topology for RootedGraph {
    fn len(&self) -> usize {
        self.n
    }

    fn degree(&self, node: NodeId) -> usize {
        self.adj[node].len()
    }

    fn endpoint(&self, node: NodeId, label: usize) -> (NodeId, usize) {
        let peer = self.adj[node][label];
        (peer, self.label_of(peer, node))
    }

    fn root(&self) -> NodeId {
        self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    fn diamond() -> RootedGraph {
        // 0 - 1, 0 - 2, 1 - 3, 2 - 3, 1 - 2 : a diamond with a chord.
        RootedGraph::new(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3), (1, 2)])
    }

    #[test]
    fn builds_and_counts_edges() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn rejects_disconnected() {
        RootedGraph::new(4, 0, &[(0, 1), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        RootedGraph::new(2, 0, &[(0, 0), (0, 1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edge() {
        RootedGraph::new(2, 0, &[(0, 1), (1, 0)]);
    }

    #[test]
    fn bfs_spanning_tree_has_shortest_depths() {
        let g = diamond();
        let (tree, map) = g.spanning_tree(SpanningTreeMethod::Bfs);
        assert_eq!(tree.len(), 4);
        // Node 3 is two hops from the root in the graph; BFS keeps that depth.
        assert_eq!(tree.depth(map[3]), 2);
        assert_eq!(tree.depth(map[1]), 1);
        assert_eq!(tree.depth(map[2]), 1);
    }

    #[test]
    fn dfs_spanning_tree_is_a_valid_tree() {
        let g = diamond();
        let (tree, _map) = g.spanning_tree(SpanningTreeMethod::Dfs);
        assert_eq!(tree.len(), 4);
        // A spanning tree of a 4-node graph has 3 edges, i.e. 6 directed channels.
        assert_eq!(tree.directed_channels(), 6);
    }

    #[test]
    fn spanning_tree_of_nonzero_root_remaps_ids() {
        let g = RootedGraph::new(3, 2, &[(0, 1), (1, 2)]);
        let (tree, map) = g.spanning_tree(SpanningTreeMethod::Bfs);
        assert_eq!(map[2], 0, "graph root must map to tree node 0");
        assert!(tree.is_root(0));
        assert_eq!(tree.len(), 3);
    }

    #[test]
    fn topology_labels_follow_adjacency_order() {
        let g = diamond();
        // Node 1's neighbours are [0, 2, 3]; channel 1 therefore leads to node 2.
        assert_eq!(g.degree(1), 3);
        let (peer, back) = g.endpoint(1, 1);
        assert_eq!(peer, 2);
        // Node 2's neighbours are [0, 1, 3]; node 1 is at index 1.
        assert_eq!(back, 1);
        assert_eq!(g.label_of(2, 1), 1);
    }

    #[test]
    fn topology_endpoints_are_involutive() {
        let g = RootedGraph::random_connected(25, 15, 3);
        for v in 0..g.len() {
            for label in 0..g.degree(v) {
                let (peer, peer_label) = g.endpoint(v, label);
                assert_eq!(g.endpoint(peer, peer_label), (v, label));
            }
        }
    }

    #[test]
    fn bfs_distances_match_spanning_tree_depths() {
        let g = RootedGraph::random_connected(20, 8, 7);
        let dist = g.bfs_distances();
        let (tree, map) = g.spanning_tree(SpanningTreeMethod::Bfs);
        for v in 0..g.len() {
            assert_eq!(dist[v], tree.depth(map[v]), "node {v}");
            assert!(dist[v] < g.distance_bound());
        }
    }

    #[test]
    #[should_panic(expected = "is not a neighbour")]
    fn label_of_rejects_non_neighbours() {
        diamond().label_of(0, 3);
    }

    #[test]
    fn random_connected_is_connected_and_deterministic() {
        let a = RootedGraph::random_connected(30, 10, 9);
        let b = RootedGraph::random_connected(30, 10, 9);
        assert_eq!(a, b);
        assert!(a.edge_count() >= 29);
        let (tree, _) = a.spanning_tree(SpanningTreeMethod::Bfs);
        assert_eq!(tree.len(), 30);
    }
}
