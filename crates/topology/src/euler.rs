//! The virtual ring (Euler tour) induced by the DFS retransmission rule.
//!
//! The paper's token-circulation rule is purely local: *"when a process `p` receives a token
//! from channel number `i`, and if that token is retransmitted, it will be sent to its
//! neighbour along channel number `(i + 1) mod Δp`"*, with the convention that the root
//! initiates circulations on channel `0` and every non-root process labels its parent channel
//! `0`.  Following this rule, a token traverses every tree edge exactly twice (once downward,
//! once upward) before returning to the root — the tree "emulates a ring with a designated
//! leader" (Figure 4 of the paper).  This module makes that ring explicit so experiments and
//! invariants can reason about it.

use crate::tree::OrientedTree;
use crate::{ChannelLabel, NodeId, Topology};
use serde::{Deserialize, Serialize};

/// One hop of the virtual ring: a token currently *at* `node`, having arrived on channel
/// `in_label`, leaves on channel `out_label` towards the next slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualRingSlot {
    /// The process hosting this slot.
    pub node: NodeId,
    /// Channel on which the token arrives at `node` (`None` only for the root's initial slot,
    /// where the circulation starts rather than arrives).
    pub in_label: Option<ChannelLabel>,
    /// Channel on which the token leaves `node`.
    pub out_label: ChannelLabel,
}

/// The virtual ring of an oriented tree: the cyclic sequence of [`VirtualRingSlot`]s visited
/// by a token obeying the DFS retransmission rule, starting from the root's channel `0`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualRing {
    slots: Vec<VirtualRingSlot>,
    n: usize,
}

impl VirtualRing {
    /// Computes the virtual ring of `tree` by simulating one full circulation of a token.
    ///
    /// For a single-node tree the ring is empty (the root never emits the token).
    pub fn of(tree: &OrientedTree) -> Self {
        let n = tree.len();
        if n == 1 {
            return VirtualRing { slots: Vec::new(), n };
        }
        let root = tree.root();
        let mut slots = Vec::with_capacity(2 * (n - 1));
        // The root starts the circulation on channel 0.
        slots.push(VirtualRingSlot { node: root, in_label: None, out_label: 0 });
        let (mut node, mut in_label) = tree.endpoint(root, 0);
        loop {
            let out_label = (in_label + 1) % tree.degree(node);
            if node == root && out_label == 0 {
                // The token is back at the root and about to start a new circulation: the
                // previous circulation is complete.
                break;
            }
            slots.push(VirtualRingSlot { node, in_label: Some(in_label), out_label });
            let (next, next_in) = tree.endpoint(node, out_label);
            node = next;
            in_label = next_in;
            if node == root && next_in == tree.degree(root) - 1 {
                // Arrived back at the root on its last channel: the circulation ends here; the
                // root's re-emission on channel 0 belongs to the *next* circulation.
                break;
            }
        }
        VirtualRing { slots, n }
    }

    /// The slots of one full circulation, in order, starting at the root.
    pub fn slots(&self) -> &[VirtualRingSlot] {
        &self.slots
    }

    /// Number of directed edge traversals per circulation: `2(n-1)` for `n > 1`.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True for the degenerate single-node ring.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Sequence of nodes visited in one circulation (a node of degree `d` appears `d` times,
    /// except the root which appears `Δr` times counting the starting slot).
    pub fn node_sequence(&self) -> Vec<NodeId> {
        self.slots.iter().map(|s| s.node).collect()
    }

    /// Number of times `node` is visited per circulation.
    pub fn visits(&self, node: NodeId) -> usize {
        self.slots.iter().filter(|s| s.node == node).count()
    }

    /// First-visit (DFS preorder) order of the nodes along the ring.
    pub fn first_visit_order(&self) -> Vec<NodeId> {
        let mut seen = vec![false; self.n];
        let mut order = Vec::with_capacity(self.n);
        for s in &self.slots {
            if !seen[s.node] {
                seen[s.node] = true;
                order.push(s.node);
            }
        }
        order
    }

    /// Ring distance (number of hops along the virtual ring) from the slot where `from` is
    /// first visited to the slot where `to` is first visited, walking forward.
    ///
    /// Returns `None` if either node never appears (single-node tree).
    pub fn ring_distance(&self, from: NodeId, to: NodeId) -> Option<usize> {
        let len = self.slots.len();
        if len == 0 {
            return None;
        }
        let fi = self.slots.iter().position(|s| s.node == from)?;
        let ti = self.slots.iter().position(|s| s.node == to)?;
        Some((ti + len - fi) % len)
    }
}

/// The worst-case waiting-time bound of Theorem 2: `ℓ (2n - 3)²`.
///
/// Defined for `n >= 2`; for `n < 2` there is no contention and the bound is `0`.
pub fn theorem2_waiting_bound(l: usize, n: usize) -> u64 {
    if n < 2 {
        return 0;
    }
    let ring = 2 * n as u64 - 3;
    l as u64 * ring * ring
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn ring_length_is_2n_minus_2() {
        for tree in [
            builders::chain(2),
            builders::chain(9),
            builders::star(6),
            builders::binary(15),
            builders::figure1_tree(),
            builders::random_tree(33, 5),
        ] {
            let ring = VirtualRing::of(&tree);
            assert_eq!(ring.len(), 2 * (tree.len() - 1));
        }
    }

    #[test]
    fn single_node_ring_is_empty() {
        let ring = VirtualRing::of(&builders::chain(1));
        assert!(ring.is_empty());
        assert_eq!(ring.len(), 0);
    }

    #[test]
    fn figure4_virtual_ring_sequence() {
        // Figure 4 of the paper: r a b a c a r d e d f d g d (then back to r).
        let tree = builders::figure1_tree();
        let ring = VirtualRing::of(&tree);
        let name = |c: &str| builders::figure1_node(c);
        let expected: Vec<NodeId> =
            ["r", "a", "b", "a", "c", "a", "r", "d", "e", "d", "f", "d", "g", "d"]
                .iter()
                .map(|c| name(c))
                .collect();
        assert_eq!(ring.node_sequence(), expected);
    }

    #[test]
    fn first_visit_order_is_dfs_preorder() {
        for seed in 0..8 {
            let tree = builders::random_tree(20, seed);
            let ring = VirtualRing::of(&tree);
            assert_eq!(ring.first_visit_order(), tree.dfs_preorder());
        }
    }

    #[test]
    fn each_node_visited_degree_times() {
        let tree = builders::figure1_tree();
        let ring = VirtualRing::of(&tree);
        for v in 0..tree.len() {
            assert_eq!(ring.visits(v), tree.degree(v), "node {v}");
        }
    }

    #[test]
    fn ring_distance_forward() {
        let tree = builders::figure1_tree();
        let ring = VirtualRing::of(&tree);
        let r = builders::figure1_node("r");
        let d = builders::figure1_node("d");
        assert_eq!(ring.ring_distance(r, d), Some(7));
        assert_eq!(ring.ring_distance(r, r), Some(0));
        // Walking from d back to r wraps around the ring.
        let back = ring.ring_distance(d, r).unwrap();
        assert_eq!(back, ring.len() - 7);
    }

    #[test]
    fn theorem2_bound_values() {
        assert_eq!(theorem2_waiting_bound(1, 2), 1);
        assert_eq!(theorem2_waiting_bound(5, 8), 5 * 13 * 13);
        assert_eq!(theorem2_waiting_bound(3, 1), 0);
    }

    #[test]
    fn chain_ring_walks_down_and_back() {
        let tree = builders::chain(4);
        let ring = VirtualRing::of(&tree);
        assert_eq!(ring.node_sequence(), vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn star_ring_alternates_with_root() {
        let tree = builders::star(4);
        let ring = VirtualRing::of(&tree);
        assert_eq!(ring.node_sequence(), vec![0, 1, 0, 2, 0, 3]);
    }
}
