//! Oriented trees with the paper's channel-labelling convention.

use crate::{ChannelLabel, NodeId, Topology};
use serde::{Deserialize, Serialize};

/// A rooted ("oriented") tree.
///
/// The tree is stored as a parent vector plus an ordered child list per node.  Channel labels
/// follow the convention of the paper:
///
/// * the **root** labels its channels `0..Δr`, channel `i` leading to its `i`-th child;
/// * every **non-root** node labels the channel towards its **parent `0`**, and the channel
///   towards its `i`-th child `i + 1`.
///
/// Node `0` is always the root (builders guarantee this; [`OrientedTree::from_parents`]
/// re-indexes if necessary).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrientedTree {
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
}

impl OrientedTree {
    /// Builds a tree from a parent vector: `parents[v]` is the parent of `v`, and exactly one
    /// entry (the root) is `None`.
    ///
    /// Children are ordered by ascending node id.  The root is re-indexed to node `0` (all
    /// other nodes keep their relative order) so that `Topology::root() == 0` always holds.
    ///
    /// # Panics
    ///
    /// Panics if the input is empty, has zero or multiple roots, contains an out-of-range
    /// parent, or is not connected/acyclic (i.e. not a tree).
    pub fn from_parents(parents: &[Option<NodeId>]) -> Self {
        let n = parents.len();
        assert!(n > 0, "a tree needs at least one node");
        let roots: Vec<NodeId> = (0..n).filter(|&v| parents[v].is_none()).collect();
        assert_eq!(roots.len(), 1, "a tree needs exactly one root, got {}", roots.len());
        let old_root = roots[0];
        for (v, p) in parents.iter().enumerate() {
            if let Some(p) = p {
                assert!(*p < n, "parent of {v} out of range: {p}");
                assert_ne!(*p, v, "node {v} cannot be its own parent");
            }
        }

        // Re-index so the root becomes node 0 while preserving the relative order of the
        // remaining nodes.
        let mut remap = vec![0usize; n];
        let mut next = 1usize;
        for v in 0..n {
            if v == old_root {
                remap[v] = 0;
            } else {
                remap[v] = next;
                next += 1;
            }
        }

        let mut parent = vec![None; n];
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for v in 0..n {
            if let Some(p) = parents[v] {
                parent[remap[v]] = Some(remap[p]);
            }
        }
        for v in 0..n {
            if let Some(p) = parent[v] {
                children[p].push(v);
            }
        }
        for c in &mut children {
            c.sort_unstable();
        }

        let tree = OrientedTree { parent, children };
        tree.assert_connected();
        tree
    }

    /// Builds a tree directly from an ordered child structure rooted at node `0`.
    ///
    /// `children[v]` lists the children of `v` in channel order.  This is the constructor the
    /// builders use when the child order (and therefore the virtual ring) matters, e.g. to
    /// reproduce the exact trees of the paper's figures.
    ///
    /// # Panics
    ///
    /// Panics if the structure is not a tree rooted at node `0`.
    pub fn from_children(children: Vec<Vec<NodeId>>) -> Self {
        let n = children.len();
        assert!(n > 0, "a tree needs at least one node");
        let mut parent = vec![None; n];
        let mut seen = vec![false; n];
        seen[0] = true;
        for (v, cs) in children.iter().enumerate() {
            for &c in cs {
                assert!(c < n, "child {c} of {v} out of range");
                assert!(!seen[c], "node {c} has two parents or is the root");
                seen[c] = true;
                parent[c] = Some(v);
            }
        }
        assert!(seen.iter().all(|&s| s), "tree is not connected");
        let tree = OrientedTree { parent, children };
        tree.assert_connected();
        tree
    }

    fn assert_connected(&self) {
        let n = self.len();
        let mut visited = vec![false; n];
        let mut stack = vec![0usize];
        visited[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for &c in &self.children[v] {
                assert!(!visited[c], "cycle detected through node {c}");
                visited[c] = true;
                count += 1;
                stack.push(c);
            }
        }
        assert_eq!(count, n, "tree is not connected: reached {count} of {n} nodes");
    }

    /// Parent of `v`, or `None` for the root.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v]
    }

    /// Children of `v` in channel order.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v]
    }

    /// True if `v` is the root.
    pub fn is_root(&self, v: NodeId) -> bool {
        self.parent[v].is_none()
    }

    /// True if `v` has no children.
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children[v].is_empty()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        (0..self.len()).filter(|&v| self.is_leaf(v)).count()
    }

    /// Depth of `v` (the root has depth 0).
    pub fn depth(&self, v: NodeId) -> usize {
        let mut d = 0;
        let mut cur = v;
        while let Some(p) = self.parent[cur] {
            d += 1;
            cur = p;
        }
        d
    }

    /// Height of the tree (maximum depth over all nodes).
    pub fn height(&self) -> usize {
        (0..self.len()).map(|v| self.depth(v)).max().unwrap_or(0)
    }

    /// Number of nodes in the subtree rooted at `v` (including `v`).
    pub fn subtree_size(&self, v: NodeId) -> usize {
        1 + self.children[v].iter().map(|&c| self.subtree_size(c)).sum::<usize>()
    }

    /// The neighbour reached through `node`'s channel `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label >= degree(node)`.
    pub fn neighbor(&self, node: NodeId, label: ChannelLabel) -> NodeId {
        assert!(label < self.degree(node), "label {label} out of range for node {node}");
        if self.is_root(node) {
            self.children[node][label]
        } else if label == 0 {
            self.parent[node].expect("non-root node has a parent")
        } else {
            self.children[node][label - 1]
        }
    }

    /// The label under which `node` knows its neighbour `peer`.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is not adjacent to `node`.
    pub fn label_of(&self, node: NodeId, peer: NodeId) -> ChannelLabel {
        if self.parent[node] == Some(peer) {
            return 0;
        }
        let idx = self.children[node]
            .iter()
            .position(|&c| c == peer)
            .unwrap_or_else(|| panic!("{peer} is not adjacent to {node}"));
        if self.is_root(node) {
            idx
        } else {
            idx + 1
        }
    }

    /// Nodes in depth-first preorder starting at the root, visiting children in channel order.
    pub fn dfs_preorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.len());
        let mut stack = vec![self.root()];
        while let Some(v) = stack.pop() {
            order.push(v);
            for &c in self.children[v].iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// All nodes sorted by depth (BFS order).
    pub fn bfs_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.len());
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(self.root());
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &c in &self.children[v] {
                queue.push_back(c);
            }
        }
        order
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.len()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// True when `node` lies in the subtree rooted at `ancestor` (inclusive).
    pub fn in_subtree(&self, node: NodeId, ancestor: NodeId) -> bool {
        let mut cur = node;
        loop {
            if cur == ancestor {
                return true;
            }
            match self.parent[cur] {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Returns the tree with a fresh leaf (id `len()`) attached as the **last** child of
    /// `parent`.
    ///
    /// Appending at the tail is what makes leaf joins a *local* topology fault: every
    /// channel label of every existing node is unchanged — only `parent` gains one new
    /// channel, at label `degree(parent)`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range.
    pub fn with_leaf_added(&self, parent: NodeId) -> OrientedTree {
        assert!(parent < self.len(), "join parent {parent} out of range");
        let fresh = self.len();
        let mut parents = self.parent.clone();
        let mut children = self.children.clone();
        children[parent].push(fresh);
        children.push(Vec::new());
        parents.push(Some(parent));
        let tree = OrientedTree { parent: parents, children };
        tree.assert_connected();
        tree
    }

    /// Returns the tree with leaf `v` removed, together with the id remapping:
    /// `old_of_new[w]` is the id that node `w` of the new tree had in `self` (every id
    /// above `v` shifts down by one, so node `0` stays the root).
    ///
    /// # Panics
    ///
    /// Panics if `v` is the root or not a leaf, or if the tree has only two nodes.
    pub fn with_leaf_removed(&self, v: NodeId) -> (OrientedTree, Vec<NodeId>) {
        assert!(self.len() > 2, "removing a leaf from a 2-node tree leaves no network");
        assert!(v < self.len() && !self.is_root(v), "only a non-root node can leave");
        assert!(self.is_leaf(v), "node {v} has children and cannot leave as a leaf");
        let old_of_new: Vec<NodeId> = (0..self.len()).filter(|&w| w != v).collect();
        let new_of_old = |w: NodeId| if w < v { w } else { w - 1 };
        let mut parent = Vec::with_capacity(self.len() - 1);
        let mut children = Vec::with_capacity(self.len() - 1);
        for &old in &old_of_new {
            parent.push(self.parent[old].map(new_of_old));
            children.push(
                self.children[old].iter().filter(|&&c| c != v).map(|&c| new_of_old(c)).collect(),
            );
        }
        let tree = OrientedTree { parent, children };
        tree.assert_connected();
        (tree, old_of_new)
    }

    /// Returns the tree with the parent edge of `v` severed and `v` re-attached as the
    /// last child of `new_parent`.  Node ids are unchanged; the whole subtree under `v`
    /// moves with it.
    ///
    /// # Panics
    ///
    /// Panics if `v` is the root, `new_parent` is out of range, or `new_parent` lies
    /// inside `v`'s own subtree (the result would not be a tree).
    pub fn with_edge_rewired(&self, v: NodeId, new_parent: NodeId) -> OrientedTree {
        assert!(v < self.len() && !self.is_root(v), "cannot rewire the root");
        assert!(new_parent < self.len(), "rewire target {new_parent} out of range");
        assert!(
            !self.in_subtree(new_parent, v),
            "rewiring {v} under {new_parent} would create a cycle"
        );
        let old_parent = self.parent[v].expect("non-root node has a parent");
        let mut parent = self.parent.clone();
        let mut children = self.children.clone();
        children[old_parent].retain(|&c| c != v);
        children[new_parent].push(v);
        parent[v] = Some(new_parent);
        let tree = OrientedTree { parent, children };
        tree.assert_connected();
        tree
    }
}

impl Topology for OrientedTree {
    fn len(&self) -> usize {
        self.parent.len()
    }

    fn degree(&self, node: NodeId) -> usize {
        let kids = self.children[node].len();
        if self.is_root(node) {
            kids
        } else {
            kids + 1
        }
    }

    fn endpoint(&self, node: NodeId, label: ChannelLabel) -> (NodeId, ChannelLabel) {
        let peer = self.neighbor(node, label);
        (peer, self.label_of(peer, node))
    }

    fn root(&self) -> NodeId {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    fn paper_tree() -> OrientedTree {
        builders::figure1_tree()
    }

    #[test]
    fn from_parents_reindexes_root_to_zero() {
        // Root is node 2 in the input.
        let t = OrientedTree::from_parents(&[Some(2), Some(2), None, Some(0)]);
        assert!(t.is_root(0));
        assert_eq!(t.len(), 4);
        assert_eq!(t.children(0).len(), 2);
    }

    #[test]
    #[should_panic(expected = "exactly one root")]
    fn from_parents_rejects_two_roots() {
        OrientedTree::from_parents(&[None, None, Some(0)]);
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn from_children_rejects_disconnected() {
        OrientedTree::from_children(vec![vec![1], vec![], vec![3], vec![]]);
    }

    #[test]
    #[should_panic]
    fn from_parents_rejects_cycle() {
        // 1 -> 2 -> 3 -> 1 cycle plus root 0: node count reached < n.
        OrientedTree::from_parents(&[None, Some(3), Some(1), Some(2)]);
    }

    #[test]
    fn parent_channel_is_zero_for_non_root() {
        let t = paper_tree();
        for v in 1..t.len() {
            let p = t.parent(v).unwrap();
            assert_eq!(t.label_of(v, p), 0, "non-root {v} must label its parent channel 0");
            assert_eq!(t.neighbor(v, 0), p);
        }
    }

    #[test]
    fn root_channels_point_to_children_in_order() {
        let t = paper_tree();
        let r = t.root();
        for (i, &c) in t.children(r).iter().enumerate() {
            assert_eq!(t.neighbor(r, i), c);
        }
    }

    #[test]
    fn endpoint_is_symmetric() {
        let t = paper_tree();
        for v in 0..t.len() {
            for l in 0..t.degree(v) {
                let (p, pl) = t.endpoint(v, l);
                let (back, back_l) = t.endpoint(p, pl);
                assert_eq!(back, v);
                assert_eq!(back_l, l);
            }
        }
    }

    #[test]
    fn degree_counts_parent_and_children() {
        let t = paper_tree();
        // Figure 1 tree: r{a,d}, a{b,c}, d{e,f,g}.
        assert_eq!(t.degree(0), 2); // root r
        let a = t.children(0)[0];
        assert_eq!(t.degree(a), 3); // parent + two children
    }

    #[test]
    fn depth_height_subtree() {
        let t = builders::chain(5);
        assert_eq!(t.height(), 4);
        assert_eq!(t.depth(0), 0);
        assert_eq!(t.subtree_size(0), 5);
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    fn dfs_preorder_visits_all_nodes_once() {
        let t = builders::random_tree(37, 42);
        let order = t.dfs_preorder();
        assert_eq!(order.len(), t.len());
        let mut seen = vec![false; t.len()];
        for v in order {
            assert!(!seen[v]);
            seen[v] = true;
        }
    }

    #[test]
    fn bfs_order_is_sorted_by_depth() {
        let t = builders::random_tree(25, 7);
        let order = t.bfs_order();
        for w in order.windows(2) {
            assert!(t.depth(w[0]) <= t.depth(w[1]));
        }
    }

    #[test]
    fn leaf_join_keeps_every_existing_label() {
        let t = paper_tree();
        let grown = t.with_leaf_added(3);
        assert_eq!(grown.len(), t.len() + 1);
        let fresh = t.len();
        assert_eq!(grown.parent(fresh), Some(3));
        assert_eq!(grown.label_of(fresh, 3), 0);
        // The joined leaf sits on the parent's newest channel; all old labels survive.
        assert_eq!(grown.label_of(3, fresh), t.degree(3));
        for v in 0..t.len() {
            for l in 0..t.degree(v) {
                assert_eq!(grown.neighbor(v, l), t.neighbor(v, l), "label ({v},{l}) moved");
            }
        }
    }

    #[test]
    fn leaf_removal_remaps_ids_and_stays_a_tree() {
        let t = paper_tree();
        let leaf = (1..t.len()).find(|&v| t.is_leaf(v)).unwrap();
        let (shrunk, old_of_new) = t.with_leaf_removed(leaf);
        assert_eq!(shrunk.len(), t.len() - 1);
        assert_eq!(old_of_new.len(), shrunk.len());
        assert!(shrunk.is_root(0));
        // Every surviving parent edge is preserved under the remapping.
        for (new, &old) in old_of_new.iter().enumerate() {
            assert_ne!(old, leaf);
            let old_parent = t.parent(old);
            let new_parent = shrunk.parent(new).map(|p| old_of_new[p]);
            assert_eq!(old_parent, new_parent, "parent of old node {old} changed");
        }
        for v in 0..shrunk.len() {
            for l in 0..shrunk.degree(v) {
                let (p, pl) = shrunk.endpoint(v, l);
                assert_eq!(shrunk.endpoint(p, pl), (v, l));
            }
        }
    }

    #[test]
    fn rewire_moves_a_whole_subtree() {
        // Chain 0-1-2-3-4: rewire node 3 (subtree {3,4}) under node 1.
        let t = builders::chain(5);
        let rewired = t.with_edge_rewired(3, 1);
        assert_eq!(rewired.parent(3), Some(1));
        assert_eq!(rewired.parent(4), Some(3));
        assert_eq!(rewired.children(1), &[2, 3]);
        assert_eq!(rewired.len(), t.len());
        assert_eq!(rewired.subtree_size(0), 5);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn rewire_into_own_subtree_is_rejected() {
        let t = builders::chain(5);
        t.with_edge_rewired(1, 3); // 3 is a descendant of 1
    }

    #[test]
    #[should_panic(expected = "non-root")]
    fn root_cannot_leave() {
        let t = builders::chain(3);
        t.with_leaf_removed(0);
    }

    #[test]
    fn in_subtree_is_reflexive_and_follows_ancestry() {
        let t = builders::chain(4);
        assert!(t.in_subtree(3, 0));
        assert!(t.in_subtree(2, 2));
        assert!(!t.in_subtree(1, 2));
    }

    #[test]
    fn single_node_tree() {
        let t = OrientedTree::from_children(vec![vec![]]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.degree(0), 0);
        assert!(t.is_root(0));
        assert!(t.is_leaf(0));
        assert_eq!(t.height(), 0);
    }
}
