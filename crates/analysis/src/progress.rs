//! Progress observation and runtime telemetry for long-running scenario work.
//!
//! Two small pieces, shared by every backend:
//!
//! * [`ProgressSink`] — a phase-labelled progress callback plus a cooperative cancellation
//!   poll.  Scenario compilation threads a sink through the simulator's warmup/fault/measure
//!   phases, the sharded harness reports per-trial completion through it, the checker
//!   backends adapt it onto [`checker::ExploreProgress`], and the fuzzer reports per-batch
//!   campaign progress.  The default [`NullSink`] makes observation strictly opt-in: the
//!   unobserved entry points delegate to the observed ones with a null sink and compute
//!   bit-identical results.
//! * [`MetricsRegistry`] — a lock-striped registry of named monotonic counters.  Handing a
//!   [`Counter`] handle to a hot loop costs one striped map lookup up front; every
//!   subsequent increment is a lock-free `fetch_add`.  The serve daemon exposes a registry
//!   as its Prometheus `/metrics` endpoint; anything holding a handle (worker pools, sink
//!   adapters, the harness bookkeeping) feeds it.
//!
//! Cancellation is *cooperative*: backends poll [`ProgressSink::cancelled`] at natural
//! yield points (phase boundaries, per trial, every few hundred explored states, between
//! fuzz batches) and wind down early.  A cancelled run returns a truncated result; callers
//! that cancel are expected to discard it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Observer of long-running scenario work: phase-labelled progress plus cancellation.
///
/// `phase` names the unit of work (`"warmup"`, `"measure"`, `"trials"`, `"explore"`,
/// `"fuzz"`, …); `done` counts completed units and `total` the expected count (`0` when
/// unknown, e.g. an exploration whose reachable-set size is the answer).  Both methods
/// default to no-ops / never-cancel so implementors pick the half they need.  Sinks are
/// shared across harness shards and checker workers, hence [`Sync`].
pub trait ProgressSink: Sync {
    /// Reports that `phase` has completed `done` of `total` units (`total == 0` = unknown).
    fn progress(&self, phase: &str, done: u64, total: u64) {
        let _ = (phase, done, total);
    }

    /// Polled at yield points; returning `true` asks the backend to wind down early.
    fn cancelled(&self) -> bool {
        false
    }
}

/// The no-op sink: every unobserved entry point runs through it.
pub struct NullSink;

impl ProgressSink for NullSink {}

/// Number of stripes in a [`MetricsRegistry`]; a power of two so the stripe of a hash is a
/// mask away.
const STRIPES: usize = 16;

/// A monotonic counter registered in a [`MetricsRegistry`].
///
/// Cloning shares the underlying atomic; increments are lock-free and visible to
/// [`MetricsRegistry::snapshot`] immediately.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-striped registry of named monotonic counters.
///
/// Registration (name → handle) takes one stripe lock; the stripe is chosen by an FNV-1a
/// hash of the name, so concurrent registrations of different names rarely contend.  The
/// hot path never touches the registry at all — it increments through [`Counter`] handles.
#[derive(Default)]
pub struct MetricsRegistry {
    stripes: [Mutex<BTreeMap<String, Arc<AtomicU64>>>; STRIPES],
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let stripe = &self.stripes[stripe_of(name)];
        let mut map = stripe.lock().expect("unpoisoned metrics stripe");
        let cell = map.entry(name.to_string()).or_default();
        Counter(Arc::clone(cell))
    }

    /// Adds `delta` to the counter named `name` (registering it if needed).  Convenience
    /// for cold paths; hot loops should hold a [`Counter`] handle instead.
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }

    /// A consistent-enough snapshot of every counter, sorted by name.  Counters being
    /// incremented concurrently may read slightly stale — fine for a metrics scrape.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for stripe in &self.stripes {
            let map = stripe.lock().expect("unpoisoned metrics stripe");
            for (name, cell) in map.iter() {
                out.insert(name.clone(), cell.load(Ordering::Relaxed));
            }
        }
        out
    }
}

/// FNV-1a stripe selector.
fn stripe_of(name: &str) -> usize {
    let mut hash = 0xcbf29ce484222325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    (hash as usize) & (STRIPES - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_never_cancels() {
        let sink = NullSink;
        sink.progress("warmup", 1, 2);
        assert!(!sink.cancelled());
    }

    #[test]
    fn counters_register_once_and_accumulate() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("jobs_done");
        let b = registry.counter("jobs_done");
        a.add(2);
        b.inc();
        registry.add("jobs_failed", 5);
        let snap = registry.snapshot();
        assert_eq!(snap["jobs_done"], 3);
        assert_eq!(snap["jobs_failed"], 5);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let registry = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let registry = &registry;
                scope.spawn(move || {
                    // Mix shared and per-thread names so both the striped registration
                    // path and the lock-free increment path see contention.
                    let shared = registry.counter("shared_total");
                    let own = registry.counter(&format!("worker_{t}"));
                    for _ in 0..1000 {
                        shared.inc();
                        own.inc();
                    }
                });
            }
        });
        let snap = registry.snapshot();
        assert_eq!(snap["shared_total"], 8000);
        for t in 0..8 {
            assert_eq!(snap[&format!("worker_{t}")], 1000);
        }
    }
}
