//! `analysis` — measurement and experiment harness for the k-out-of-ℓ exclusion reproduction.
//!
//! This crate turns raw execution traces and network snapshots into the quantities the
//! paper's claims are about:
//!
//! * [`waiting`] — the paper's *waiting time*: how many critical sections other processes
//!   enter between a request and its satisfaction (Theorem 2 bounds it by ℓ(2n−3)²);
//! * [`convergence`] — stabilization time from an arbitrary configuration (Theorem 1), using
//!   sustained legitimacy as the empirical convergence criterion;
//! * [`invariants`] — continuous safety checking (at most k units per process, at most ℓ in
//!   use, token conservation) while an execution runs;
//! * [`snapshot`] — cut-level safety verdicts ([`snapshot::CutVerdict`]) over the
//!   in-simulation Chandy–Lamport snapshots assembled by [`treenet::SnapshotRunner`];
//! * [`monitor`] — streaming temporal monitors (request-eventually-CS, at-most-k-in-CS,
//!   ℓ-availability, convergence-witnessed) with one verdict abstraction over simulator
//!   traces and checker lassos;
//! * [`coverage`] — structural coverage signatures over exploration reports and monitor
//!   verdicts, the novelty metric of the coverage-guided fuzz campaign;
//! * [`fairness`] — per-process service counts, starvation detection and Jain's index;
//! * [`deadlock`] — quiescence-with-unsatisfied-requests detection (the Figure 2 scenario);
//! * [`stats`] — summary statistics for repeated trials;
//! * [`histogram`] — bucketed distributions (waiting-time and convergence-time spreads);
//! * [`timeline`] — terminal renderings of executions: per-process activity lanes, the
//!   virtual ring, and token-census sparklines;
//! * [`scenario`] — the unified declarative scenario API: one serde-serializable
//!   [`scenario::ScenarioSpec`] drives the simulator, the sharded trial harness, and the
//!   bounded-exhaustive checker (plus the `klex` CLI in the `bench` crate);
//! * [`scenarios`] — the exact configurations of the paper's figures (now thin wrappers over
//!   [`scenario::preset`]s), shared by tests, examples and benchmark binaries;
//! * [`harness`] — parameter sweeps, repeated trials (optionally in parallel) and
//!   markdown/JSONL/CSV rendering of result tables for `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod coverage;
pub mod deadlock;
pub mod fairness;
pub mod harness;
pub mod histogram;
pub mod invariants;
pub mod monitor;
pub mod progress;
pub mod scenario;
pub mod scenarios;
pub mod snapshot;
pub mod stats;
pub mod timeline;
pub mod waiting;

pub use convergence::{measure_convergence, ConvergenceOutcome};
pub use coverage::{CoverageSignature, FrontierShape};
pub use deadlock::{detect_deadlock, DeadlockVerdict};
pub use fairness::{jains_index, FairnessReport};
pub use harness::{render_csv, render_markdown_table, ExperimentRow, Trial};
pub use histogram::Histogram;
pub use invariants::{SafetyMonitor, SafetyViolation};
pub use monitor::{MonitorReport, TemporalMonitor, Verdict, MONITOR_NAMES};
pub use progress::{Counter, MetricsRegistry, NullSink, ProgressSink};
pub use scenario::{CompiledScenario, Scenario, ScenarioError, ScenarioSpec};
pub use snapshot::{CutVerdict, SnapshotMonitor};
pub use stats::Summary;
pub use timeline::{render_activity_gantt, render_virtual_ring, CensusRecorder};
pub use waiting::{waiting_times, WaitingRecord};
