//! Waiting-time accounting.
//!
//! The paper (Section 2, following Raynal) defines the **waiting time** as the maximum number
//! of times all processes can enter the critical section between the moment a process
//! requests the critical section and the moment it enters it.  Theorem 2 bounds it by
//! ℓ(2n−3)² once the protocol has stabilized.
//!
//! [`waiting_times`] recovers exactly that quantity from an execution [`Trace`]: for every
//! matched `RequestIssued → EnterCs` pair of a node, it counts the `EnterCs` events of *other*
//! nodes that fall strictly between the two.

use serde::Serialize;
use treenet::{Event, NodeId, Trace};

/// One satisfied request and the service it had to wait for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct WaitingRecord {
    /// The requesting process.
    pub node: NodeId,
    /// Units requested.
    pub units: usize,
    /// Logical time of the request.
    pub requested_at: u64,
    /// Logical time of the critical-section entry.
    pub entered_at: u64,
    /// Critical-section entries by *other* processes between the two (the paper's waiting
    /// time for this request).
    pub cs_entries_waited: u64,
    /// Elapsed logical time (activations) between request and entry.
    pub activations_waited: u64,
}

/// Extracts one [`WaitingRecord`] per satisfied request found in `trace`.
///
/// Requests that never complete within the trace are ignored (they can be detected separately
/// with [`crate::fairness::FairnessReport`]).
pub fn waiting_times(trace: &Trace) -> Vec<WaitingRecord> {
    // All CS entries, in time order, for the "entries by others" count.
    let entries: Vec<(u64, NodeId)> = trace
        .events()
        .iter()
        .filter(|e| matches!(e.event, Event::EnterCs { .. }))
        .map(|e| (e.at, e.node))
        .collect();

    let mut records = Vec::new();
    // Track, per node, the pending request (if any).
    let mut pending: std::collections::BTreeMap<NodeId, (u64, usize)> =
        std::collections::BTreeMap::new();
    for ev in trace.events() {
        match ev.event {
            Event::RequestIssued { units } => {
                pending.entry(ev.node).or_insert((ev.at, units));
            }
            Event::EnterCs { .. } => {
                if let Some((requested_at, units)) = pending.remove(&ev.node) {
                    let waited = entries
                        .iter()
                        .filter(|&&(t, n)| n != ev.node && t > requested_at && t < ev.at)
                        .count() as u64;
                    records.push(WaitingRecord {
                        node: ev.node,
                        units,
                        requested_at,
                        entered_at: ev.at,
                        cs_entries_waited: waited,
                        activations_waited: ev.at - requested_at,
                    });
                }
            }
            _ => {}
        }
    }
    records
}

/// The largest observed waiting time (in critical-section entries), or 0 for an empty set.
pub fn max_waiting(records: &[WaitingRecord]) -> u64 {
    records.iter().map(|r| r.cs_entries_waited).max().unwrap_or(0)
}

/// Waiting times restricted to one node.
pub fn of_node(records: &[WaitingRecord], node: NodeId) -> Vec<u64> {
    records.iter().filter(|r| r.node == node).map(|r| r.cs_entries_waited).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        let mut t = Trace::new();
        // Node 0 requests at t=1, enters at t=20. In between, node 1 enters twice and node 2
        // once; node 0's own entry does not count; an entry at t=25 is outside the window.
        t.push(1, 0, Event::RequestIssued { units: 2 });
        t.push(3, 1, Event::RequestIssued { units: 1 });
        t.push(5, 1, Event::EnterCs { units: 1 });
        t.push(8, 1, Event::ExitCs { units: 1 });
        t.push(10, 2, Event::EnterCs { units: 1 });
        t.push(12, 1, Event::EnterCs { units: 1 });
        t.push(20, 0, Event::EnterCs { units: 2 });
        t.push(25, 2, Event::EnterCs { units: 1 });
        t
    }

    #[test]
    fn counts_entries_by_others_in_window() {
        let records = waiting_times(&trace());
        let r0: Vec<_> = records.iter().filter(|r| r.node == 0).collect();
        assert_eq!(r0.len(), 1);
        assert_eq!(r0[0].cs_entries_waited, 3);
        assert_eq!(r0[0].activations_waited, 19);
        assert_eq!(r0[0].units, 2);
    }

    #[test]
    fn request_without_prior_issue_still_recorded_for_issuer_only() {
        // Node 2 enters at t=10 and t=25 without a recorded request: no records for node 2.
        let records = waiting_times(&trace());
        assert!(records.iter().all(|r| r.node != 2));
    }

    #[test]
    fn immediate_entry_waits_zero() {
        let mut t = Trace::new();
        t.push(4, 3, Event::RequestIssued { units: 1 });
        t.push(5, 3, Event::EnterCs { units: 1 });
        let records = waiting_times(&t);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].cs_entries_waited, 0);
        assert_eq!(max_waiting(&records), 0);
    }

    #[test]
    fn helpers_filter_and_maximise() {
        let records = waiting_times(&trace());
        assert_eq!(max_waiting(&records), 3);
        assert_eq!(of_node(&records, 0), vec![3]);
        assert!(of_node(&records, 7).is_empty());
    }

    #[test]
    fn unsatisfied_requests_are_ignored() {
        let mut t = Trace::new();
        t.push(1, 0, Event::RequestIssued { units: 1 });
        t.push(2, 1, Event::EnterCs { units: 1 });
        let records = waiting_times(&t);
        assert!(records.is_empty());
    }
}
