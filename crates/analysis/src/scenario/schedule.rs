//! Fault-schedule execution: churn placement, the adversarial token-holder-path placer, and
//! the shared per-epoch event applier every backend uses.
//!
//! # Determinism contract
//!
//! A schedule consumes two independent seeded streams derived from
//! [`FaultScheduleSpec::seed`] and the per-trial stream:
//!
//! - the **placement** stream decides *where* churn lands (which node gains a leaf, which
//!   leaf leaves, which edge is rewired) and is consumed by **churn epochs only**;
//! - the **injector** stream feeds the [`FaultInjector`] that corrupts state and channels.
//!
//! Because the placement stream is untouched by non-churn epochs, the epoch-by-epoch
//! topology sequence is a function of the spec alone and can be replayed without running the
//! protocol — [`replay_churn`] does exactly that, which is how the parallel engine's
//! workers reconstruct the post-campaign network shape and driver assignment.

use super::compile::{deepest_node, ScenarioNode};
use super::spec::{FaultEventSpec, FaultScheduleSpec};
use klex_core::KlConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use topology::{OrientedTree, Topology};
use treenet::{FaultInjector, FaultPlan, Network, NodeId, Restartable};

/// Seed of the injector stream for a trial.
pub(super) fn injector_seed(schedule_seed: u64, stream: u64) -> u64 {
    schedule_seed.wrapping_add(stream)
}

/// Seed of the placement stream for a trial — decorrelated from the injector stream so that
/// replaying only the churn placements consumes exactly the draws churn consumed.
pub(super) fn placement_seed(schedule_seed: u64, stream: u64) -> u64 {
    schedule_seed.wrapping_add(stream) ^ 0x9E37_79B9_7F4A_7C15
}

/// Above this size, rewiring candidates are sampled instead of enumerated.
const REWIRE_ENUMERATION_LIMIT: usize = 512;
/// Sampling attempts for rewiring on large trees.
const REWIRE_SAMPLE_ATTEMPTS: usize = 64;

/// Decides where a churn event lands on `tree`, drawing only from `placement`.  Returns the
/// post-churn tree plus the old-id-of-new-id map [`Network::rebuild_from`] consumes, or
/// `None` when the event has no valid placement (leaf removal at the 2-node minimum, or a
/// tree with no legal rewiring).
///
/// # Panics
///
/// Panics on a non-churn event.
pub(super) fn place_churn(
    tree: &OrientedTree,
    event: &FaultEventSpec,
    placement: &mut StdRng,
) -> Option<(OrientedTree, Vec<Option<NodeId>>)> {
    let n = tree.len();
    match event {
        FaultEventSpec::JoinLeaf => {
            let parent = placement.gen_range(0..n);
            let map = (0..n).map(Some).chain([None]).collect();
            Some((tree.with_leaf_added(parent), map))
        }
        FaultEventSpec::LeaveLeaf => {
            // At the 2-node minimum nothing may leave; skip without consuming a draw so the
            // placement stream stays replayable from the tree sequence alone.
            if n <= 2 {
                return None;
            }
            let leaves: Vec<NodeId> = (1..n).filter(|&v| tree.is_leaf(v)).collect();
            let v = leaves[placement.gen_range(0..leaves.len())];
            let (new_tree, old_of_new) = tree.with_leaf_removed(v);
            Some((new_tree, old_of_new.into_iter().map(Some).collect()))
        }
        FaultEventSpec::RewireEdge => {
            let map = (0..n).map(Some).collect();
            let valid = |v: NodeId, u: NodeId| {
                v != 0 && u != v && tree.parent(v) != Some(u) && !tree.in_subtree(u, v)
            };
            if n <= REWIRE_ENUMERATION_LIMIT {
                let pairs: Vec<(NodeId, NodeId)> = (1..n)
                    .flat_map(|v| (0..n).map(move |u| (v, u)))
                    .filter(|&(v, u)| valid(v, u))
                    .collect();
                if pairs.is_empty() {
                    return None;
                }
                let (v, u) = pairs[placement.gen_range(0..pairs.len())];
                Some((tree.with_edge_rewired(v, u), map))
            } else {
                for _ in 0..REWIRE_SAMPLE_ATTEMPTS {
                    let v = placement.gen_range(1..n);
                    let u = placement.gen_range(0..n);
                    if valid(v, u) {
                        return Some((tree.with_edge_rewired(v, u), map));
                    }
                }
                None
            }
        }
        other => panic!("place_churn called with non-churn event {:?}", other.label()),
    }
}

/// Replays only the churn epochs of `schedule` on `net` (placement stream `stream`),
/// rebuilding through donor templates exactly like the live campaign — without running the
/// protocol.  The result matches the post-campaign network in shape *and* in per-node
/// driver assignment: [`Network::rebuild_from`]'s survivor rule is purely structural, so
/// survivors end up holding the driver built for their *original* id while restarted nodes
/// get the donor's driver at their current id, exactly as in the live run.  The parallel
/// engine's workers need this: they restore packed configurations over every state, but the
/// driver assignment participates in successor generation and must match the root
/// network's — a tree of the right shape with drivers re-indexed by post-churn ids would
/// silently explore a different protocol instance.
pub(crate) fn replay_churn<P>(
    net: &mut Network<P, OrientedTree>,
    schedule: &FaultScheduleSpec,
    stream: u64,
    make_template: &mut dyn FnMut(&OrientedTree) -> Network<P, OrientedTree>,
) where
    P: ScenarioNode,
{
    let mut placement = StdRng::seed_from_u64(placement_seed(schedule.seed, stream));
    for event in &schedule.epochs {
        if !event.is_churn() {
            continue;
        }
        if let Some((new_tree, old_of_new)) = place_churn(net.topology(), event, &mut placement)
        {
            let donor = make_template(&new_tree);
            net.rebuild_from(donor, &old_of_new);
        }
    }
}

/// The root path of the deepest process currently holding a resource or priority token — the
/// adversarial fault placer's victims: corrupting the whole path the tokens travel on is the
/// paper's worst-case transient fault.  Falls back to the deepest node's path when no process
/// holds a token (e.g. every token is in flight).
pub(super) fn token_path<P>(net: &Network<P, OrientedTree>) -> Vec<NodeId>
where
    P: ScenarioNode,
{
    let tree = net.topology();
    let holder = (0..net.len())
        .filter(|&v| net.node(v).reserved() > 0 || net.node(v).holds_priority())
        .max_by_key(|&v| tree.depth(v))
        .unwrap_or_else(|| deepest_node(tree));
    let mut path = vec![holder];
    let mut v = holder;
    while let Some(p) = tree.parent(v) {
        path.push(p);
        v = p;
    }
    path
}

/// Applies one fault epoch to a tree-protocol network.  Corruption events draw from the
/// injector; churn events draw their placement from `placement`, build a fresh donor network
/// over the new tree via `make_template`, and rebuild the live network with state carryover
/// ([`Network::rebuild_from`]: survivors keep their state, the churn locus restarts).
pub(super) fn apply_event<P>(
    net: &mut Network<P, OrientedTree>,
    event: &FaultEventSpec,
    cfg: &KlConfig,
    placement: &mut StdRng,
    injector: &mut FaultInjector,
    make_template: &mut dyn FnMut(&OrientedTree) -> Network<P, OrientedTree>,
) where
    P: ScenarioNode + Restartable,
{
    match event {
        FaultEventSpec::Transient { plan } => {
            injector.inject(net, &plan.to_plan(cfg));
        }
        FaultEventSpec::MessageBurst { drop, duplicate, garbage } => {
            let plan = FaultPlan {
                corrupt_node_prob: 0.0,
                channel_garbage_max: *garbage,
                drop_prob: *drop,
                duplicate_prob: *duplicate,
                clear_channel_prob: 0.0,
            };
            injector.inject(net, &plan);
        }
        FaultEventSpec::Crash { count, lose_incoming } => {
            injector.crash_random(net, *count, *lose_incoming);
        }
        FaultEventSpec::TargetTokenPath => {
            let path = token_path(net);
            injector.corrupt_nodes(net, &path);
        }
        churn => {
            if let Some((new_tree, old_of_new)) = place_churn(net.topology(), churn, placement) {
                let donor = make_template(&new_tree);
                net.rebuild_from(donor, &old_of_new);
            }
        }
    }
}
