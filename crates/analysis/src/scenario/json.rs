//! Typed JSON parsing for [`ScenarioSpec`].
//!
//! The workspace's offline `serde` shim serializes (derive-generated, matching upstream
//! serde's JSON data model: structs as objects, unit enum variants as strings, data-carrying
//! variants as externally tagged single-key objects) but provides no typed deserialization —
//! JSON only parses into a dynamic [`serde_json::Value`].  This module closes the loop: it
//! decodes a `Value` back into a [`ScenarioSpec`], field by field, so that
//! `spec == from_json(to_json(spec))` holds for every spec (asserted by the round-trip
//! proptest in `tests/scenario_api.rs`).

use super::spec::{
    CheckSpec, ConfigSpec, CsStateSpec, DaemonSpec, FaultEventSpec, FaultPlanSpec,
    FaultScheduleSpec, FaultSpec, InitSpec, InitiatorSpec, InjectSpec, MessageSpec, NodeInit,
    ProtocolSpec, ScenarioSpec, SnapshotSpec, StopSpec, TopologySpec, WarmupSpec, WorkloadSpec,
};
use super::ScenarioError;
use serde_json::Value;

type Parsed<T> = Result<T, ScenarioError>;

fn fail<T>(msg: String) -> Parsed<T> {
    Err(ScenarioError::Json(msg))
}

fn get<'a>(v: &'a Value, key: &str, ctx: &str) -> Parsed<&'a Value> {
    match v.get(key) {
        Some(field) if *field != Value::Null => Ok(field),
        _ => fail(format!("{ctx}: missing field `{key}`")),
    }
}

fn f64_of(v: &Value, ctx: &str) -> Parsed<f64> {
    v.as_f64().ok_or_else(|| ScenarioError::Json(format!("{ctx}: expected a number")))
}

fn u64_of(v: &Value, ctx: &str) -> Parsed<u64> {
    v.as_u64().ok_or_else(|| ScenarioError::Json(format!("{ctx}: expected an unsigned integer")))
}

fn usize_of(v: &Value, ctx: &str) -> Parsed<usize> {
    Ok(u64_of(v, ctx)? as usize)
}

fn u8_of(v: &Value, ctx: &str) -> Parsed<u8> {
    let n = u64_of(v, ctx)?;
    u8::try_from(n).map_err(|_| ScenarioError::Json(format!("{ctx}: {n} exceeds u8")))
}

fn u16_of(v: &Value, ctx: &str) -> Parsed<u16> {
    let n = u64_of(v, ctx)?;
    u16::try_from(n).map_err(|_| ScenarioError::Json(format!("{ctx}: {n} exceeds u16")))
}

fn bool_of(v: &Value, ctx: &str) -> Parsed<bool> {
    v.as_bool().ok_or_else(|| ScenarioError::Json(format!("{ctx}: expected a boolean")))
}

fn string_of(v: &Value, ctx: &str) -> Parsed<String> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| ScenarioError::Json(format!("{ctx}: expected a string")))
}

fn array_of<'a>(v: &'a Value, ctx: &str) -> Parsed<&'a [Value]> {
    match v {
        Value::Array(items) => Ok(items),
        _ => fail(format!("{ctx}: expected an array")),
    }
}

fn usize_vec(v: &Value, ctx: &str) -> Parsed<Vec<usize>> {
    array_of(v, ctx)?.iter().map(|item| usize_of(item, ctx)).collect()
}

/// Decodes an externally tagged enum value: either a bare string (unit variant) or a
/// single-key object `{"Variant": payload}`.
fn variant_of<'a>(v: &'a Value, ctx: &str) -> Parsed<(String, Option<&'a Value>)> {
    match v {
        Value::String(tag) => Ok((tag.clone(), None)),
        Value::Object(map) if map.len() == 1 => {
            let (tag, payload) = map.iter().next().expect("len checked");
            Ok((tag.clone(), Some(payload)))
        }
        _ => fail(format!("{ctx}: expected an enum (string or single-key object)")),
    }
}

fn payload<'a>(payload: Option<&'a Value>, tag: &str, ctx: &str) -> Parsed<&'a Value> {
    payload.ok_or_else(|| ScenarioError::Json(format!("{ctx}: variant `{tag}` needs fields")))
}

fn topology_of(v: &Value) -> Parsed<TopologySpec> {
    let ctx = "topology";
    let (tag, body) = variant_of(v, ctx)?;
    Ok(match tag.as_str() {
        "Figure1" => TopologySpec::Figure1,
        "Figure3" => TopologySpec::Figure3,
        "Chain" => TopologySpec::Chain { n: usize_of(get(payload(body, &tag, ctx)?, "n", ctx)?, ctx)? },
        "Star" => TopologySpec::Star { n: usize_of(get(payload(body, &tag, ctx)?, "n", ctx)?, ctx)? },
        "Binary" => {
            TopologySpec::Binary { n: usize_of(get(payload(body, &tag, ctx)?, "n", ctx)?, ctx)? }
        }
        "Balanced" => {
            let body = payload(body, &tag, ctx)?;
            TopologySpec::Balanced {
                n: usize_of(get(body, "n", ctx)?, ctx)?,
                arity: usize_of(get(body, "arity", ctx)?, ctx)?,
            }
        }
        "Caterpillar" => {
            let body = payload(body, &tag, ctx)?;
            TopologySpec::Caterpillar {
                spine: usize_of(get(body, "spine", ctx)?, ctx)?,
                legs: usize_of(get(body, "legs", ctx)?, ctx)?,
            }
        }
        "Broom" => {
            let body = payload(body, &tag, ctx)?;
            TopologySpec::Broom {
                handle: usize_of(get(body, "handle", ctx)?, ctx)?,
                bristles: usize_of(get(body, "bristles", ctx)?, ctx)?,
            }
        }
        "Random" => {
            let body = payload(body, &tag, ctx)?;
            TopologySpec::Random {
                n: usize_of(get(body, "n", ctx)?, ctx)?,
                seed: u64_of(get(body, "seed", ctx)?, ctx)?,
            }
        }
        "BoundedDegree" => {
            let body = payload(body, &tag, ctx)?;
            TopologySpec::BoundedDegree {
                n: usize_of(get(body, "n", ctx)?, ctx)?,
                max_children: usize_of(get(body, "max_children", ctx)?, ctx)?,
                seed: u64_of(get(body, "seed", ctx)?, ctx)?,
            }
        }
        "SpanningTree" => {
            let body = payload(body, &tag, ctx)?;
            TopologySpec::SpanningTree {
                n: usize_of(get(body, "n", ctx)?, ctx)?,
                extra_edges: usize_of(get(body, "extra_edges", ctx)?, ctx)?,
                seed: u64_of(get(body, "seed", ctx)?, ctx)?,
            }
        }
        other => return fail(format!("{ctx}: unknown variant `{other}`")),
    })
}

fn protocol_of(v: &Value) -> Parsed<ProtocolSpec> {
    let ctx = "protocol";
    let (tag, _) = variant_of(v, ctx)?;
    Ok(match tag.as_str() {
        "Naive" => ProtocolSpec::Naive,
        "Pusher" => ProtocolSpec::Pusher,
        "NonStab" => ProtocolSpec::NonStab,
        "Ss" => ProtocolSpec::Ss,
        "Ring" => ProtocolSpec::Ring,
        other => return fail(format!("{ctx}: unknown variant `{other}`")),
    })
}

fn config_of(v: &Value) -> Parsed<ConfigSpec> {
    let ctx = "config";
    Ok(ConfigSpec {
        k: usize_of(get(v, "k", ctx)?, ctx)?,
        l: usize_of(get(v, "l", ctx)?, ctx)?,
        cmax: match v.get("cmax") {
            Some(Value::Null) | None => None,
            Some(field) => Some(usize_of(field, ctx)?),
        },
        timeout: match v.get("timeout") {
            Some(Value::Null) | None => None,
            Some(field) => Some(u64_of(field, ctx)?),
        },
        literal_pusher_guard: bool_of(get(v, "literal_pusher_guard", ctx)?, ctx)?,
        literal_completion_order: bool_of(get(v, "literal_completion_order", ctx)?, ctx)?,
        unbounded_counter: bool_of(get(v, "unbounded_counter", ctx)?, ctx)?,
    })
}

fn workload_of(v: &Value) -> Parsed<WorkloadSpec> {
    let ctx = "workload";
    let (tag, body) = variant_of(v, ctx)?;
    Ok(match tag.as_str() {
        "Idle" => WorkloadSpec::Idle,
        "Saturated" => {
            let body = payload(body, &tag, ctx)?;
            WorkloadSpec::Saturated {
                units: usize_of(get(body, "units", ctx)?, ctx)?,
                hold: u64_of(get(body, "hold", ctx)?, ctx)?,
            }
        }
        "Uniform" => {
            let body = payload(body, &tag, ctx)?;
            WorkloadSpec::Uniform {
                seed: u64_of(get(body, "seed", ctx)?, ctx)?,
                p_request: f64_of(get(body, "p_request", ctx)?, ctx)?,
                max_units: usize_of(get(body, "max_units", ctx)?, ctx)?,
                max_hold: u64_of(get(body, "max_hold", ctx)?, ctx)?,
            }
        }
        "Needs" => {
            let body = payload(body, &tag, ctx)?;
            WorkloadSpec::Needs {
                needs: usize_vec(get(body, "needs", ctx)?, ctx)?,
                hold: u64_of(get(body, "hold", ctx)?, ctx)?,
            }
        }
        "LeafUniform" => {
            let body = payload(body, &tag, ctx)?;
            WorkloadSpec::LeafUniform {
                seed: u64_of(get(body, "seed", ctx)?, ctx)?,
                p_request: f64_of(get(body, "p_request", ctx)?, ctx)?,
                max_units: usize_of(get(body, "max_units", ctx)?, ctx)?,
                max_hold: u64_of(get(body, "max_hold", ctx)?, ctx)?,
            }
        }
        other => return fail(format!("{ctx}: unknown variant `{other}`")),
    })
}

fn daemon_of(v: &Value, ctx: &str) -> Parsed<DaemonSpec> {
    let (tag, body) = variant_of(v, ctx)?;
    Ok(match tag.as_str() {
        "RoundRobin" => DaemonSpec::RoundRobin,
        "Synchronous" => DaemonSpec::Synchronous,
        "RandomFair" => {
            let body = payload(body, &tag, ctx)?;
            DaemonSpec::RandomFair { seed: u64_of(get(body, "seed", ctx)?, ctx)? }
        }
        "Adversarial" => {
            let body = payload(body, &tag, ctx)?;
            DaemonSpec::Adversarial {
                victims: usize_vec(get(body, "victims", ctx)?, ctx)?,
                patience: u64_of(get(body, "patience", ctx)?, ctx)?,
            }
        }
        other => return fail(format!("{ctx}: unknown variant `{other}`")),
    })
}

fn cs_state_of(v: &Value) -> Parsed<CsStateSpec> {
    let ctx = "init.nodes.state";
    let (tag, _) = variant_of(v, ctx)?;
    Ok(match tag.as_str() {
        "Out" => CsStateSpec::Out,
        "Req" => CsStateSpec::Req,
        "In" => CsStateSpec::In,
        other => return fail(format!("{ctx}: unknown variant `{other}`")),
    })
}

fn message_of(v: &Value) -> Parsed<MessageSpec> {
    let ctx = "init.inject.message";
    let (tag, body) = variant_of(v, ctx)?;
    Ok(match tag.as_str() {
        "ResT" => MessageSpec::ResT,
        "PushT" => MessageSpec::PushT,
        "PrioT" => MessageSpec::PrioT,
        "Ctrl" => {
            let body = payload(body, &tag, ctx)?;
            MessageSpec::Ctrl {
                c: u64_of(get(body, "c", ctx)?, ctx)?,
                r: bool_of(get(body, "r", ctx)?, ctx)?,
                pt: u64_of(get(body, "pt", ctx)?, ctx)?,
                ppr: u8_of(get(body, "ppr", ctx)?, ctx)?,
            }
        }
        "Garbage" => {
            let body = payload(body, &tag, ctx)?;
            MessageSpec::Garbage { tag: u16_of(get(body, "tag", ctx)?, ctx)? }
        }
        other => return fail(format!("{ctx}: unknown variant `{other}`")),
    })
}

fn init_of(v: &Value) -> Parsed<InitSpec> {
    let ctx = "init";
    let nodes = array_of(get(v, "nodes", ctx)?, ctx)?
        .iter()
        .map(|item| {
            Ok(NodeInit {
                node: usize_of(get(item, "node", ctx)?, ctx)?,
                state: cs_state_of(get(item, "state", ctx)?)?,
                need: usize_of(get(item, "need", ctx)?, ctx)?,
                rset: usize_vec(get(item, "rset", ctx)?, ctx)?,
            })
        })
        .collect::<Parsed<Vec<_>>>()?;
    let inject = array_of(get(v, "inject", ctx)?, ctx)?
        .iter()
        .map(|item| {
            Ok(InjectSpec {
                from: usize_of(get(item, "from", ctx)?, ctx)?,
                channel: usize_of(get(item, "channel", ctx)?, ctx)?,
                message: message_of(get(item, "message", ctx)?)?,
            })
        })
        .collect::<Parsed<Vec<_>>>()?;
    Ok(InitSpec { bootstrapped_root: bool_of(get(v, "bootstrapped_root", ctx)?, ctx)?, nodes, inject })
}

fn warmup_of(v: &Value) -> Parsed<WarmupSpec> {
    let ctx = "warmup";
    Ok(WarmupSpec {
        max_steps: u64_of(get(v, "max_steps", ctx)?, ctx)?,
        window: match v.get("window") {
            Some(Value::Null) | None => None,
            Some(field) => Some(u64_of(field, ctx)?),
        },
        daemon: match v.get("daemon") {
            Some(Value::Null) | None => None,
            Some(field) => Some(daemon_of(field, "warmup.daemon")?),
        },
    })
}

fn fault_of(v: &Value) -> Parsed<FaultSpec> {
    let ctx = "fault";
    let plan = fault_plan_of(get(v, "plan", ctx)?, "fault.plan")?;
    Ok(FaultSpec { seed: u64_of(get(v, "seed", ctx)?, ctx)?, plan })
}

fn fault_plan_of(v: &Value, ctx: &str) -> Parsed<FaultPlanSpec> {
    let (tag, _) = variant_of(v, ctx)?;
    Ok(match tag.as_str() {
        "Catastrophic" => FaultPlanSpec::Catastrophic,
        "Moderate" => FaultPlanSpec::Moderate,
        "MessageOnly" => FaultPlanSpec::MessageOnly,
        other => return fail(format!("{ctx}: unknown variant `{other}`")),
    })
}

fn fault_event_of(v: &Value) -> Parsed<FaultEventSpec> {
    let ctx = "fault_schedule.epochs";
    let (tag, body) = variant_of(v, ctx)?;
    Ok(match tag.as_str() {
        "TargetTokenPath" => FaultEventSpec::TargetTokenPath,
        "JoinLeaf" => FaultEventSpec::JoinLeaf,
        "LeaveLeaf" => FaultEventSpec::LeaveLeaf,
        "RewireEdge" => FaultEventSpec::RewireEdge,
        "Transient" => {
            let body = payload(body, &tag, ctx)?;
            FaultEventSpec::Transient {
                plan: fault_plan_of(get(body, "plan", ctx)?, "fault_schedule.epochs.plan")?,
            }
        }
        "MessageBurst" => {
            let body = payload(body, &tag, ctx)?;
            FaultEventSpec::MessageBurst {
                drop: f64_of(get(body, "drop", ctx)?, ctx)?,
                duplicate: f64_of(get(body, "duplicate", ctx)?, ctx)?,
                garbage: usize_of(get(body, "garbage", ctx)?, ctx)?,
            }
        }
        "Crash" => {
            let body = payload(body, &tag, ctx)?;
            FaultEventSpec::Crash {
                count: usize_of(get(body, "count", ctx)?, ctx)?,
                lose_incoming: bool_of(get(body, "lose_incoming", ctx)?, ctx)?,
            }
        }
        other => return fail(format!("{ctx}: unknown variant `{other}`")),
    })
}

/// Decodes a [`FaultScheduleSpec`] document — also the format the CLI's `--fault-schedule`
/// file uses.
pub fn schedule_from_value(v: &Value) -> Parsed<FaultScheduleSpec> {
    let ctx = "fault_schedule";
    Ok(FaultScheduleSpec {
        seed: u64_of(get(v, "seed", ctx)?, ctx)?,
        epochs: array_of(get(v, "epochs", ctx)?, ctx)?
            .iter()
            .map(fault_event_of)
            .collect::<Parsed<Vec<_>>>()?,
        max_steps: u64_of(get(v, "max_steps", ctx)?, ctx)?,
        window: match v.get("window") {
            Some(Value::Null) | None => None,
            Some(field) => Some(u64_of(field, ctx)?),
        },
    })
}

fn snapshots_of(v: &Value) -> Parsed<SnapshotSpec> {
    let ctx = "snapshots";
    let initiator = {
        let (tag, _) = variant_of(get(v, "initiator", ctx)?, "snapshots.initiator")?;
        match tag.as_str() {
            "Root" => InitiatorSpec::Root,
            "Rotate" => InitiatorSpec::Rotate,
            other => return fail(format!("snapshots.initiator: unknown variant `{other}`")),
        }
    };
    Ok(SnapshotSpec { interval: u64_of(get(v, "interval", ctx)?, ctx)?, initiator })
}

fn stop_of(v: &Value) -> Parsed<StopSpec> {
    let ctx = "stop";
    let (tag, body) = variant_of(v, ctx)?;
    Ok(match tag.as_str() {
        "Steps" => {
            StopSpec::Steps { steps: u64_of(get(payload(body, &tag, ctx)?, "steps", ctx)?, ctx)? }
        }
        "Quiescent" => {
            let body = payload(body, &tag, ctx)?;
            StopSpec::Quiescent {
                max_steps: u64_of(get(body, "max_steps", ctx)?, ctx)?,
                grace: u64_of(get(body, "grace", ctx)?, ctx)?,
            }
        }
        "CsEntries" => {
            let body = payload(body, &tag, ctx)?;
            StopSpec::CsEntries {
                entries: u64_of(get(body, "entries", ctx)?, ctx)?,
                max_steps: u64_of(get(body, "max_steps", ctx)?, ctx)?,
            }
        }
        "Predicate" => {
            let body = payload(body, &tag, ctx)?;
            StopSpec::Predicate {
                name: string_of(get(body, "name", ctx)?, ctx)?,
                max_steps: u64_of(get(body, "max_steps", ctx)?, ctx)?,
                sustained_for: u64_of(get(body, "sustained_for", ctx)?, ctx)?,
            }
        }
        other => return fail(format!("{ctx}: unknown variant `{other}`")),
    })
}

fn check_of(v: &Value) -> Parsed<CheckSpec> {
    let ctx = "check";
    Ok(CheckSpec {
        max_configurations: usize_of(get(v, "max_configurations", ctx)?, ctx)?,
        max_depth: usize_of(get(v, "max_depth", ctx)?, ctx)?,
        properties: array_of(get(v, "properties", ctx)?, ctx)?
            .iter()
            .map(|item| string_of(item, ctx))
            .collect::<Parsed<Vec<_>>>()?,
        // Optional for backward compatibility with pre-liveness spec documents.
        from_legitimate: match v.get("from_legitimate") {
            Some(Value::Null) | None => false,
            Some(field) => bool_of(field, ctx)?,
        },
        // Optional for backward compatibility with pre-parallel spec documents
        // (0 = auto-size to the available cores).
        threads: match v.get("threads") {
            Some(Value::Null) | None => 0,
            Some(field) => usize_of(field, ctx)?,
        },
    })
}

/// Decodes a parsed JSON document into a [`ScenarioSpec`].
pub fn spec_from_value(v: &Value) -> Parsed<ScenarioSpec> {
    let ctx = "spec";
    Ok(ScenarioSpec {
        name: string_of(get(v, "name", ctx)?, "name")?,
        topology: topology_of(get(v, "topology", ctx)?)?,
        protocol: protocol_of(get(v, "protocol", ctx)?)?,
        config: config_of(get(v, "config", ctx)?)?,
        workload: workload_of(get(v, "workload", ctx)?)?,
        daemon: daemon_of(get(v, "daemon", ctx)?, "daemon")?,
        init: match v.get("init") {
            Some(Value::Null) | None => None,
            Some(field) => Some(init_of(field)?),
        },
        warmup: match v.get("warmup") {
            Some(Value::Null) | None => None,
            Some(field) => Some(warmup_of(field)?),
        },
        fault: match v.get("fault") {
            Some(Value::Null) | None => None,
            Some(field) => Some(fault_of(field)?),
        },
        // Optional for backward compatibility with pre-schedule spec documents.
        fault_schedule: match v.get("fault_schedule") {
            Some(Value::Null) | None => None,
            Some(field) => Some(schedule_from_value(field)?),
        },
        // Optional for backward compatibility with pre-snapshot spec documents.
        snapshots: match v.get("snapshots") {
            Some(Value::Null) | None => None,
            Some(field) => Some(snapshots_of(field)?),
        },
        stop: stop_of(get(v, "stop", ctx)?)?,
        metrics: match v.get("metrics") {
            Some(Value::Null) | None => Vec::new(),
            Some(field) => array_of(field, "metrics")?
                .iter()
                .map(|item| string_of(item, "metrics"))
                .collect::<Parsed<Vec<_>>>()?,
        },
        // Optional for backward compatibility with pre-monitor spec documents.
        properties: match v.get("properties") {
            Some(Value::Null) | None => Vec::new(),
            Some(field) => array_of(field, "properties")?
                .iter()
                .map(|item| string_of(item, "properties"))
                .collect::<Parsed<Vec<_>>>()?,
        },
        trials: u64_of(get(v, "trials", ctx)?, "trials")?,
        base_seed: u64_of(get(v, "base_seed", ctx)?, "base_seed")?,
        check: check_of(get(v, "check", ctx)?)?,
    })
}
