//! The runnable form of a scenario and its simulator/harness backends.
//!
//! [`CompiledScenario`] is a validated [`ScenarioSpec`] plus the machinery to instantiate it:
//! build the network (with initial-configuration overrides applied), instantiate the daemon,
//! run warmup → fault → measured phase, and collect the selected metrics.  The same compiled
//! value drives single runs ([`CompiledScenario::run`]), sharded multi-trial experiments
//! ([`CompiledScenario::run_harness`]) and — in the sibling `check` module — the
//! bounded-exhaustive checker ([`CompiledScenario::check`]).
//!
//! # Seed discipline
//!
//! Every randomized ingredient (workload, daemon, fault injector) stores a *base* seed in the
//! spec; a trial adds its [`crate::harness::trial_seed`] stream to it, and random topologies
//! add the trial *index*.  Trial 0 with stream 0 — what [`CompiledScenario::run`] executes —
//! reproduces the spec's seeds exactly, and harness results are independent of the shard
//! count (the discipline inherited from [`crate::harness::run_sharded`]).

use super::schedule;
use super::spec::{
    DaemonSpec, FaultEventSpec, ProtocolSpec, ScenarioSpec, StopSpec, WorkloadSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use crate::fairness::FairnessReport;
use crate::harness::{self, ExperimentRow};
use crate::progress::ProgressSink;
use crate::snapshot::{CutVerdict, SnapshotMonitor};
use crate::stats::Summary;
use crate::waiting::waiting_times;
use klex_core::{count_tokens, naive, nonstab, pusher, ss, KlConfig, KlInspect, Message};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use topology::{OrientedTree, Topology};
use treenet::app::BoxedDriver;
use treenet::{
    Activation, Adversarial, ChannelLabel, CsState, EnabledShape, EnabledView, EventScheduler,
    FaultInjector, Network, NodeId, Process, RandomFair, RoundRobin, RunOutcome, Scheduler,
    SnapshotMessage, SnapshotObserver, SnapshotRunner, Synchronous, Trace,
};

/// Per-epoch fault applier threaded through `drive`'s measured phase: the caller owns the
/// placement/injector streams so churn events can borrow spec context for donor templates.
type EventApplier<'a, P, T> =
    &'a mut dyn FnMut(&mut Network<P, T>, &FaultEventSpec, &mut StdRng, &mut FaultInjector);

/// A daemon instantiated from a [`DaemonSpec`]: one concrete enum over the bundled daemons,
/// usable both as a drop-in [`Scheduler`] and on the fused [`treenet::engine`] path.
pub enum Daemon {
    /// Deterministic round-robin.
    RoundRobin(RoundRobin),
    /// Seeded uniform random fair daemon.
    RandomFair(RandomFair),
    /// Lock-step synchronous rounds.
    Synchronous(Synchronous),
    /// Bounded-unfairness adversary.
    Adversarial(Adversarial),
}

impl Scheduler for Daemon {
    fn next_activation(&mut self, view: &dyn EnabledView) -> Activation {
        match self {
            Daemon::RoundRobin(d) => d.next_activation(view),
            Daemon::RandomFair(d) => d.next_activation(view),
            Daemon::Synchronous(d) => d.next_activation(view),
            Daemon::Adversarial(d) => d.next_activation(view),
        }
    }
}

impl EventScheduler for Daemon {
    fn next_event(&mut self, shape: &EnabledShape<'_>) -> Activation {
        match self {
            Daemon::RoundRobin(d) => d.next_event(shape),
            Daemon::RandomFair(d) => d.next_event(shape),
            Daemon::Synchronous(d) => d.next_event(shape),
            Daemon::Adversarial(d) => d.next_event(shape),
        }
    }
}

impl DaemonSpec {
    /// Instantiates the daemon; `stream` offsets random seeds per trial and
    /// `fallback_victim` is the target of an [`DaemonSpec::Adversarial`] daemon with an empty
    /// victim list (the deepest node of the built topology).
    pub fn instantiate(&self, stream: u64, fallback_victim: NodeId) -> Daemon {
        match self {
            DaemonSpec::RoundRobin => Daemon::RoundRobin(RoundRobin::new()),
            DaemonSpec::RandomFair { seed } => {
                Daemon::RandomFair(RandomFair::new(seed.wrapping_add(stream)))
            }
            DaemonSpec::Synchronous => Daemon::Synchronous(Synchronous::new()),
            DaemonSpec::Adversarial { victims, patience } => {
                let victims =
                    if victims.is_empty() { vec![fallback_victim] } else { victims.clone() };
                Daemon::Adversarial(Adversarial::new(victims, *patience))
            }
        }
    }
}

impl WorkloadSpec {
    /// A per-node driver factory; `stream` offsets random seeds per trial, and `leaves`
    /// flags the leaf nodes of the built topology (consumed by
    /// [`WorkloadSpec::LeafUniform`]).
    pub fn driver_factory(
        &self,
        stream: u64,
        leaves: Vec<bool>,
    ) -> Box<dyn FnMut(NodeId) -> BoxedDriver + '_> {
        match self {
            WorkloadSpec::Idle => Box::new(|_| Box::new(treenet::app::Idle) as BoxedDriver),
            WorkloadSpec::Saturated { units, hold } => {
                let (units, hold) = (*units, *hold);
                Box::new(move |_| Box::new(workloads::Saturated { units, hold }) as BoxedDriver)
            }
            WorkloadSpec::Uniform { seed, p_request, max_units, max_hold } => Box::new(
                workloads::all_uniform(seed.wrapping_add(stream), *p_request, *max_units, *max_hold),
            ),
            WorkloadSpec::Needs { needs, hold } => {
                let hold = *hold;
                Box::new(move |node| {
                    let units = needs.get(node).copied().unwrap_or(0);
                    Box::new(workloads::Heterogeneous { units, hold }) as BoxedDriver
                })
            }
            WorkloadSpec::LeafUniform { seed, p_request, max_units, max_hold } => {
                let mut uniform = workloads::all_uniform(
                    seed.wrapping_add(stream),
                    *p_request,
                    *max_units,
                    *max_hold,
                );
                Box::new(move |node| {
                    if leaves.get(node).copied().unwrap_or(false) {
                        uniform(node)
                    } else {
                        Box::new(treenet::app::Idle) as BoxedDriver
                    }
                })
            }
        }
    }
}

/// A protocol node the scenario layer can drive generically: every rung of the ladder plus
/// the ring baseline.  Adds declarative-init support and driver replacement (the multi-trial
/// reuse hook) on top of the inspection interface.
pub trait ScenarioNode: Process<Msg = Message> + KlInspect + treenet::Corruptible {
    /// Overwrites the request state (the paper's `State`, `Need`, `RSet`).
    fn set_request_state(&mut self, state: CsState, need: usize, rset: Vec<usize>);

    /// Installs a fresh application driver (each reused trial gets its own seeded driver).
    fn set_driver(&mut self, driver: BoxedDriver);

    /// Marks the root as already bootstrapped, where the rung supports it.
    fn mark_bootstrapped(&mut self) {}

    /// The `(channel, message)` the node's recovery timer would send right now, for rungs
    /// that have one (the ss root's controller retransmission).  Timer-disabled executions
    /// — the checker's fault-schedule prologue — replay it when injected faults have
    /// destroyed every in-flight message.
    fn timeout_message(&self) -> Option<(usize, Message)> {
        None
    }
}

impl ScenarioNode for naive::NaiveNode {
    fn set_request_state(&mut self, state: CsState, need: usize, rset: Vec<usize>) {
        self.app.state = state;
        self.app.need = need;
        self.app.rset = rset;
    }
    fn set_driver(&mut self, driver: BoxedDriver) {
        self.app.set_driver(driver);
    }
    fn mark_bootstrapped(&mut self) {
        self.bootstrapped = true;
    }
}

impl ScenarioNode for pusher::PusherNode {
    fn set_request_state(&mut self, state: CsState, need: usize, rset: Vec<usize>) {
        self.app.state = state;
        self.app.need = need;
        self.app.rset = rset;
    }
    fn set_driver(&mut self, driver: BoxedDriver) {
        self.app.set_driver(driver);
    }
    fn mark_bootstrapped(&mut self) {
        self.bootstrapped = true;
    }
}

impl ScenarioNode for nonstab::NonStabNode {
    fn set_request_state(&mut self, state: CsState, need: usize, rset: Vec<usize>) {
        self.app.state = state;
        self.app.need = need;
        self.app.rset = rset;
    }
    fn set_driver(&mut self, driver: BoxedDriver) {
        self.app.set_driver(driver);
    }
    fn mark_bootstrapped(&mut self) {
        self.bootstrapped = true;
    }
}

impl ScenarioNode for ss::SsNode {
    fn set_request_state(&mut self, state: CsState, need: usize, rset: Vec<usize>) {
        self.app.state = state;
        self.app.need = need;
        self.app.rset = rset;
    }
    fn set_driver(&mut self, driver: BoxedDriver) {
        self.app.set_driver(driver);
    }
    fn timeout_message(&self) -> Option<(usize, Message)> {
        self.timeout_retransmission()
    }
}

impl ScenarioNode for baselines::ring::RingSsNode {
    fn set_request_state(&mut self, state: CsState, need: usize, rset: Vec<usize>) {
        self.app.state = state;
        self.app.need = need;
        self.app.rset = rset;
    }
    fn set_driver(&mut self, driver: BoxedDriver) {
        self.app.set_driver(driver);
    }
}

/// The result of one fault-schedule epoch: the perturbation applied and whether (and how
/// fast) the network re-converged within the epoch's budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochOutcome {
    /// The epoch's event label ([`FaultEventSpec::label`]).
    pub event: String,
    /// Network size *after* the event (differs across churn epochs).
    pub nodes: usize,
    /// Logical time at which the event was applied.
    pub started_at: u64,
    /// Activations from the event to the start of the sustained-legitimacy streak
    /// (`None`: the re-convergence budget was exhausted).
    pub convergence: Option<u64>,
}

/// The result of one simulated scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Why the measured phase stopped.
    pub outcome: RunOutcome,
    /// Activations the warmup phase took to stabilize (`None`: no warmup, or it failed).
    pub warmup_activations: Option<u64>,
    /// Per-epoch results of the fault-schedule campaign (empty without one, or when the run
    /// was abandoned before the campaign).
    pub epochs: Vec<EpochOutcome>,
    /// Logical time at which the measured phase started (after warmup and fault injection).
    pub started_at: u64,
    /// Logical time at which the measured phase ended.
    pub ended_at: u64,
    /// The selected metrics (see [`super::spec::METRIC_NAMES`]).
    pub metrics: BTreeMap<String, f64>,
    /// Per-cut safety verdicts of the measured phase's consistent snapshots (empty without a
    /// [`super::spec::SnapshotSpec`]).
    pub snapshots: Vec<CutVerdict>,
    /// The application-event trace of the measured phase.
    pub trace: Trace,
}

impl ScenarioOutcome {
    /// Convenience: the metric by name, if it was selected and computable.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).copied()
    }
}

/// Aggregated result of a sharded multi-trial harness run.
#[derive(Debug, Clone)]
pub struct HarnessReport {
    /// The scenario name (table row label).
    pub label: String,
    /// Per-trial metric maps, in trial order (identical for every shard count).
    pub per_trial: Vec<BTreeMap<String, f64>>,
    /// Per-metric summaries over all trials.
    pub summaries: BTreeMap<String, Summary>,
}

impl HarnessReport {
    /// Renders the report as one experiment-table row (mean/p95/max per metric).
    pub fn row(&self) -> ExperimentRow {
        let mut row = ExperimentRow::new(self.label.clone());
        for (metric, summary) in &self.summaries {
            row = row.with_summary(metric, summary);
        }
        row
    }

    /// The distribution of `metric` across the trials, with trials that did not report the
    /// metric counted in the histogram's dedicated [`crate::Histogram::exhausted`] bucket
    /// instead of being folded into the max bucket.  (Metrics like
    /// `convergence_activations` are omitted from a trial's map exactly when the run
    /// exhausted its budget — see [`CompiledScenario::run`]'s metric collection — so
    /// "missing" is the per-trial footprint of [`RunOutcome::Exhausted`].)
    /// # Panics
    ///
    /// Panics on a metric name that no scenario can ever report — an absent-but-known
    /// metric means exhausted trials, an unknown one means a typo at the call site, and
    /// the two must not look alike.
    pub fn distribution(&self, metric: &str, buckets: usize) -> crate::Histogram {
        assert!(
            super::spec::is_metric_name(metric),
            "unknown metric {metric:?} (known: {:?} plus epoch<i>_convergence)",
            super::spec::METRIC_NAMES
        );
        let samples: Vec<u64> = self
            .per_trial
            .iter()
            .filter_map(|trial| trial.get(metric).map(|v| v.max(0.0) as u64))
            .collect();
        let max = samples.iter().copied().max().unwrap_or(0);
        let mut histogram = crate::Histogram::with_range(max + 1, buckets.max(1));
        for trial in &self.per_trial {
            match trial.get(metric) {
                Some(value) => histogram.record(value.max(0.0) as u64),
                None => histogram.record_exhausted(),
            }
        }
        histogram
    }

    /// The fraction of trials in which `metric` was reported with a non-zero value —
    /// `converged`/`satisfied`-style success rates.
    pub fn fraction(&self, metric: &str) -> f64 {
        if self.per_trial.is_empty() {
            return 0.0;
        }
        let hits = self
            .per_trial
            .iter()
            .filter(|trial| trial.get(metric).copied().unwrap_or(0.0) != 0.0)
            .count();
        hits as f64 / self.per_trial.len() as f64
    }
}

/// A validated, runnable scenario — see the [module docs](crate::scenario) and
/// [`ScenarioSpec::compile`].
#[derive(Clone, Debug)]
pub struct CompiledScenario {
    spec: ScenarioSpec,
}

/// `Scenario` is the user-facing name of the compiled form: `Scenario::builder()` starts a
/// spec fluently, `Scenario::run` executes it.
pub type Scenario = CompiledScenario;

impl CompiledScenario {
    pub(crate) fn from_validated(spec: ScenarioSpec) -> Self {
        CompiledScenario { spec }
    }

    /// Starts a fluent [`super::spec::ScenarioBuilder`] (same entry point as
    /// [`ScenarioSpec::builder`]).
    pub fn builder(name: impl Into<String>) -> super::spec::ScenarioBuilder {
        ScenarioSpec::builder(name)
    }

    /// The underlying declarative spec.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Runs the scenario once (trial 0: the spec's seeds, verbatim).
    pub fn run(&self) -> ScenarioOutcome {
        self.run_trial(0, 0)
    }

    /// [`CompiledScenario::run`] under observation: the warmup/fault/measure phase
    /// boundaries report through `sink`, and a cancelled sink abandons the run at the next
    /// phase boundary (the outcome then reads `Exhausted`; cancelling callers discard it).
    /// Observation never changes what an uncancelled run computes.
    pub fn run_observed(&self, sink: &dyn ProgressSink) -> ScenarioOutcome {
        self.run_trial_observed(0, 0, Some(sink))
    }

    /// Runs the scenario once and evaluates the spec's declared temporal monitors
    /// ([`super::spec::ScenarioSpec::properties`]) over the execution — the
    /// simulator-under-monitors backend of the liveness subsystem.
    pub fn run_monitored(&self) -> (ScenarioOutcome, Vec<crate::monitor::MonitorReport>) {
        let outcome = self.run();
        let reports = self.monitor_outcome(&outcome);
        (outcome, reports)
    }

    /// [`CompiledScenario::run_monitored`] under observation (see
    /// [`CompiledScenario::run_observed`] for the reporting and cancellation contract).
    pub fn run_monitored_observed(
        &self,
        sink: &dyn ProgressSink,
    ) -> (ScenarioOutcome, Vec<crate::monitor::MonitorReport>) {
        let outcome = self.run_observed(sink);
        let reports = self.monitor_outcome(&outcome);
        (outcome, reports)
    }

    /// Evaluates the spec's monitors over an already-computed outcome: the measured-phase
    /// trace becomes the observation stream, a converged warmup (and a satisfied
    /// `legitimate`-predicate stop) contribute [`crate::monitor::MonitorEvent::Legitimate`]
    /// observations, and the stream ends finitely at the run's end time.
    pub fn monitor_outcome(&self, outcome: &ScenarioOutcome) -> Vec<crate::monitor::MonitorReport> {
        use crate::monitor::{self, MonitorEvent, StreamEnd};
        let mut monitors: Vec<Box<dyn crate::monitor::TemporalMonitor>> = self
            .spec
            .properties
            .iter()
            .map(|name| {
                monitor::monitor_for(name, self.spec.config.k, self.spec.config.l)
                    .expect("monitor names are validated at compile time")
            })
            .collect();
        if let Some(at) = outcome.warmup_activations {
            monitor::observe_all(&mut monitors, &MonitorEvent::Legitimate { at });
        }
        // Every re-converged fault epoch is a witnessed legitimacy point: a multi-epoch
        // campaign certifies `ConvergenceWitnessed` once per recovery.
        for epoch in &outcome.epochs {
            if let Some(convergence) = epoch.convergence {
                monitor::observe_all(
                    &mut monitors,
                    &MonitorEvent::Legitimate { at: epoch.started_at + convergence },
                );
            }
        }
        monitor::feed_trace(&mut monitors, &outcome.trace);
        if let StopSpec::Predicate { name, .. } = &self.spec.stop {
            if name == "legitimate" && outcome.outcome.is_satisfied() {
                if let Some(at) = outcome.outcome.time() {
                    monitor::observe_all(&mut monitors, &MonitorEvent::Legitimate { at });
                }
            }
        }
        monitor::finish_all(&mut monitors, StreamEnd::Finite { at: outcome.ended_at })
    }

    /// Runs one trial: `index` offsets random-topology seeds, `stream` offsets workload,
    /// daemon and fault seeds (pass a [`crate::harness::trial_seed`] stream).
    pub fn run_trial(&self, index: u64, stream: u64) -> ScenarioOutcome {
        self.run_trial_observed(index, stream, None)
    }

    /// [`CompiledScenario::run_trial`] with an optional [`ProgressSink`] threaded into the
    /// warmup/fault/measure phases.
    pub fn run_trial_observed(
        &self,
        index: u64,
        stream: u64,
        sink: Option<&dyn ProgressSink>,
    ) -> ScenarioOutcome {
        match self.spec.protocol {
            ProtocolSpec::Naive => {
                let construct = |t, c, d: &mut dyn FnMut(NodeId) -> BoxedDriver| naive::network(t, c, d);
                let (mut net, victim) = self.build_tree_net(index, stream, construct);
                self.drive_tree(&mut net, victim, stream, sink, &construct)
            }
            ProtocolSpec::Pusher => {
                let construct = |t, c, d: &mut dyn FnMut(NodeId) -> BoxedDriver| pusher::network(t, c, d);
                let (mut net, victim) = self.build_tree_net(index, stream, construct);
                self.drive_tree(&mut net, victim, stream, sink, &construct)
            }
            ProtocolSpec::NonStab => {
                let construct = |t, c, d: &mut dyn FnMut(NodeId) -> BoxedDriver| nonstab::network(t, c, d);
                let (mut net, victim) = self.build_tree_net(index, stream, construct);
                self.drive_tree(&mut net, victim, stream, sink, &construct)
            }
            ProtocolSpec::Ss => {
                let construct = |t, c, d: &mut dyn FnMut(NodeId) -> BoxedDriver| ss::network(t, c, d);
                let (mut net, victim) = self.build_tree_net(index, stream, construct);
                self.drive_tree(&mut net, victim, stream, sink, &construct)
            }
            ProtocolSpec::Ring => {
                let mut net = self.build_ring_net(stream);
                let victim = net.len() - 1;
                let cfg = self.spec.config.to_kl(net.len());
                // The ring baseline has no churn/crash support (validated away); the only
                // schedule epochs reaching it are injector-driven.
                let mut apply = |net: &mut Network<baselines::ring::RingSsNode, topology::Ring>,
                                 event: &FaultEventSpec,
                                 _placement: &mut StdRng,
                                 injector: &mut FaultInjector| match event {
                    FaultEventSpec::Transient { plan } => {
                        injector.inject(net, &plan.to_plan(&cfg));
                    }
                    FaultEventSpec::MessageBurst { drop, duplicate, garbage } => {
                        let plan = treenet::FaultPlan {
                            corrupt_node_prob: 0.0,
                            channel_garbage_max: *garbage,
                            drop_prob: *drop,
                            duplicate_prob: *duplicate,
                            clear_channel_prob: 0.0,
                        };
                        injector.inject(net, &plan);
                    }
                    _ => unreachable!("tree-only fault epochs are rejected at compile time"),
                };
                self.drive(&mut net, victim, stream, baselines::ring::is_legitimate, sink, &mut apply)
            }
        }
    }

    /// [`CompiledScenario::drive`] specialized to tree-protocol networks: wires up the full
    /// fault-schedule event applier (including churn, which rebuilds the network over the
    /// placed tree with `construct` providing the donor).
    fn drive_tree<P, F>(
        &self,
        net: &mut Network<P, OrientedTree>,
        fallback_victim: NodeId,
        stream: u64,
        sink: Option<&dyn ProgressSink>,
        construct: &F,
    ) -> ScenarioOutcome
    where
        P: ScenarioNode + treenet::Restartable,
        F: Fn(
            OrientedTree,
            KlConfig,
            &mut dyn FnMut(NodeId) -> BoxedDriver,
        ) -> Network<P, OrientedTree>,
    {
        // The config is pinned to the spec'd size for the whole run: churn is the paper's
        // transient-fault regime (the protocol recovers under fixed parameters), not a
        // reconfiguration of ℓ/CMAX/timeout.
        let cfg = self.spec.config.to_kl(self.spec.topology.len());
        let spec = &self.spec;
        let mut apply = |net: &mut Network<P, OrientedTree>,
                         event: &FaultEventSpec,
                         placement: &mut StdRng,
                         injector: &mut FaultInjector| {
            schedule::apply_event(net, event, &cfg, placement, injector, &mut |tree| {
                let leaves: Vec<bool> = (0..tree.len()).map(|v| tree.is_leaf(v)).collect();
                let mut drivers = spec.workload.driver_factory(stream, leaves);
                construct(tree.clone(), cfg, &mut *drivers)
            });
        };
        self.drive(net, fallback_victim, stream, klex_core::is_legitimate, sink, &mut apply)
    }

    /// Runs the spec's trial plan sharded across up to `shards` worker threads.  Per-trial
    /// seeds are a function of the trial index alone, so the report is identical for every
    /// shard count ([`crate::harness::run_sharded`]'s discipline).
    ///
    /// Tree-protocol scenarios on a fixed (non-seeded) topology reuse **one network per
    /// worker thread** across all its trials: after the first trial the network is reset in
    /// place ([`treenet::Network::reset_trial`] — processes restarted and re-seeded via
    /// [`ScenarioNode::set_driver`], every allocation retained) instead of rebuilt.  Reuse
    /// is behaviourally invisible: a reset network is observationally identical to a fresh
    /// one, so per-trial results match the rebuild path bit-for-bit (asserted by the
    /// scenario reuse tests) and remain independent of the shard count.
    pub fn run_harness(&self, shards: usize) -> HarnessReport {
        self.run_harness_observed(shards, None)
    }

    /// [`CompiledScenario::run_harness`] under observation: completed trials stream out as
    /// the `"trials"` phase, and a cancelled sink makes the remaining trials return empty
    /// metric maps — the report is then partial, and cancelling callers discard it.
    pub fn run_harness_observed(
        &self,
        shards: usize,
        sink: Option<&dyn ProgressSink>,
    ) -> HarnessReport {
        let trials = self.spec.trials.max(1);
        let observer =
            sink.map(|sink| TrialObserver { sink, done: AtomicU64::new(0), total: trials });
        let observer = observer.as_ref();
        let per_trial = match self.spec.protocol {
            ProtocolSpec::Naive => {
                self.tree_harness_trials(trials, shards, observer, |t, c, d| naive::network(t, c, d))
            }
            ProtocolSpec::Pusher => {
                self.tree_harness_trials(trials, shards, observer, |t, c, d| pusher::network(t, c, d))
            }
            ProtocolSpec::NonStab => {
                self.tree_harness_trials(trials, shards, observer, |t, c, d| nonstab::network(t, c, d))
            }
            ProtocolSpec::Ss => {
                self.tree_harness_trials(trials, shards, observer, |t, c, d| ss::network(t, c, d))
            }
            // The ring baseline has no restart support; its trials rebuild.
            ProtocolSpec::Ring => {
                harness::run_sharded(trials, self.spec.base_seed, shards, |index, stream| {
                    if observer.is_some_and(|o| o.cancelled()) {
                        return BTreeMap::new();
                    }
                    let metrics = self.run_trial(index, stream).metrics;
                    if let Some(observer) = observer {
                        observer.completed_one();
                    }
                    metrics
                })
            }
        };
        HarnessReport {
            label: self.spec.name.clone(),
            summaries: harness::summarize(&per_trial),
            per_trial,
        }
    }

    /// The tree-protocol harness loop: sharded trials with per-worker network reuse (see
    /// [`CompiledScenario::run_harness`]).  Falls back to rebuilding when the topology is
    /// seeded per trial index — there is no fixed shape to reuse.
    fn tree_harness_trials<P, F>(
        &self,
        trials: u64,
        shards: usize,
        observer: Option<&TrialObserver<'_>>,
        construct: F,
    ) -> Vec<BTreeMap<String, f64>>
    where
        P: ScenarioNode + treenet::Restartable,
        F: Fn(
                OrientedTree,
                KlConfig,
                &mut dyn FnMut(NodeId) -> BoxedDriver,
            ) -> Network<P, OrientedTree>
            + Sync,
    {
        // Churned trials end on a different shape than they started; a reused network would
        // leak one trial's final topology into the next, so churn rebuilds per trial too.
        if self.spec.topology.is_seeded() || self.spec.has_churn() {
            return harness::run_sharded(trials, self.spec.base_seed, shards, |index, stream| {
                if observer.is_some_and(|o| o.cancelled()) {
                    return BTreeMap::new();
                }
                let (mut net, victim) =
                    self.build_tree_net(index, stream, |t, c, d| construct(t, c, d));
                let metrics = self
                    .drive_tree(&mut net, victim, stream, None, &|t, c, d: &mut dyn FnMut(NodeId) -> BoxedDriver| construct(t, c, d))
                    .metrics;
                if let Some(observer) = observer {
                    observer.completed_one();
                }
                metrics
            });
        }
        harness::run_sharded_with(
            trials,
            self.spec.base_seed,
            shards,
            || None::<Network<P, OrientedTree>>,
            |slot, index, stream| {
                if observer.is_some_and(|o| o.cancelled()) {
                    return BTreeMap::new();
                }
                let victim;
                let net = match slot {
                    Some(net) => {
                        victim = deepest_node(net.topology());
                        let leaves: Vec<bool> =
                            (0..net.len()).map(|v| net.topology().is_leaf(v)).collect();
                        let mut drivers = self.spec.workload.driver_factory(stream, leaves);
                        net.reset_trial(|v, node| {
                            node.restart();
                            node.set_driver(drivers(v));
                        });
                        drop(drivers);
                        self.apply_init(net);
                        net
                    }
                    None => {
                        let (net, v) =
                            self.build_tree_net(index, stream, |t, c, d| construct(t, c, d));
                        victim = v;
                        slot.insert(net)
                    }
                };
                let metrics = self
                    .drive_tree(net, victim, stream, None, &|t, c, d: &mut dyn FnMut(NodeId) -> BoxedDriver| construct(t, c, d))
                    .metrics;
                if let Some(observer) = observer {
                    observer.completed_one();
                }
                metrics
            },
        )
    }

    /// Builds the scenario's network for the naive rung (trial 0, init applied).
    pub fn build_naive(&self) -> Result<Network<naive::NaiveNode, OrientedTree>, super::ScenarioError> {
        self.expect_protocol(ProtocolSpec::Naive)?;
        Ok(self.build_tree_net(0, 0, |t, c, d| naive::network(t, c, d)).0)
    }

    /// Builds the scenario's network for the pusher rung (trial 0, init applied).
    pub fn build_pusher(&self) -> Result<Network<pusher::PusherNode, OrientedTree>, super::ScenarioError> {
        self.expect_protocol(ProtocolSpec::Pusher)?;
        Ok(self.build_tree_net(0, 0, |t, c, d| pusher::network(t, c, d)).0)
    }

    /// Builds the scenario's network for the non-stabilizing rung (trial 0, init applied).
    pub fn build_nonstab(&self) -> Result<Network<nonstab::NonStabNode, OrientedTree>, super::ScenarioError> {
        self.expect_protocol(ProtocolSpec::NonStab)?;
        Ok(self.build_tree_net(0, 0, |t, c, d| nonstab::network(t, c, d)).0)
    }

    /// Builds the scenario's network for the self-stabilizing protocol (trial 0, init
    /// applied).
    pub fn build_ss(&self) -> Result<Network<ss::SsNode, OrientedTree>, super::ScenarioError> {
        self.expect_protocol(ProtocolSpec::Ss)?;
        Ok(self.build_tree_net(0, 0, |t, c, d| ss::network(t, c, d)).0)
    }

    /// Instantiates the main-phase daemon (trial 0).  The fallback victim of an empty
    /// adversarial victim list is the deepest node of the trial-0 tree.
    pub fn make_daemon(&self) -> Daemon {
        let victim = match self.spec.protocol {
            ProtocolSpec::Ring => self.spec.topology.len() - 1,
            _ => deepest_node(&self.spec.topology.build(0)),
        };
        self.spec.daemon.instantiate(0, victim)
    }

    fn expect_protocol(&self, expected: ProtocolSpec) -> Result<(), super::ScenarioError> {
        if self.spec.protocol == expected {
            Ok(())
        } else {
            Err(super::ScenarioError::Invalid(format!(
                "scenario {:?} runs the {} protocol, not {}",
                self.spec.name,
                self.spec.protocol.label(),
                expected.label()
            )))
        }
    }

    /// Builds a tree-protocol network via `construct`, applies the init overrides, and
    /// returns it with the adversarial fallback victim (deepest node).
    fn build_tree_net<P, F>(&self, index: u64, stream: u64, construct: F) -> (Network<P, OrientedTree>, NodeId)
    where
        P: ScenarioNode,
        F: FnOnce(
            OrientedTree,
            KlConfig,
            &mut dyn FnMut(NodeId) -> BoxedDriver,
        ) -> Network<P, OrientedTree>,
    {
        let tree = self.spec.topology.build(index);
        let victim = deepest_node(&tree);
        let leaves: Vec<bool> = (0..tree.len()).map(|v| tree.is_leaf(v)).collect();
        let cfg = self.spec.config.to_kl(tree.len());
        let mut drivers = self.spec.workload.driver_factory(stream, leaves);
        let mut net = construct(tree, cfg, &mut *drivers);
        self.apply_init(&mut net);
        (net, victim)
    }

    fn build_ring_net(&self, stream: u64) -> Network<baselines::ring::RingSsNode, topology::Ring> {
        let n = self.spec.topology.len();
        let cfg = self.spec.config.to_kl(n);
        let mut drivers = self.spec.workload.driver_factory(stream, vec![false; n]);
        let mut net = baselines::ring::network(n, cfg, &mut *drivers);
        self.apply_init(&mut net);
        net
    }

    /// Applies the spec's initial-configuration overrides to a freshly built network.
    pub(super) fn apply_init<P: ScenarioNode, T: Topology>(&self, net: &mut Network<P, T>) {
        let Some(init) = &self.spec.init else { return };
        if init.bootstrapped_root {
            net.node_mut(0).mark_bootstrapped();
        }
        for node_init in &init.nodes {
            net.node_mut(node_init.node).set_request_state(
                node_init.state.to_cs(),
                node_init.need,
                node_init.rset.clone(),
            );
        }
        for inject in &init.inject {
            net.inject_from(inject.from, inject.channel, inject.message.to_message());
        }
    }

    /// Warmup → fault → measured phase → metric collection, generically over the protocol.
    ///
    /// Takes the network by `&mut` so harness workers can reuse one network across trials;
    /// the run-accumulated trace is moved out into the outcome either way.
    fn drive<P, T, L>(
        &self,
        net: &mut Network<P, T>,
        fallback_victim: NodeId,
        stream: u64,
        legit: L,
        sink: Option<&dyn ProgressSink>,
        apply_event: EventApplier<'_, P, T>,
    ) -> ScenarioOutcome
    where
        P: ScenarioNode,
        T: Topology,
        L: Fn(&Network<P, T>, &KlConfig) -> bool,
    {
        let n = net.len();
        let cfg = self.spec.config.to_kl(n);

        // Phase 1: optional warmup to sustained legitimacy, then reset the counters.
        let mut warmup_activations = None;
        if let Some(warmup) = &self.spec.warmup {
            if let Some(sink) = sink {
                sink.progress("warmup", 0, 1);
            }
            let window = warmup.window.unwrap_or_else(|| crate::convergence::default_window(n));
            let stabilized = {
                let mut daemon = warmup
                    .daemon
                    .as_ref()
                    .unwrap_or(&self.spec.daemon)
                    .instantiate(stream, fallback_victim);
                run_sustained(&mut *net, &mut daemon, warmup.max_steps, window, |net| {
                    legit(net, &cfg)
                })
            };
            match stabilized {
                RunOutcome::Satisfied(at) => warmup_activations = Some(at),
                _ => {
                    // Warmup failed: no measurement phase ran, so only the failure flags are
                    // reported — measurement metrics (waits, fairness, …) computed over an
                    // unconverged warmup execution would contaminate harness summaries.
                    let metrics = self
                        .spec
                        .selected_metrics()
                        .into_iter()
                        .filter(|name| name == "satisfied" || name == "converged")
                        .map(|name| (name, 0.0))
                        .collect();
                    return ScenarioOutcome {
                        outcome: RunOutcome::Exhausted(net.now()),
                        warmup_activations: None,
                        epochs: Vec::new(),
                        started_at: net.now(),
                        ended_at: net.now(),
                        metrics,
                        snapshots: Vec::new(),
                        trace: std::mem::take(net.trace_mut()),
                    };
                }
            }
            net.trace_mut().clear();
            net.metrics_mut().reset();
            if let Some(sink) = sink {
                sink.progress("warmup", 1, 1);
            }
        }
        // Cancellation is honored between phases: the network is in a consistent state
        // here, and the measured run is the expensive part being skipped.
        if sink.is_some_and(|s| s.cancelled()) {
            return ScenarioOutcome {
                outcome: RunOutcome::Exhausted(net.now()),
                warmup_activations,
                epochs: Vec::new(),
                started_at: net.now(),
                ended_at: net.now(),
                metrics: BTreeMap::new(),
                snapshots: Vec::new(),
                trace: std::mem::take(net.trace_mut()),
            };
        }

        // Phase 2: optional transient fault.
        if let Some(fault) = &self.spec.fault {
            let mut injector = FaultInjector::new(fault.seed.wrapping_add(stream));
            injector.inject(&mut *net, &fault.plan.to_plan(&cfg));
            if let Some(sink) = sink {
                sink.progress("fault", 1, 1);
            }
        }

        // Phase 2b: the fault-schedule campaign.  Each epoch applies its event and then runs
        // the main daemon until sustained legitimacy (or the epoch budget); the activations
        // from event to streak start are the epoch's recorded stabilization time.  The
        // campaign is a gauntlet preamble to the measured phase, so trace and metrics are
        // reset afterwards just like after warmup.
        let mut epochs = Vec::new();
        if let Some(sched) = &self.spec.fault_schedule {
            if !sched.epochs.is_empty() {
                let mut placement =
                    StdRng::seed_from_u64(schedule::placement_seed(sched.seed, stream));
                let mut injector =
                    FaultInjector::new(schedule::injector_seed(sched.seed, stream));
                let mut daemon = self.spec.daemon.instantiate(stream, fallback_victim);
                let total = sched.epochs.len() as u64;
                for (i, event) in sched.epochs.iter().enumerate() {
                    if sink.is_some_and(|s| s.cancelled()) {
                        break;
                    }
                    let started_at = net.now();
                    apply_event(&mut *net, event, &mut placement, &mut injector);
                    let window = sched
                        .window
                        .unwrap_or_else(|| crate::convergence::default_window(net.len()));
                    let outcome =
                        run_sustained(&mut *net, &mut daemon, sched.max_steps, window, |net| {
                            legit(net, &cfg)
                        });
                    let convergence = match outcome {
                        RunOutcome::Satisfied(at) => Some(at - started_at),
                        _ => None,
                    };
                    epochs.push(EpochOutcome {
                        event: event.label().to_string(),
                        nodes: net.len(),
                        started_at,
                        convergence,
                    });
                    if let Some(sink) = sink {
                        sink.progress("epoch", (i + 1) as u64, total);
                    }
                }
                net.trace_mut().clear();
                net.metrics_mut().reset();
            }
        }

        // Phase 3: the measured run.
        if let Some(sink) = sink {
            sink.progress("measure", 0, 1);
        }
        let mut daemon = self.spec.daemon.instantiate(stream, fallback_victim);
        let phase_start = net.now();
        let base_entries = net.trace().cs_entries(None) as u64;
        // `net.len()`, not the entry-time `n`: a churn campaign may have changed the size.
        let requesters: Vec<NodeId> =
            (0..net.len()).filter(|&v| net.node(v).is_unsatisfied_requester()).collect();
        let requester_base: Vec<u64> =
            requesters.iter().map(|&v| net.trace().cs_entries(Some(v)) as u64).collect();
        // Snapshot instrumentation is assembled only when the spec asks for it: the
        // uninstrumented arms below are exactly the pre-snapshot code paths.
        let mut snapshots = self.spec.snapshots.as_ref().map(|spec| {
            let monitor = ObservedCuts { inner: SnapshotMonitor::new(&cfg), sink };
            (SnapshotRunner::new(spec.to_plan()), monitor)
        });
        let outcome = match &self.spec.stop {
            StopSpec::Steps { steps } => {
                match &mut snapshots {
                    None => treenet::engine::run(&mut *net, &mut daemon, *steps),
                    Some((runner, monitor)) => {
                        treenet::run_with_snapshots(&mut *net, &mut daemon, *steps, runner, monitor)
                    }
                }
                RunOutcome::Satisfied(net.now())
            }
            StopSpec::Quiescent { max_steps, grace } => match &mut snapshots {
                None => treenet::run_until_quiescent(&mut *net, &mut daemon, *max_steps, *grace),
                Some((runner, monitor)) => run_quiescent_snapshots(
                    &mut *net, &mut daemon, *max_steps, *grace, runner, monitor,
                ),
            },
            StopSpec::CsEntries { entries, max_steps } => {
                let target = base_entries + entries;
                let pred = |net: &Network<P, T>| net.trace().cs_entries(None) as u64 >= target;
                match &mut snapshots {
                    None => treenet::run_until(&mut *net, &mut daemon, *max_steps, pred),
                    Some((runner, monitor)) => treenet::run_until_with_snapshots(
                        &mut *net, &mut daemon, *max_steps, runner, monitor, pred,
                    ),
                }
            }
            StopSpec::Predicate { name, max_steps, sustained_for } => {
                let pred = |net: &Network<P, T>| match name.as_str() {
                    "legitimate" => legit(net, &cfg),
                    "census-complete" => count_tokens(net).matches(cfg.l),
                    "all-requesters-served" => requesters.iter().zip(&requester_base).all(
                        |(&v, &base)| net.trace().cs_entries(Some(v)) as u64 > base,
                    ),
                    _ => unreachable!("predicate names are validated at compile time"),
                };
                match (&mut snapshots, *sustained_for > 0) {
                    (None, true) => {
                        run_sustained(&mut *net, &mut daemon, *max_steps, *sustained_for, pred)
                    }
                    (None, false) => treenet::run_until(&mut *net, &mut daemon, *max_steps, pred),
                    (Some((runner, monitor)), true) => run_sustained_snapshots(
                        &mut *net, &mut daemon, *max_steps, *sustained_for, runner, monitor, pred,
                    ),
                    (Some((runner, monitor)), false) => treenet::run_until_with_snapshots(
                        &mut *net, &mut daemon, *max_steps, runner, monitor, pred,
                    ),
                }
            }
        };
        let snapshots = snapshots.map(|(_, m)| m.inner.into_verdicts()).unwrap_or_default();

        if let Some(sink) = sink {
            sink.progress("measure", 1, 1);
        }
        let metrics = self.collect(
            &*net,
            &cfg,
            outcome,
            phase_start,
            warmup_activations,
            base_entries,
            &epochs,
            &snapshots,
        );
        let ended_at = net.now();
        ScenarioOutcome {
            outcome,
            warmup_activations,
            epochs,
            started_at: phase_start,
            ended_at,
            // Moved, not cloned: harness runs drop the outcome's trace immediately, and a
            // per-trial O(events) copy of a 400k-activation trace is real money.
            trace: std::mem::take(net.trace_mut()),
            metrics,
            snapshots,
        }
    }

    /// Computes the selected metrics from the post-run network state.
    #[allow(clippy::too_many_arguments)]
    fn collect<P, T>(
        &self,
        net: &Network<P, T>,
        cfg: &KlConfig,
        outcome: RunOutcome,
        phase_start: u64,
        warmup_activations: Option<u64>,
        base_entries: u64,
        epochs: &[EpochOutcome],
        snapshots: &[CutVerdict],
    ) -> BTreeMap<String, f64>
    where
        P: ScenarioNode,
        T: Topology,
    {
        let n = net.len();
        let mut metrics = BTreeMap::new();
        let selected = self.spec.selected_metrics();
        // The waiting-record scan is O(trace events); only pay it when a waiting metric was
        // actually selected.
        let waits = if selected.iter().any(|m| m == "waiting_max" || m == "waiting_mean") {
            waiting_times(net.trace())
        } else {
            Vec::new()
        };
        for name in selected {
            let value = match name.as_str() {
                "steps" => Some((net.now() - phase_start) as f64),
                "satisfied" => Some(f64::from(u8::from(outcome.time().is_some()))),
                "converged" => Some(f64::from(u8::from(
                    outcome.is_satisfied()
                        && (self.spec.warmup.is_none() || warmup_activations.is_some()),
                ))),
                "cs_entries" => Some((net.trace().cs_entries(None) as u64 - base_entries) as f64),
                "messages_sent" => Some(net.metrics().messages_sent as f64),
                "in_flight" => Some(net.in_flight() as f64),
                "blocked_requesters" => Some(
                    (0..n).filter(|&v| net.node(v).is_unsatisfied_requester()).count() as f64,
                ),
                "jain_index" => Some(FairnessReport::from_trace(net.trace(), n).jain_index),
                // Omitted (not reported as 0) when no request was satisfied, so trials
                // without waiting records are excluded from harness summaries instead of
                // dragging them toward zero — the pre-migration experiment semantics.
                "waiting_max" => {
                    waits.iter().map(|w| w.cs_entries_waited).max().map(|max| max as f64)
                }
                "waiting_mean" => {
                    if waits.is_empty() {
                        None
                    } else {
                        Some(
                            waits.iter().map(|w| w.cs_entries_waited as f64).sum::<f64>()
                                / waits.len() as f64,
                        )
                    }
                }
                "warmup_activations" => warmup_activations.map(|t| t as f64),
                "convergence_activations" => {
                    outcome.time().map(|t| (t - phase_start) as f64).filter(|_| {
                        matches!(self.spec.stop, StopSpec::Predicate { .. })
                            && outcome.is_satisfied()
                    })
                }
                "resource_tokens" => Some(count_tokens(net).resource as f64),
                "census_matches" => {
                    Some(f64::from(u8::from(count_tokens(net).matches(cfg.l))))
                }
                "epochs_total" | "epochs_converged" | "epoch_convergence_mean"
                | "epoch_convergence_max" => None, // inserted below for schedule runs
                "snapshots_taken" | "snapshots_clean" => None, // inserted below for snapshot runs
                _ => unreachable!("metric names are validated at compile time"),
            };
            if let Some(value) = value {
                metrics.insert(name, value);
            }
        }
        // Fault-schedule runs always report the campaign: the per-epoch convergence times
        // are the point of running one, whatever else was selected.  Epochs that failed to
        // re-converge omit their `epoch<i>_convergence` entry (the harness histogram then
        // counts them as exhausted, like `convergence_activations`).
        if self.spec.fault_schedule.is_some() {
            metrics.insert("epochs_total".into(), epochs.len() as f64);
            let conv: Vec<f64> =
                epochs.iter().filter_map(|e| e.convergence.map(|c| c as f64)).collect();
            metrics.insert("epochs_converged".into(), conv.len() as f64);
            if !conv.is_empty() {
                metrics.insert(
                    "epoch_convergence_mean".into(),
                    conv.iter().sum::<f64>() / conv.len() as f64,
                );
                metrics.insert(
                    "epoch_convergence_max".into(),
                    conv.iter().copied().fold(f64::MIN, f64::max),
                );
            }
            for (i, epoch) in epochs.iter().enumerate() {
                if let Some(c) = epoch.convergence {
                    metrics.insert(format!("epoch{i}_convergence"), c as f64);
                }
            }
        }
        // Snapshot runs always report the cut tally: verifying the cuts is the point of
        // taking them, whatever else was selected.
        if self.spec.snapshots.is_some() {
            metrics.insert("snapshots_taken".into(), snapshots.len() as f64);
            metrics.insert(
                "snapshots_clean".into(),
                snapshots.iter().filter(|v| v.clean()).count() as f64,
            );
        }
        metrics
    }
}

/// The scenario layer's snapshot observer: [`SnapshotMonitor`] plus per-cut progress
/// reporting — every completed cut streams out as one unit of the `"snapshot"` phase
/// (total 0: how many cuts a run takes is an outcome, not a plan).
struct ObservedCuts<'s> {
    inner: SnapshotMonitor,
    sink: Option<&'s dyn ProgressSink>,
}

impl<P> SnapshotObserver<P> for ObservedCuts<'_>
where
    P: ScenarioNode,
{
    fn node_state(&mut self, snap: u32, node: NodeId, process: &P) {
        SnapshotObserver::<P>::node_state(&mut self.inner, snap, node, process);
    }

    fn in_transit(&mut self, snap: u32, node: NodeId, label: ChannelLabel, msg: &P::Msg) {
        SnapshotObserver::<P>::in_transit(&mut self.inner, snap, node, label, msg);
    }

    fn cut_complete(&mut self, snap: u32, initiated_at: u64, completed_at: u64) {
        SnapshotObserver::<P>::cut_complete(&mut self.inner, snap, initiated_at, completed_at);
        if let Some(sink) = self.sink {
            sink.progress("snapshot", self.inner.cuts() as u64, 0);
        }
    }
}

/// [`run_sustained`] with snapshot interposition ([`SnapshotRunner::step`] instead of the
/// plain step) — same streak accounting, same convergence boundary.
#[allow(clippy::too_many_arguments)]
fn run_sustained_snapshots<P, T, S, O>(
    net: &mut Network<P, T>,
    daemon: &mut S,
    max_steps: u64,
    window: u64,
    runner: &mut SnapshotRunner,
    observer: &mut O,
    mut pred: impl FnMut(&Network<P, T>) -> bool,
) -> RunOutcome
where
    P: Process,
    P::Msg: SnapshotMessage,
    T: Topology,
    S: EventScheduler,
    O: SnapshotObserver<P>,
{
    let mut streak_start = if pred(net) { Some(net.now()) } else { None };
    for _ in 0..max_steps {
        runner.step(net, daemon, observer);
        if pred(net) {
            let start = *streak_start.get_or_insert(net.now());
            if net.now() - start >= window {
                return RunOutcome::Satisfied(start);
            }
        } else {
            streak_start = None;
        }
    }
    RunOutcome::Exhausted(net.now())
}

/// [`treenet::run_until_quiescent`] with snapshot interposition.  Marker traffic counts as
/// in-flight, so each cut resets the quiet streak; callers keep the grace below the
/// snapshot interval (see [`super::spec::SnapshotSpec`]).
fn run_quiescent_snapshots<P, T, S, O>(
    net: &mut Network<P, T>,
    daemon: &mut S,
    max_steps: u64,
    grace: u64,
    runner: &mut SnapshotRunner,
    observer: &mut O,
) -> RunOutcome
where
    P: Process,
    P::Msg: SnapshotMessage,
    T: Topology,
    S: EventScheduler,
    O: SnapshotObserver<P>,
{
    let mut quiet_for = 0u64;
    for _ in 0..max_steps {
        if net.in_flight() == 0 {
            quiet_for += 1;
            if quiet_for >= grace {
                return RunOutcome::Quiescent(net.now());
            }
        } else {
            quiet_for = 0;
        }
        runner.step(net, daemon, observer);
    }
    if net.in_flight() == 0 {
        RunOutcome::Quiescent(net.now())
    } else {
        RunOutcome::Exhausted(net.now())
    }
}

/// Shared per-trial bookkeeping of an observed harness run: a monotone completed-trial
/// counter reported through the sink as the `"trials"` phase, plus the cancellation relay
/// the sharded workers poll before claiming a trial.
struct TrialObserver<'s> {
    sink: &'s dyn ProgressSink,
    done: AtomicU64,
    total: u64,
}

impl TrialObserver<'_> {
    fn cancelled(&self) -> bool {
        self.sink.cancelled()
    }

    fn completed_one(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        self.sink.progress("trials", done, self.total);
    }
}

/// The deepest node of a tree — the default victim of an adversarial daemon.
pub fn deepest_node(tree: &OrientedTree) -> NodeId {
    (0..tree.len()).max_by_key(|&v| tree.depth(v)).unwrap_or(0)
}

/// Runs until `pred` has held for `window` **consecutive** activations, returning
/// `Satisfied(t)` with `t` the time the sustained streak *started* — exactly the loop and
/// convergence condition of [`crate::convergence::measure_convergence`], generalized over
/// the predicate, so scenario-measured stabilization times are boundary-identical to the
/// hand-wired convergence experiments.
fn run_sustained<P, T, S>(
    net: &mut Network<P, T>,
    daemon: &mut S,
    max_steps: u64,
    window: u64,
    mut pred: impl FnMut(&Network<P, T>) -> bool,
) -> RunOutcome
where
    P: Process,
    T: Topology,
    S: Scheduler,
{
    let mut streak_start = if pred(net) { Some(net.now()) } else { None };
    for _ in 0..max_steps {
        net.step(daemon);
        if pred(net) {
            let start = *streak_start.get_or_insert(net.now());
            if net.now() - start >= window {
                return RunOutcome::Satisfied(start);
            }
        } else {
            streak_start = None;
        }
    }
    RunOutcome::Exhausted(net.now())
}
