//! The bounded-exhaustive checking backend: lowering a scenario into the `checker` crate.
//!
//! Small instances of a compiled scenario can be verified instead of simulated: the explorer
//! enumerates **every** reachable configuration under **every** scheduling and checks the
//! spec's properties on all of them.  The lowering imposes the checker's soundness
//! requirements:
//!
//! * **stateless drivers** — only workloads expressible as pure functions of the observable
//!   request state lower ([`WorkloadSpec::Idle`], [`WorkloadSpec::Saturated`],
//!   [`WorkloadSpec::Needs`]); the stateful [`WorkloadSpec::Uniform`] is rejected.
//!   A `hold` of 0 lowers to an instantaneous critical section
//!   ([`checker::drivers::AlwaysRequest`]); any non-zero hold lowers to the shortest
//!   *visible* critical section ([`checker::drivers::HoldOneActivation`]);
//! * **no hidden timers** — the self-stabilizing protocol is built with its root timeout
//!   disabled ([`checker::scenarios::DISABLED_TIMEOUT`]), and unless the spec injects its own
//!   initial messages the controller message the first timeout would have produced is
//!   injected so the protocol can still bootstrap;
//! * the daemon, warmup, fault and stop condition of the spec do not apply — exploration
//!   covers all schedules from the (init-adjusted) initial configuration, bounded by
//!   [`super::spec::CheckSpec`].

use super::compile::{CompiledScenario, ScenarioNode};
use super::schedule;
use super::spec::{ProtocolSpec, WorkloadSpec};
use super::ScenarioError;
use crate::harness::auto_workers;
use crate::progress::ProgressSink;
use checker::snapshot::CheckableNode;
use checker::{
    drivers, properties, ExplorationReport, ExploreEngine, ExploreProgress, Explorer, Limits,
};
use klex_core::{naive, nonstab, pusher, ss, KlConfig, Message};
use rand::rngs::StdRng;
use rand::SeedableRng;
use topology::{OrientedTree, Topology};
use treenet::app::BoxedDriver;
use treenet::{FaultInjector, Network, NodeId};

impl CompiledScenario {
    /// Exhaustively explores the scenario's reachable configuration space (bounded by the
    /// spec's [`super::spec::CheckSpec`]) and checks the selected properties on every
    /// configuration, using the default (delta) exploration engine.
    ///
    /// Returns an error when the scenario cannot be lowered soundly: the ring baseline has no
    /// snapshot support, and stateful workloads would break the explorer's state abstraction.
    ///
    /// The engine is selected by the spec's [`super::spec::CheckSpec::threads`] knob: `1`
    /// runs the sequential delta engine, anything else the work-stealing parallel engine
    /// (`0`, the default, auto-sizes to one worker per available core — which resolves to
    /// the sequential engine on a single-core host).  The choice never changes the report:
    /// the engines are field-for-field identical by the parity contract.
    pub fn check(&self) -> Result<ExplorationReport, ScenarioError> {
        self.check_observed(None, None)
    }

    /// [`CompiledScenario::check`] under observation: same thread dispatch (with an optional
    /// override of the spec's `threads` knob), but the exploration reports throttled
    /// `"explore"` progress through `sink` and winds down early — with `truncated` set —
    /// when the sink cancels.  Observation never changes the report of an uncancelled run.
    pub fn check_observed(
        &self,
        threads_override: Option<usize>,
        sink: Option<&dyn ProgressSink>,
    ) -> Result<ExplorationReport, ScenarioError> {
        let threads = auto_workers(threads_override.unwrap_or(self.spec().check.threads));
        if threads <= 1 {
            self.check_with_sink(ExploreEngine::Delta, sink)
        } else {
            self.check_parallel_sink(threads, sink)
        }
    }

    /// [`CompiledScenario::check`] with an explicit engine choice — the hook the delta-parity
    /// suite uses to run the same lowered instance through both sequential engines and
    /// compare the reports.
    pub fn check_with(&self, engine: ExploreEngine) -> Result<ExplorationReport, ScenarioError> {
        self.check_with_sink(engine, None)
    }

    fn check_with_sink(
        &self,
        engine: ExploreEngine,
        sink: Option<&dyn ProgressSink>,
    ) -> Result<ExplorationReport, ScenarioError> {
        let spec = self.spec();
        match spec.protocol {
            ProtocolSpec::Naive => {
                let construct = |t, c, d: &mut dyn FnMut(NodeId) -> BoxedDriver| naive::network(t, c, d);
                let mut net = self.lowered_net(construct)?;
                self.apply_schedule_prologue(&mut net, &construct);
                self.check_net(net, engine, sink)
            }
            ProtocolSpec::Pusher => {
                let construct = |t, c, d: &mut dyn FnMut(NodeId) -> BoxedDriver| pusher::network(t, c, d);
                let mut net = self.lowered_net(construct)?;
                self.apply_schedule_prologue(&mut net, &construct);
                self.check_net(net, engine, sink)
            }
            ProtocolSpec::NonStab => {
                let construct = |t, c, d: &mut dyn FnMut(NodeId) -> BoxedDriver| nonstab::network(t, c, d);
                let mut net = self.lowered_net(construct)?;
                self.apply_schedule_prologue(&mut net, &construct);
                self.check_net(net, engine, sink)
            }
            ProtocolSpec::Ss if spec.check.from_legitimate => {
                // Closure checking (Definition 1): stabilize the lowered instance under a
                // deterministic fair schedule first, then explore from the legitimate
                // configuration.  Validation guarantees there are no init overrides to
                // discard.
                let tree = spec.topology.build(0);
                let cfg = spec.config.to_kl(tree.len());
                let mut drivers = lower_workload(&spec.workload)?;
                let mut net = checker::scenarios::stabilized_ss(
                    tree,
                    cfg,
                    &mut *drivers,
                    STABILIZATION_BUDGET,
                );
                drop(drivers);
                let construct =
                    |t, c, d: &mut dyn FnMut(NodeId) -> BoxedDriver| checker::scenarios::ss_for_checking(t, c, d);
                self.apply_schedule_prologue(&mut net, &construct);
                self.check_net(net, engine, sink)
            }
            ProtocolSpec::Ss => {
                let construct = |t, c: KlConfig, d: &mut dyn FnMut(NodeId) -> BoxedDriver| {
                    ss::network(t, c.with_timeout(checker::scenarios::DISABLED_TIMEOUT), d)
                };
                let mut net = self.lowered_net(construct)?;
                // Without its timer the protocol cannot bootstrap on its own; hand it the
                // controller message the first timeout would have sent — unless the spec
                // already places its own messages in flight.
                let inject_bootstrap =
                    spec.init.as_ref().is_none_or(|init| init.inject.is_empty());
                if inject_bootstrap {
                    let root = 0;
                    net.inject_from(root, 0, Message::Ctrl { c: 0, r: false, pt: 0, ppr: 0 });
                }
                self.apply_schedule_prologue(&mut net, &construct);
                self.check_net(net, engine, sink)
            }
            ProtocolSpec::Ring => Err(ScenarioError::NotCheckable(
                "the ring baseline has no checker snapshot support".to_string(),
            )),
        }
    }

    /// The fault-schedule prologue of a checking run: applies the campaign's events to the
    /// lowered network with trial-0 seeds, running a bounded deterministic round-robin
    /// settle after each one, so exploration starts from the post-fault / post-churn
    /// configuration — the closure half of Definition 1 under the campaign.  Exhaustive
    /// per-epoch re-convergence is the simulator's job; the checker certifies the reachable
    /// space *from* where the campaign leaves the system.
    fn apply_schedule_prologue<P, F>(&self, net: &mut Network<P, OrientedTree>, construct: &F)
    where
        P: ScenarioNode + treenet::Restartable,
        F: Fn(
            OrientedTree,
            KlConfig,
            &mut dyn FnMut(NodeId) -> BoxedDriver,
        ) -> Network<P, OrientedTree>,
    {
        let spec = self.spec();
        let Some(sched) = &spec.fault_schedule else { return };
        if sched.epochs.is_empty() {
            return;
        }
        // Pinned to the spec'd size, like the simulator's campaign (churn does not
        // reconfigure the protocol parameters).
        let cfg = spec.config.to_kl(spec.topology.len());
        let mut placement = StdRng::seed_from_u64(schedule::placement_seed(sched.seed, 0));
        let mut injector = FaultInjector::new(schedule::injector_seed(sched.seed, 0));
        let mut daemon = treenet::RoundRobin::new();
        let settle = sched.max_steps.min(CHECKER_EPOCH_SETTLE);
        for event in &sched.epochs {
            schedule::apply_event(net, event, &cfg, &mut placement, &mut injector, &mut |tree| {
                let mut drivers = lower_workload(&spec.workload)
                    .expect("workload validated by the main lowering");
                construct(tree.clone(), cfg, &mut *drivers)
            });
            treenet::engine::run(&mut *net, &mut daemon, settle);
            // The ss rung is lowered with its root timer disabled (the explorer's state
            // abstraction has no hidden clocks), so a fault epoch that destroys every
            // in-flight message leaves the finite model permanently dead even though the
            // real protocol recovers at the next timeout.  Replay that elided transition:
            // when an epoch settles into a message-free configuration, re-inject the
            // retransmission the root's timeout would send and settle again.
            if net.in_flight() == 0 {
                let root = net.topology().root();
                if let Some((label, msg)) = net.node(root).timeout_message() {
                    net.inject_from(root, label, msg);
                    treenet::engine::run(&mut *net, &mut daemon, settle);
                }
            }
        }
    }

    /// [`CompiledScenario::check`] on the work-stealing parallel engine
    /// ([`Explorer::run_parallel`]) with an explicit worker count (`0` = one per available
    /// core).  The report is field-for-field identical to the sequential engines' at every
    /// thread count; `threads <= 1` degenerates to the sequential delta engine.
    pub fn check_parallel(&self, threads: usize) -> Result<ExplorationReport, ScenarioError> {
        self.check_parallel_sink(auto_workers(threads), None)
    }

    fn check_parallel_sink(
        &self,
        threads: usize,
        sink: Option<&dyn ProgressSink>,
    ) -> Result<ExplorationReport, ScenarioError> {
        let spec = self.spec();
        match spec.protocol {
            ProtocolSpec::Naive => {
                let construct = |t, c, d: &mut dyn FnMut(NodeId) -> BoxedDriver| naive::network(t, c, d);
                let mut net = self.lowered_net(construct)?;
                self.apply_schedule_prologue(&mut net, &construct);
                let make = || self.worker_net(construct);
                self.check_net_parallel(net, make, threads, sink)
            }
            ProtocolSpec::Pusher => {
                let construct = |t, c, d: &mut dyn FnMut(NodeId) -> BoxedDriver| pusher::network(t, c, d);
                let mut net = self.lowered_net(construct)?;
                self.apply_schedule_prologue(&mut net, &construct);
                let make = || self.worker_net(construct);
                self.check_net_parallel(net, make, threads, sink)
            }
            ProtocolSpec::NonStab => {
                let construct = |t, c, d: &mut dyn FnMut(NodeId) -> BoxedDriver| nonstab::network(t, c, d);
                let mut net = self.lowered_net(construct)?;
                self.apply_schedule_prologue(&mut net, &construct);
                let make = || self.worker_net(construct);
                self.check_net_parallel(net, make, threads, sink)
            }
            ProtocolSpec::Ss if spec.check.from_legitimate => {
                let tree = spec.topology.build(0);
                let cfg = spec.config.to_kl(tree.len());
                let mut drivers = lower_workload(&spec.workload)?;
                let mut net = checker::scenarios::stabilized_ss(
                    tree,
                    cfg,
                    &mut *drivers,
                    STABILIZATION_BUDGET,
                );
                drop(drivers);
                let construct =
                    |t, c, d: &mut dyn FnMut(NodeId) -> BoxedDriver| checker::scenarios::ss_for_checking(t, c, d);
                self.apply_schedule_prologue(&mut net, &construct);
                // Workers only need the stabilized network's *shape* (same disabled-timeout
                // construction); every configuration they touch is restored over.
                let make = || self.worker_net(construct);
                self.check_net_parallel(net, make, threads, sink)
            }
            ProtocolSpec::Ss => {
                let construct = |t, c: KlConfig, d: &mut dyn FnMut(NodeId) -> BoxedDriver| {
                    ss::network(t, c.with_timeout(checker::scenarios::DISABLED_TIMEOUT), d)
                };
                let mut net = self.lowered_net(construct)?;
                let inject_bootstrap =
                    spec.init.as_ref().is_none_or(|init| init.inject.is_empty());
                if inject_bootstrap {
                    let root = 0;
                    net.inject_from(root, 0, Message::Ctrl { c: 0, r: false, pt: 0, ppr: 0 });
                }
                self.apply_schedule_prologue(&mut net, &construct);
                let make = || self.worker_net(|t, c, d| checker::scenarios::ss_for_checking(t, c, d));
                self.check_net_parallel(net, make, threads, sink)
            }
            ProtocolSpec::Ring => Err(ScenarioError::NotCheckable(
                "the ring baseline has no checker snapshot support".to_string(),
            )),
        }
    }

    /// Builds the network with checker-lowered (stateless) drivers and init overrides.
    fn lowered_net<P, F>(&self, construct: F) -> Result<Network<P, OrientedTree>, ScenarioError>
    where
        P: ScenarioNode,
        F: FnOnce(
            OrientedTree,
            KlConfig,
            &mut dyn FnMut(NodeId) -> BoxedDriver,
        ) -> Network<P, OrientedTree>,
    {
        let spec = self.spec();
        let tree = spec.topology.build(0);
        let cfg = spec.config.to_kl(tree.len());
        let mut drivers = lower_workload(&spec.workload)?;
        let mut net = construct(tree, cfg, &mut *drivers);
        self.apply_init(&mut net);
        Ok(net)
    }

    /// Builds a parallel worker's network: same shape as [`CompiledScenario::lowered_net`]
    /// (topology, config, lowered drivers) minus the init overrides — workers restore a
    /// packed configuration over every state before using it, so only the shape and the
    /// driver assignment matter.  Under a fault schedule the campaign's churn is replayed
    /// ([`schedule::replay_churn`]), reproducing both the **post-campaign** tree and the
    /// carryover driver assignment of the root network the prologue produced (survivors
    /// keep the driver of their pre-churn id).  Callable only after the main lowering
    /// validated the workload.
    fn worker_net<P, F>(&self, construct: F) -> Network<P, OrientedTree>
    where
        P: ScenarioNode,
        F: Fn(
            OrientedTree,
            KlConfig,
            &mut dyn FnMut(NodeId) -> BoxedDriver,
        ) -> Network<P, OrientedTree>,
    {
        let spec = self.spec();
        let tree = spec.topology.build(0);
        // Config pinned to the pre-churn size, exactly like the prologue's donor templates.
        let cfg = spec.config.to_kl(tree.len());
        let mut drivers =
            lower_workload(&spec.workload).expect("workload validated by the main lowering");
        let mut net = construct(tree, cfg, &mut *drivers);
        if let Some(sched) = &spec.fault_schedule {
            schedule::replay_churn(&mut net, sched, 0, &mut |new_tree| {
                let mut drivers = lower_workload(&spec.workload)
                    .expect("workload validated by the main lowering");
                construct(new_tree.clone(), cfg, &mut *drivers)
            });
        }
        net
    }

    /// Configures an explorer over `net` with the spec's limits and properties — the one
    /// lowering both the sequential and the parallel backend run.
    fn lowered_explorer<'n, P>(&self, net: &'n mut Network<P, OrientedTree>) -> Explorer<'n, P, OrientedTree>
    where
        P: CheckableNode,
    {
        let spec = self.spec();
        let cfg = spec.config.to_kl(net.len());
        let limits = Limits {
            max_configurations: spec.check.max_configurations,
            max_depth: if spec.check.max_depth == 0 { usize::MAX } else { spec.check.max_depth },
        };
        let liveness = spec.check.properties.iter().any(|p| p == "liveness");
        let mut explorer =
            Explorer::new(net).with_limits(limits).check_liveness(liveness);
        for property in &spec.check.properties {
            let property = match property.as_str() {
                "safety" => properties::safety(cfg),
                "exact-census" => properties::exact_census(cfg),
                "no-garbage" => properties::no_garbage(),
                "legitimate" => properties::legitimate(cfg),
                // Temporal, handled by the post-exploration fair-cycle pass.
                "liveness" => continue,
                _ => unreachable!("property names are validated at compile time"),
            };
            explorer = explorer.with_property(property);
        }
        explorer
    }

    /// The denominator observed explorations report: the configuration cap when finite,
    /// `0` (= unknown) otherwise.
    fn explore_total(&self) -> u64 {
        let cap = self.spec().check.max_configurations;
        if cap == usize::MAX {
            0
        } else {
            cap as u64
        }
    }

    /// Runs the explorer over `net` with the spec's limits and properties.
    fn check_net<P>(
        &self,
        mut net: Network<P, OrientedTree>,
        engine: ExploreEngine,
        sink: Option<&dyn ProgressSink>,
    ) -> Result<ExplorationReport, ScenarioError>
    where
        P: CheckableNode,
    {
        let adapter = sink.map(|sink| ExploreSinkAdapter { sink, total: self.explore_total() });
        let mut explorer = self.lowered_explorer(&mut net);
        if let Some(adapter) = &adapter {
            explorer = explorer.with_progress(adapter);
        }
        Ok(explorer.run_with(engine))
    }

    /// Runs the work-stealing parallel explorer over `net` with the spec's limits and
    /// properties, building one worker network per thread via `factory`.
    fn check_net_parallel<P, F>(
        &self,
        mut net: Network<P, OrientedTree>,
        factory: F,
        threads: usize,
        sink: Option<&dyn ProgressSink>,
    ) -> Result<ExplorationReport, ScenarioError>
    where
        P: CheckableNode,
        F: Fn() -> Network<P, OrientedTree> + Sync,
    {
        let adapter = sink.map(|sink| ExploreSinkAdapter { sink, total: self.explore_total() });
        let mut explorer = self.lowered_explorer(&mut net);
        if let Some(adapter) = &adapter {
            explorer = explorer.with_progress(adapter);
        }
        Ok(explorer.run_parallel(factory, threads))
    }
}

/// Adapts a [`ProgressSink`] onto the checker's [`ExploreProgress`] observer: interned
/// configurations stream out as the `"explore"` phase (against the configuration cap as
/// denominator) and the sink's cancellation poll becomes the explorer's.
struct ExploreSinkAdapter<'s> {
    sink: &'s dyn ProgressSink,
    total: u64,
}

impl ExploreProgress for ExploreSinkAdapter<'_> {
    fn on_progress(&self, configurations: usize, transitions: usize) {
        let _ = transitions;
        self.sink.progress("explore", configurations as u64, self.total);
    }

    fn should_stop(&self) -> bool {
        self.sink.cancelled()
    }
}

/// Step budget for the [`CheckSpec::from_legitimate`](super::spec::CheckSpec) stabilization
/// prelude; the schedule is deterministic, so exceeding it indicates a protocol bug (the
/// prelude panics), not an unlucky run.
const STABILIZATION_BUDGET: u64 = 2_000_000;

/// Per-epoch cap on the checking prologue's deterministic settle run.  The simulator owns
/// per-epoch convergence *measurement*; the prologue only needs to move the configuration a
/// representative distance past each event, and an uncapped `max_steps` (sized for
/// simulation budgets) would make small exhaustive checks pay millions of settle steps.
const CHECKER_EPOCH_SETTLE: u64 = 50_000;

/// Lowers a workload spec into the checker's stateless drivers.
fn lower_workload(
    workload: &WorkloadSpec,
) -> Result<Box<dyn FnMut(NodeId) -> BoxedDriver + '_>, ScenarioError> {
    match workload {
        WorkloadSpec::Idle => Ok(Box::new(|_| drivers::NeverRequest::boxed())),
        WorkloadSpec::Saturated { units, hold } => {
            let (units, hold) = (*units, *hold);
            Ok(Box::new(move |_| {
                if hold == 0 {
                    drivers::AlwaysRequest::boxed(units)
                } else {
                    drivers::HoldOneActivation::boxed(units)
                }
            }))
        }
        WorkloadSpec::Needs { needs, hold } => {
            let hold = *hold;
            Ok(Box::new(move |node| {
                let units = needs.get(node).copied().unwrap_or(0);
                if units == 0 {
                    drivers::NeverRequest::boxed()
                } else if hold == 0 {
                    drivers::AlwaysRequest::boxed(units)
                } else {
                    drivers::HoldOneActivation::boxed(units)
                }
            }))
        }
        WorkloadSpec::Uniform { .. } | WorkloadSpec::LeafUniform { .. } => {
            Err(ScenarioError::NotCheckable(
                "the Uniform/LeafUniform workloads are stateful (per-node RNG) and cannot be \
                 lowered into the checker's stateless-driver abstraction; use Saturated or Needs"
                    .to_string(),
            ))
        }
    }
}
