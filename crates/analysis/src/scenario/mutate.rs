//! Random generation and mutation of [`ScenarioSpec`]s for the fuzz campaign.
//!
//! Two entry points, both deterministic in their RNG:
//!
//! * [`random_spec`] draws a fresh small scenario from scratch — the blind generator the
//!   pre-campaign fuzzer used, now shared so corpus-less generation and coverage-guided
//!   mutation sample the same scenario family;
//! * [`mutate_spec`] perturbs an existing spec with one randomly chosen structural operator
//!   (topology grow/shrink/rewire, k/ℓ perturbation, protocol-rung swap, daemon and
//!   fault-plan swaps, init-override flips, workload perturbation, reseeding) — the
//!   coverage-guided campaign applies short chains of these to corpus entries instead of
//!   starting from scratch, which is what biases generation toward the neighborhood of
//!   specs that already reached novel checker-state-graph structure.
//!
//! Both functions **always** return a spec that validates ([`ScenarioSpec::compile`]
//! succeeds) and stays inside the checker-lowerable subset (tree protocol rungs, stateless
//! workloads): operators that could invalidate a spec repair it (needs lists are truncated
//! to the new topology, init overrides are dropped when the tree they address changes,
//! `k ≤ ℓ` is re-clamped), and a candidate that still fails validation is discarded for the
//! next operator draw.  The `tests/fuzz_regression.rs` proptest pins this contract over
//! thousands of mutation chains, including lossless JSON round-trips of every mutant.

use super::spec::{
    CheckSpec, DaemonSpec, FaultEventSpec, FaultPlanSpec, FaultScheduleSpec, InitSpec,
    ProtocolSpec, ScenarioSpec, StopSpec, TopologySpec, WorkloadSpec,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Size and budget bounds shared by the generator and the mutation operators.
#[derive(Clone, Copy, Debug)]
pub struct GenLimits {
    /// Largest number of processes a generated or mutated topology may have.
    pub max_nodes: usize,
    /// Largest ℓ (total resource units) drawn.
    pub max_l: usize,
    /// Simulator activations per scenario (`stop` budget).
    pub sim_steps: u64,
    /// Checker state budget per scenario.
    pub max_configurations: usize,
    /// Largest number of fault epochs in a generated schedule.
    pub max_epochs: usize,
}

impl Default for GenLimits {
    fn default() -> Self {
        GenLimits {
            max_nodes: 9,
            max_l: 3,
            sim_steps: 3_000,
            max_configurations: 20_000,
            max_epochs: 3,
        }
    }
}

/// Generates one random small scenario.  All four tree rungs are drawn; workloads are
/// restricted to the checker-lowerable (stateless) shapes; holds are 0 (instantaneous
/// critical sections) or 1 (the shortest configuration-visible hold, which lowers to the
/// same driver the simulator runs).
pub fn random_spec(rng: &mut StdRng, limits: &GenLimits, name: impl Into<String>) -> ScenarioSpec {
    let n = rng.gen_range(2usize..=limits.max_nodes);
    let topology = match rng.gen_range(0u32..6) {
        0 => TopologySpec::Chain { n },
        1 => TopologySpec::Star { n },
        2 => TopologySpec::Binary { n },
        3 => TopologySpec::Random { n, seed: rng.gen::<u64>() },
        4 => TopologySpec::BoundedDegree {
            n,
            max_children: rng.gen_range(2usize..=3),
            seed: rng.gen::<u64>(),
        },
        _ => TopologySpec::Figure3,
    };
    let n = topology.len();
    let protocol = random_rung(rng);
    let l = rng.gen_range(1usize..=limits.max_l);
    let k = rng.gen_range(1usize..=l);
    let workload = random_workload(rng, n, k);
    let daemon = random_daemon(rng);
    // A quarter of the scenarios inject a transient fault before the simulated run (the
    // checker explores the fault-free instance either way; faulty scenarios exercise the
    // simulator path and are excluded from the sim-vs-checker safety oracle).
    let fault = rng.gen_bool(0.25).then(|| (rng.gen::<u64>(), random_fault_plan(rng)));
    // A fifth carry a multi-epoch fault schedule (campaign runs are likewise excluded from
    // the sim-vs-checker oracle; the checker replays the campaign prologue instead).
    let schedule = rng.gen_bool(0.2).then(|| random_schedule(rng, limits));

    let mut builder = ScenarioSpec::builder(name)
        .topology(topology)
        .protocol(protocol)
        .kl(k, l)
        .workload(workload)
        .daemon(daemon)
        .stop(StopSpec::Steps { steps: limits.sim_steps })
        .properties(&["request-eventually-cs", "at-most-k-in-cs", "l-availability"])
        .check(CheckSpec {
            max_configurations: limits.max_configurations,
            max_depth: 0,
            properties: vec!["safety".into(), "liveness".into()],
            ..CheckSpec::default()
        })
        .base_seed(rng.gen::<u64>());
    if let Some((seed, plan)) = fault {
        builder = builder.fault(seed, plan);
    }
    if let Some(schedule) = schedule {
        builder = builder.fault_schedule(schedule);
    }
    let spec = builder.spec();
    debug_assert!(spec.clone().compile().is_ok(), "generated specs always validate");
    spec
}

/// Applies one random mutation operator to `spec`, returning a perturbed spec that is
/// guaranteed to validate and to stay checker-lowerable.  Deterministic in the RNG.
pub fn mutate_spec(spec: &ScenarioSpec, rng: &mut StdRng, limits: &GenLimits) -> ScenarioSpec {
    let base = normalize(spec, rng, limits);
    for _ in 0..12 {
        let mut candidate = base.clone();
        let operator = rng.gen_range(0u32..13);
        match operator {
            0 => grow_topology(&mut candidate, rng, limits),
            1 => shrink_topology(&mut candidate, rng),
            2 => rewire_topology(&mut candidate, rng),
            3 => perturb_kl(&mut candidate, rng, limits),
            4 => candidate.protocol = random_rung(rng),
            5 => candidate.daemon = random_daemon(rng),
            6 => swap_fault(&mut candidate, rng),
            7 => flip_init(&mut candidate, rng),
            8 => perturb_workload(&mut candidate, rng),
            9 => candidate.fault_schedule = Some(random_schedule(rng, limits)),
            10 => drop_schedule(&mut candidate, rng),
            11 => perturb_schedule(&mut candidate, rng, limits),
            _ => candidate.base_seed = rng.gen::<u64>(),
        }
        if candidate != base && candidate.clone().compile().is_ok() {
            return candidate;
        }
    }
    // Every draw either produced no change or an invalid candidate (possible but vanishingly
    // rare on normalized specs); fall back to the always-valid reseed.
    let mut candidate = base;
    candidate.base_seed = rng.gen::<u64>();
    candidate
}

/// Pulls an arbitrary (possibly hand-written) spec into the campaign's checkable subset:
/// tree protocol rung, stateless workload, valid needs list, `k ≤ ℓ`.
fn normalize(spec: &ScenarioSpec, rng: &mut StdRng, limits: &GenLimits) -> ScenarioSpec {
    let mut spec = spec.clone();
    if matches!(spec.protocol, ProtocolSpec::Ring) {
        spec.protocol = random_rung(rng);
        spec.init = None;
    }
    spec.config.l = spec.config.l.clamp(1, limits.max_l);
    spec.config.k = spec.config.k.clamp(1, spec.config.l);
    let n = spec.topology.len();
    match &mut spec.workload {
        WorkloadSpec::Uniform { .. } | WorkloadSpec::LeafUniform { .. } => {
            spec.workload = random_workload(rng, n, spec.config.k);
        }
        WorkloadSpec::Needs { needs, .. } => needs.truncate(n),
        _ => {}
    }
    // Churn rebuilds invalidate the adversary's node-count assumptions; campaigns run under
    // the dynamic-size-safe daemons only.
    if spec.has_churn() && matches!(spec.daemon, DaemonSpec::Adversarial { .. }) {
        spec.daemon = random_daemon(rng);
    }
    if spec.clone().compile().is_err() {
        // Residual invalidity (out-of-range init overrides, bad stop predicate, …): drop the
        // exotic parts and re-anchor on a freshly generated scenario's scaffolding.
        let fresh = random_spec(rng, limits, spec.name.clone());
        return fresh;
    }
    spec
}

fn random_fault_event(rng: &mut StdRng) -> FaultEventSpec {
    match rng.gen_range(0u32..7) {
        0 => FaultEventSpec::Transient { plan: random_fault_plan(rng) },
        1 => FaultEventSpec::MessageBurst {
            drop: f64::from(rng.gen_range(0u32..=10)) / 10.0,
            duplicate: f64::from(rng.gen_range(0u32..=10)) / 10.0,
            garbage: rng.gen_range(0usize..=2),
        },
        2 => FaultEventSpec::Crash {
            count: rng.gen_range(1usize..=2),
            lose_incoming: rng.gen_bool(0.5),
        },
        3 => FaultEventSpec::TargetTokenPath,
        4 => FaultEventSpec::JoinLeaf,
        5 => FaultEventSpec::LeaveLeaf,
        _ => FaultEventSpec::RewireEdge,
    }
}

fn random_schedule(rng: &mut StdRng, limits: &GenLimits) -> FaultScheduleSpec {
    let epochs = rng.gen_range(1usize..=limits.max_epochs.max(1));
    FaultScheduleSpec {
        seed: rng.gen::<u64>(),
        epochs: (0..epochs).map(|_| random_fault_event(rng)).collect(),
        max_steps: limits.sim_steps.max(1),
        window: None,
    }
}

/// Removes one epoch from the schedule, or the whole schedule once it is down to one epoch.
fn drop_schedule(spec: &mut ScenarioSpec, rng: &mut StdRng) {
    if let Some(schedule) = &mut spec.fault_schedule {
        if schedule.epochs.len() > 1 {
            let slot = rng.gen_range(0usize..schedule.epochs.len());
            schedule.epochs.remove(slot);
        } else {
            spec.fault_schedule = None;
        }
    }
}

/// Reseeds the campaign or swaps one epoch for a freshly drawn event; attaches a fresh
/// single-epoch schedule when the spec has none.
fn perturb_schedule(spec: &mut ScenarioSpec, rng: &mut StdRng, limits: &GenLimits) {
    match &mut spec.fault_schedule {
        Some(schedule) if rng.gen_bool(0.5) => schedule.seed = rng.gen::<u64>(),
        Some(schedule) => {
            let slot = rng.gen_range(0usize..schedule.epochs.len());
            schedule.epochs[slot] = random_fault_event(rng);
        }
        None => {
            spec.fault_schedule = Some(FaultScheduleSpec {
                seed: rng.gen::<u64>(),
                epochs: vec![random_fault_event(rng)],
                max_steps: limits.sim_steps.max(1),
                window: None,
            });
        }
    }
}

fn random_rung(rng: &mut StdRng) -> ProtocolSpec {
    match rng.gen_range(0u32..4) {
        0 => ProtocolSpec::Naive,
        1 => ProtocolSpec::Pusher,
        2 => ProtocolSpec::NonStab,
        _ => ProtocolSpec::Ss,
    }
}

fn random_daemon(rng: &mut StdRng) -> DaemonSpec {
    match rng.gen_range(0u32..3) {
        0 => DaemonSpec::RoundRobin,
        1 => DaemonSpec::RandomFair { seed: rng.gen::<u64>() },
        _ => DaemonSpec::Synchronous,
    }
}

fn random_fault_plan(rng: &mut StdRng) -> FaultPlanSpec {
    match rng.gen_range(0u32..3) {
        0 => FaultPlanSpec::Catastrophic,
        1 => FaultPlanSpec::Moderate,
        _ => FaultPlanSpec::MessageOnly,
    }
}

fn random_workload(rng: &mut StdRng, n: usize, k: usize) -> WorkloadSpec {
    let hold = rng.gen_range(0u64..=1);
    if rng.gen_bool(0.5) {
        WorkloadSpec::Saturated { units: rng.gen_range(1usize..=k), hold }
    } else {
        let needs: Vec<usize> = (0..n).map(|_| rng.gen_range(0usize..=k)).collect();
        WorkloadSpec::Needs { needs, hold }
    }
}

/// Rebuilds the topology with a new process count, preserving the kind where it scales and
/// degrading to a seeded random tree where it does not (the paper-figure shapes).
fn resize_topology(topology: &TopologySpec, n: usize, rng: &mut StdRng) -> TopologySpec {
    match *topology {
        TopologySpec::Chain { .. } => TopologySpec::Chain { n },
        TopologySpec::Star { .. } => TopologySpec::Star { n },
        TopologySpec::Binary { .. } => TopologySpec::Binary { n },
        TopologySpec::Random { seed, .. } => TopologySpec::Random { n, seed },
        TopologySpec::BoundedDegree { max_children, seed, .. } => {
            TopologySpec::BoundedDegree { n, max_children, seed }
        }
        _ => TopologySpec::Random { n, seed: rng.gen::<u64>() },
    }
}

/// Resizing or rewiring invalidates anything that addresses concrete nodes or channels.
fn drop_tree_addressed(spec: &mut ScenarioSpec, n: usize) {
    spec.init = None;
    if let WorkloadSpec::Needs { needs, .. } = &mut spec.workload {
        needs.truncate(n);
    }
    if let DaemonSpec::Adversarial { victims, .. } = &mut spec.daemon {
        victims.retain(|&v| v < n);
    }
}

fn grow_topology(spec: &mut ScenarioSpec, rng: &mut StdRng, limits: &GenLimits) {
    let n = spec.topology.len();
    if n < limits.max_nodes {
        spec.topology = resize_topology(&spec.topology, n + 1, rng);
        drop_tree_addressed(spec, n + 1);
    }
}

fn shrink_topology(spec: &mut ScenarioSpec, rng: &mut StdRng) {
    let n = spec.topology.len();
    if n > 2 {
        spec.topology = resize_topology(&spec.topology, n - 1, rng);
        drop_tree_addressed(spec, n - 1);
    }
}

fn rewire_topology(spec: &mut ScenarioSpec, rng: &mut StdRng) {
    let n = spec.topology.len();
    spec.topology = match rng.gen_range(0u32..5) {
        0 => TopologySpec::Chain { n },
        1 => TopologySpec::Star { n },
        2 => TopologySpec::Binary { n },
        3 => TopologySpec::Random { n, seed: rng.gen::<u64>() },
        _ => TopologySpec::BoundedDegree {
            n,
            max_children: rng.gen_range(2usize..=3),
            seed: rng.gen::<u64>(),
        },
    };
    drop_tree_addressed(spec, n);
}

fn perturb_kl(spec: &mut ScenarioSpec, rng: &mut StdRng, limits: &GenLimits) {
    let l = if rng.gen_bool(0.5) && spec.config.l < limits.max_l {
        spec.config.l + 1
    } else if spec.config.l > 1 {
        spec.config.l - 1
    } else {
        spec.config.l + usize::from(spec.config.l < limits.max_l)
    };
    spec.config.l = l;
    spec.config.k = rng.gen_range(1usize..=l);
    clamp_workload_units(spec);
}

/// Keeps request sizes within the (possibly lowered) `k`.
fn clamp_workload_units(spec: &mut ScenarioSpec) {
    let k = spec.config.k;
    match &mut spec.workload {
        WorkloadSpec::Saturated { units, .. } => *units = (*units).clamp(1, k),
        WorkloadSpec::Needs { needs, .. } => {
            for need in needs {
                *need = (*need).min(k);
            }
        }
        _ => {}
    }
}

fn swap_fault(spec: &mut ScenarioSpec, rng: &mut StdRng) {
    spec.fault = match spec.fault {
        None => Some(super::spec::FaultSpec { seed: rng.gen::<u64>(), plan: random_fault_plan(rng) }),
        Some(_) if rng.gen_bool(0.5) => None,
        Some(ref fault) => Some(super::spec::FaultSpec {
            seed: rng.gen::<u64>(),
            plan: match fault.plan {
                FaultPlanSpec::Catastrophic => FaultPlanSpec::Moderate,
                FaultPlanSpec::Moderate => FaultPlanSpec::MessageOnly,
                FaultPlanSpec::MessageOnly => FaultPlanSpec::Catastrophic,
            },
        }),
    };
}

fn flip_init(spec: &mut ScenarioSpec, rng: &mut StdRng) {
    if spec.init.is_some() {
        spec.init = None;
        return;
    }
    match spec.protocol {
        // Start the non-self-stabilizing rungs from an already-bootstrapped root: the
        // ℓ fresh tokens are never created, so token-starved structure becomes reachable.
        ProtocolSpec::Naive | ProtocolSpec::Pusher | ProtocolSpec::NonStab => {
            spec.init = Some(InitSpec {
                bootstrapped_root: true,
                nodes: Vec::new(),
                inject: Vec::new(),
            });
        }
        // On the ss rung, place a garbage message in flight instead (channel 0 exists at
        // every node of a ≥2-process tree): exercises the no-hidden-timer bootstrap path
        // with a corrupted channel.
        _ => {
            let n = spec.topology.len();
            spec.init = Some(InitSpec {
                bootstrapped_root: false,
                nodes: Vec::new(),
                inject: vec![super::spec::InjectSpec {
                    from: rng.gen_range(0usize..n),
                    channel: 0,
                    message: super::spec::MessageSpec::Garbage { tag: rng.gen_range(0u16..1000) },
                }],
            });
        }
    }
    // Init overrides on seeded topologies do not validate across trials; trials are 1 in
    // fuzz specs, but corpus entries may differ — keep the operator total by pinning trials.
    spec.trials = 1;
}

fn perturb_workload(spec: &mut ScenarioSpec, rng: &mut StdRng) {
    let n = spec.topology.len();
    let k = spec.config.k;
    match rng.gen_range(0u32..3) {
        0 => spec.workload = random_workload(rng, n, k),
        1 => {
            // Flip the hold between the two checker-lowerable durations.
            if let WorkloadSpec::Saturated { hold, .. } | WorkloadSpec::Needs { hold, .. } =
                &mut spec.workload
            {
                *hold = u64::from(*hold == 0);
            }
        }
        _ => {
            // Perturb one node's demand.
            if let WorkloadSpec::Needs { needs, .. } = &mut spec.workload {
                if !needs.is_empty() {
                    let slot = rng.gen_range(0usize..needs.len());
                    needs[slot] = rng.gen_range(0usize..=k);
                }
            } else {
                spec.workload = random_workload(rng, n, k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_specs_validate_and_roundtrip() {
        let mut rng = StdRng::seed_from_u64(11);
        let limits = GenLimits::default();
        for index in 0..50 {
            let spec = random_spec(&mut rng, &limits, format!("gen-{index}"));
            assert!(spec.clone().compile().is_ok(), "{spec:?}");
            let json = spec.to_json();
            assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec, "round-trip {index}");
        }
    }

    #[test]
    fn mutants_validate_along_chains() {
        let mut rng = StdRng::seed_from_u64(23);
        let limits = GenLimits::default();
        let mut spec = random_spec(&mut rng, &limits, "chain-base");
        for step in 0..200 {
            spec = mutate_spec(&spec, &mut rng, &limits);
            assert!(spec.clone().compile().is_ok(), "step {step}: {spec:?}");
            assert!(spec.topology.len() <= limits.max_nodes, "step {step} grew past the cap");
        }
    }

    #[test]
    fn mutation_is_deterministic_in_the_rng() {
        let limits = GenLimits::default();
        let spec = random_spec(&mut StdRng::seed_from_u64(5), &limits, "det");
        let a = mutate_spec(&spec, &mut StdRng::seed_from_u64(99), &limits);
        let b = mutate_spec(&spec, &mut StdRng::seed_from_u64(99), &limits);
        assert_eq!(a, b);
    }

    #[test]
    fn ring_and_stateful_specs_are_normalized_into_the_checkable_subset() {
        let mut base = random_spec(&mut StdRng::seed_from_u64(7), &GenLimits::default(), "ring");
        base.protocol = ProtocolSpec::Ring;
        base.workload = WorkloadSpec::Uniform {
            seed: 1,
            p_request: 0.5,
            max_units: 1,
            max_hold: 3,
        };
        let mutant = mutate_spec(&base, &mut StdRng::seed_from_u64(8), &GenLimits::default());
        assert!(!matches!(mutant.protocol, ProtocolSpec::Ring));
        assert!(matches!(
            mutant.workload,
            WorkloadSpec::Saturated { .. } | WorkloadSpec::Needs { .. } | WorkloadSpec::Idle
        ));
        assert!(mutant.clone().compile().is_ok());
    }
}
