//! The unified scenario API: one declarative spec drives the simulator, the sharded trial
//! harness, and the bounded-exhaustive checker.
//!
//! The paper evaluates one protocol ladder under many regimes — topologies, (k, ℓ)
//! configurations, workloads, daemons, transient faults.  This module turns "a regime" into
//! a first-class value:
//!
//! ```text
//!  ScenarioSpec ── serde JSON ⇄ ScenarioSpec::from_json / to_json
//!       │ compile() (validates)
//!       ▼
//!  CompiledScenario
//!       ├── run() / run_trial()      one simulated execution  (fused engine / any daemon)
//!       ├── run_harness(shards)      N-trial sharded experiment, shard-count-independent
//!       └── check()                  bounded-exhaustive exploration of small instances
//! ```
//!
//! A spec captures *everything* the three backends need: topology builder, protocol rung,
//! [`klex_core::KlConfig`] knobs, workload, daemon, initial-configuration overrides (exact
//! paper configurations like the Figure-2 deadlock are data, not code), warmup phase, fault
//! plan, stop condition, metric selection, trial plan and checking bounds.  The named
//! [`preset`]s cover the paper's figures and experiment regimes; the `klex` CLI in the
//! `bench` crate runs any preset or JSON spec from the command line.
//!
//! # Example
//!
//! ```
//! use analysis::scenario::{Scenario, StopSpec, TopologySpec, WorkloadSpec};
//!
//! let scenario = Scenario::builder("demo")
//!     .topology(TopologySpec::Chain { n: 4 })
//!     .kl(1, 2)
//!     .workload(WorkloadSpec::Saturated { units: 1, hold: 3 })
//!     .stop(StopSpec::CsEntries { entries: 5, max_steps: 2_000_000 })
//!     .build()
//!     .unwrap();
//! let outcome = scenario.run();
//! assert!(outcome.outcome.is_satisfied());
//! assert!(outcome.metric("cs_entries").unwrap() >= 5.0);
//! ```

mod check;
mod compile;
mod json;
pub mod mutate;
mod presets;
mod schedule;
mod spec;

pub use compile::{
    deepest_node, CompiledScenario, Daemon, EpochOutcome, HarnessReport, Scenario, ScenarioNode,
    ScenarioOutcome,
};
pub use json::schedule_from_value;
pub use mutate::{mutate_spec, random_spec, GenLimits};
pub use presets::{
    figure2_deadlock_init, preset, FIGURE2_NEEDS, FIGURE3_NEEDS, PRESET_NAMES,
};
pub use spec::{
    is_metric_name, CheckSpec, ConfigSpec, CsStateSpec, DaemonSpec, FaultEventSpec,
    FaultPlanSpec, FaultScheduleSpec, FaultSpec, InitSpec, InitiatorSpec, InjectSpec,
    MessageSpec, NodeInit, ProtocolSpec, ScenarioBuilder, ScenarioSpec, SnapshotSpec, StopSpec,
    TopologySpec, WarmupSpec, WorkloadSpec, DEFAULT_METRICS, METRIC_NAMES,
};

use std::fmt;

/// Why a spec could not be parsed, validated, or lowered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioError {
    /// The spec is self-inconsistent (bad parameters, out-of-range nodes, unknown names).
    Invalid(String),
    /// The JSON document does not describe a spec.
    Json(String),
    /// The scenario cannot be lowered into the exhaustive checker.
    NotCheckable(String),
    /// No preset of that name exists.
    UnknownPreset(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
            ScenarioError::Json(msg) => write!(f, "bad scenario JSON: {msg}"),
            ScenarioError::NotCheckable(msg) => write!(f, "scenario not checkable: {msg}"),
            ScenarioError::UnknownPreset(name) => write!(f, "unknown preset `{name}`"),
        }
    }
}

impl std::error::Error for ScenarioError {}
