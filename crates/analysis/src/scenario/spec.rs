//! The declarative scenario specification: serializable data describing *one* evaluation
//! regime end to end — topology, protocol rung, (k, ℓ) parameters, workload, daemon,
//! initial-configuration overrides, warmup, fault plan, stop condition, metric selection,
//! trial plan and checker bounds.
//!
//! A [`ScenarioSpec`] is pure data (serde-serializable, JSON-parsable via
//! [`ScenarioSpec::from_json`]); [`ScenarioSpec::compile`] validates it into a
//! [`crate::scenario::CompiledScenario`] that can drive the simulator, the sharded trial
//! harness, and the bounded-exhaustive checker.

use super::{CompiledScenario, ScenarioError};
use serde::{Deserialize, Serialize};
use topology::{OrientedTree, RootedGraph, SpanningTreeMethod, Topology};

/// How the network's oriented tree is built.
///
/// `Random*` and `SpanningTree` shapes carry a base seed; in multi-trial harness runs the
/// trial *index* is added to it, so every trial explores a fresh tree while trial 0
/// reproduces the spec's seed exactly.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// A path of `n` nodes rooted at one end (worst-case depth).
    Chain {
        /// Number of processes.
        n: usize,
    },
    /// A root with `n − 1` leaves (best-case depth).
    Star {
        /// Number of processes.
        n: usize,
    },
    /// A balanced binary tree of `n` nodes.
    Binary {
        /// Number of processes.
        n: usize,
    },
    /// A balanced tree of the given arity.
    Balanced {
        /// Number of processes.
        n: usize,
        /// Children per internal node.
        arity: usize,
    },
    /// A caterpillar: a spine path with `legs` leaves per spine node.
    Caterpillar {
        /// Spine length.
        spine: usize,
        /// Leaves per spine node.
        legs: usize,
    },
    /// A broom: a handle path ending in a star of bristles.
    Broom {
        /// Handle length.
        handle: usize,
        /// Number of bristles.
        bristles: usize,
    },
    /// A uniformly random recursive tree.
    Random {
        /// Number of processes.
        n: usize,
        /// Base seed (offset by the trial index in harness runs).
        seed: u64,
    },
    /// A random tree with bounded down-degree.
    BoundedDegree {
        /// Number of processes.
        n: usize,
        /// Maximum children per node.
        max_children: usize,
        /// Base seed (offset by the trial index in harness runs).
        seed: u64,
    },
    /// The BFS spanning tree of a random connected rooted graph — the conclusion's
    /// composition with a spanning-tree construction, in its offline-extraction form.
    SpanningTree {
        /// Number of processes.
        n: usize,
        /// Redundant links beyond a spanning tree.
        extra_edges: usize,
        /// Base seed (offset by the trial index in harness runs).
        seed: u64,
    },
    /// The paper's Figure-1 tree (8 processes).
    Figure1,
    /// The paper's Figure-3 tree (3 processes).
    Figure3,
}

impl TopologySpec {
    /// Number of processes of the built tree.
    pub fn len(&self) -> usize {
        match *self {
            TopologySpec::Chain { n }
            | TopologySpec::Star { n }
            | TopologySpec::Binary { n }
            | TopologySpec::Balanced { n, .. }
            | TopologySpec::Random { n, .. }
            | TopologySpec::BoundedDegree { n, .. }
            | TopologySpec::SpanningTree { n, .. } => n,
            TopologySpec::Caterpillar { spine, legs } => spine + spine * legs,
            TopologySpec::Broom { handle, bristles } => handle + bristles,
            TopologySpec::Figure1 => 8,
            TopologySpec::Figure3 => 3,
        }
    }

    /// True when the spec describes no processes (never, for any constructible spec).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the built tree varies with the trial index (seeded random shapes).
    pub fn is_seeded(&self) -> bool {
        matches!(
            self,
            TopologySpec::Random { .. }
                | TopologySpec::BoundedDegree { .. }
                | TopologySpec::SpanningTree { .. }
        )
    }

    /// Builds the oriented tree; `stream` is the trial index added to random seeds (0 for
    /// single runs, so the spec's seed is reproduced exactly).
    pub fn build(&self, stream: u64) -> OrientedTree {
        use topology::builders;
        match *self {
            TopologySpec::Chain { n } => builders::chain(n),
            TopologySpec::Star { n } => builders::star(n),
            TopologySpec::Binary { n } => builders::binary(n),
            TopologySpec::Balanced { n, arity } => builders::balanced(n, arity),
            TopologySpec::Caterpillar { spine, legs } => builders::caterpillar(spine, legs),
            TopologySpec::Broom { handle, bristles } => builders::broom(handle, bristles),
            TopologySpec::Random { n, seed } => builders::random_tree(n, seed.wrapping_add(stream)),
            TopologySpec::BoundedDegree { n, max_children, seed } => {
                builders::random_bounded_degree(n, max_children, seed.wrapping_add(stream))
            }
            TopologySpec::SpanningTree { n, extra_edges, seed } => {
                let graph = RootedGraph::random_connected(n, extra_edges, seed.wrapping_add(stream));
                graph.spanning_tree(SpanningTreeMethod::Bfs).0
            }
            TopologySpec::Figure1 => builders::figure1_tree(),
            TopologySpec::Figure3 => builders::figure3_tree(),
        }
    }
}

/// Which rung of the protocol ladder (or which baseline) the scenario runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolSpec {
    /// Rung 1: the naive ℓ-token circulation (deadlock-prone — Figure 2).
    Naive,
    /// Rung 2: naive plus the pusher token (livelock-prone — Figure 3).
    Pusher,
    /// Rung 3: pusher plus the priority token (non-self-stabilizing).
    NonStab,
    /// Rung 4: the full self-stabilizing protocol (Algorithms 1 & 2).
    Ss,
    /// The ring-based self-stabilizing baseline (related-work comparator); runs on a ring of
    /// the same size as the spec'd tree.
    Ring,
}

impl ProtocolSpec {
    /// Short lowercase label used in tables and the CLI.
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolSpec::Naive => "naive",
            ProtocolSpec::Pusher => "pusher",
            ProtocolSpec::NonStab => "nonstab",
            ProtocolSpec::Ss => "ss",
            ProtocolSpec::Ring => "ring",
        }
    }
}

/// Protocol parameters: `k`/`ℓ` plus optional overrides of the self-stabilization knobs.
///
/// Unset options take the [`klex_core::KlConfig::new`] defaults for the network size the
/// scenario compiles against (this is why the spec stores overrides rather than a full
/// `KlConfig`: the default timeout depends on `n`, which the topology determines).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigSpec {
    /// Maximum units per request (`1 ≤ k ≤ ℓ`).
    pub k: usize,
    /// Total resource units.
    pub l: usize,
    /// Override of the CMAX channel-garbage bound.
    pub cmax: Option<usize>,
    /// Override of the root's controller-retransmission timeout (activations of the root).
    pub timeout: Option<u64>,
    /// Use the paper-literal pusher guard (ablation).
    pub literal_pusher_guard: bool,
    /// Use the paper-literal controller-completion order (ablation).
    pub literal_completion_order: bool,
    /// Use the unbounded counter-flushing domain (the conclusion's adaptation).
    pub unbounded_counter: bool,
}

impl ConfigSpec {
    /// A `k`-out-of-`l` configuration with every knob at its default.
    pub fn new(k: usize, l: usize) -> Self {
        ConfigSpec {
            k,
            l,
            cmax: None,
            timeout: None,
            literal_pusher_guard: false,
            literal_completion_order: false,
            unbounded_counter: false,
        }
    }

    /// Override CMAX.
    pub fn with_cmax(mut self, cmax: usize) -> Self {
        self.cmax = Some(cmax);
        self
    }

    /// Override the root timeout.
    pub fn with_timeout(mut self, timeout: u64) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Select the unbounded counter-flushing domain.
    pub fn with_unbounded_counter(mut self, unbounded: bool) -> Self {
        self.unbounded_counter = unbounded;
        self
    }

    /// Resolves the spec into a concrete [`klex_core::KlConfig`] for an `n`-process network.
    pub fn to_kl(&self, n: usize) -> klex_core::KlConfig {
        let mut cfg = klex_core::KlConfig::new(self.k, self.l, n)
            .with_literal_pusher_guard(self.literal_pusher_guard)
            .with_literal_completion_order(self.literal_completion_order)
            .with_unbounded_counter(self.unbounded_counter);
        if let Some(cmax) = self.cmax {
            cfg = cfg.with_cmax(cmax);
        }
        if let Some(timeout) = self.timeout {
            cfg = cfg.with_timeout(timeout);
        }
        cfg
    }
}

/// The application workload: when processes request, how many units, how long they hold.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Nobody ever requests.
    Idle,
    /// Every process perpetually requests `units`, holding for `hold` activations.
    Saturated {
        /// Units per request.
        units: usize,
        /// Critical-section duration in activations.
        hold: u64,
    },
    /// Every process requests with probability `p_request` per tick, uniform sizes and holds
    /// (per-node independent streams derived from `seed`, offset per trial in harness runs).
    Uniform {
        /// Base RNG seed.
        seed: u64,
        /// Per-tick request probability while idle.
        p_request: f64,
        /// Largest request size drawn.
        max_units: usize,
        /// Longest hold drawn.
        max_hold: u64,
    },
    /// A fixed per-node request size (`needs[v]` units; 0 = passive), holding for `hold`.
    /// This is the Figure-2/Figure-3 heterogeneous workload.
    Needs {
        /// Requested units per node (missing entries default to 0).
        needs: Vec<usize>,
        /// Critical-section duration in activations.
        hold: u64,
    },
    /// Like [`WorkloadSpec::Uniform`], but only the *leaves* of the tree request — the
    /// introduction's resource-pool framing (hosts at the edge lease units; interior routers
    /// only forward).  Not available on the ring baseline.
    LeafUniform {
        /// Base RNG seed.
        seed: u64,
        /// Per-tick request probability while idle.
        p_request: f64,
        /// Largest request size drawn.
        max_units: usize,
        /// Longest hold drawn.
        max_hold: u64,
    },
}

/// The scheduling daemon driving the asynchronous execution.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DaemonSpec {
    /// Deterministic round-robin over processes (fair).
    RoundRobin,
    /// Seeded uniform random choice among enabled activations (fair; the seed is offset by
    /// the per-trial stream in harness runs).
    RandomFair {
        /// Base RNG seed.
        seed: u64,
    },
    /// Lock-step synchronous rounds.
    Synchronous,
    /// Bounded-unfairness adversary that starves the `victims` as long as fairness allows;
    /// an empty victim list targets the deepest node of the built topology.
    Adversarial {
        /// Starved processes (empty = deepest node).
        victims: Vec<usize>,
        /// How many activations the adversary may withhold a victim's turn.
        patience: u64,
    },
}

/// Overrides applied to the freshly built network before anything runs — this is how exact
/// paper configurations (e.g. the Figure-2 deadlock) are expressed as data.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InitSpec {
    /// Mark the root as already bootstrapped (it will not create fresh tokens).  Only
    /// meaningful for the non-self-stabilizing rungs.
    pub bootstrapped_root: bool,
    /// Per-node request-state overrides.
    pub nodes: Vec<NodeInit>,
    /// Messages placed in flight before the run starts.
    pub inject: Vec<InjectSpec>,
}

/// One node's initial request state.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeInit {
    /// The node.
    pub node: usize,
    /// Initial `State`.
    pub state: CsStateSpec,
    /// Initial `Need`.
    pub need: usize,
    /// Initial `RSet` (channel labels of reserved tokens).
    pub rset: Vec<usize>,
}

/// Serializable mirror of [`treenet::CsState`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CsStateSpec {
    /// Not requesting.
    Out,
    /// Requesting.
    Req,
    /// In the critical section.
    In,
}

impl CsStateSpec {
    /// The simulator-side state.
    pub fn to_cs(self) -> treenet::CsState {
        match self {
            CsStateSpec::Out => treenet::CsState::Out,
            CsStateSpec::Req => treenet::CsState::Req,
            CsStateSpec::In => treenet::CsState::In,
        }
    }
}

/// One message injected before the run starts.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectSpec {
    /// Sending node.
    pub from: usize,
    /// Outgoing channel label at the sender.
    pub channel: usize,
    /// The message.
    pub message: MessageSpec,
}

/// Serializable mirror of the protocol message alphabet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MessageSpec {
    /// A resource token.
    ResT,
    /// The pusher token.
    PushT,
    /// The priority token.
    PrioT,
    /// A controller message `⟨ctrl, C, R, PT, PPr⟩`.
    Ctrl {
        /// Counter-flushing flag value.
        c: u64,
        /// Reset flag.
        r: bool,
        /// Resource tokens passed so far.
        pt: u64,
        /// Priority tokens passed so far.
        ppr: u8,
    },
    /// An arbitrary garbage message.
    Garbage {
        /// Payload tag.
        tag: u16,
    },
}

impl MessageSpec {
    /// The wire-level message.
    pub fn to_message(self) -> klex_core::Message {
        match self {
            MessageSpec::ResT => klex_core::Message::ResT,
            MessageSpec::PushT => klex_core::Message::PushT,
            MessageSpec::PrioT => klex_core::Message::PrioT,
            MessageSpec::Ctrl { c, r, pt, ppr } => klex_core::Message::Ctrl { c, r, pt, ppr },
            MessageSpec::Garbage { tag } => klex_core::Message::Garbage(tag),
        }
    }
}

/// An optional stabilization phase run before faults and measurement: the network runs under
/// the warmup daemon (default: the main daemon) until the protocol's legitimacy predicate has
/// held for a confirmation window, then the trace and metrics are reset.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarmupSpec {
    /// Step budget for stabilization.
    pub max_steps: u64,
    /// Sustained-legitimacy confirmation window (default: `4 n²` activations).
    pub window: Option<u64>,
    /// Daemon override for the warmup phase (e.g. stabilize under a fair daemon before
    /// measuring under an adversarial one).
    pub daemon: Option<DaemonSpec>,
}

/// A transient fault injected after warmup (or at time 0 without one).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Injector RNG seed (offset by the per-trial stream in harness runs).
    pub seed: u64,
    /// Fault severity.
    pub plan: FaultPlanSpec,
}

/// Serializable mirror of the bundled [`treenet::FaultPlan`] severities.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultPlanSpec {
    /// Every local state corrupted; channels refilled with ≤ CMAX garbage.
    Catastrophic,
    /// Half the nodes corrupted plus message loss/duplication.
    Moderate,
    /// Message corruption only.
    MessageOnly,
}

impl FaultPlanSpec {
    /// Resolves to a concrete fault plan (CMAX from `cfg`).
    pub fn to_plan(self, cfg: &klex_core::KlConfig) -> treenet::FaultPlan {
        match self {
            FaultPlanSpec::Catastrophic => treenet::FaultPlan::catastrophic(cfg.cmax),
            FaultPlanSpec::Moderate => treenet::FaultPlan::moderate(cfg.cmax),
            FaultPlanSpec::MessageOnly => treenet::FaultPlan::message_only(),
        }
    }
}

/// One epoch of a [`FaultScheduleSpec`]: the perturbation applied at the start of the epoch.
/// Every event is followed by a re-convergence phase whose stabilization time is measured
/// and recorded per epoch.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultEventSpec {
    /// A transient fault at one of the bundled severities (the legacy one-shot plans).
    Transient {
        /// Fault severity.
        plan: FaultPlanSpec,
    },
    /// A burst of message-level faults on the in-flight channels: each queued message is
    /// independently dropped with probability `drop` or duplicated with probability
    /// `duplicate`, then up to `garbage` arbitrary messages are injected per channel.
    MessageBurst {
        /// Per-message drop probability.
        drop: f64,
        /// Per-message duplication probability.
        duplicate: f64,
        /// Garbage messages injected.
        garbage: usize,
    },
    /// Crash-restart of `count` random nodes: local state reset to the initial process
    /// state, optionally losing the crashed nodes' incoming channels.
    Crash {
        /// Nodes crashed (each restarted in place).
        count: usize,
        /// Also clear the crashed nodes' incoming channels.
        lose_incoming: bool,
    },
    /// The adversarial placer: corrupts every node on the root path of the current deepest
    /// token holder (the paper's worst case — faults chase the resource tokens).
    TargetTokenPath,
    /// Topology churn: a fresh leaf joins under a random node.
    JoinLeaf,
    /// Topology churn: a random non-root leaf leaves the network (skipped when the network
    /// is already at the 2-node minimum).
    LeaveLeaf,
    /// Topology churn: a random non-root node is re-attached (with its whole subtree) under
    /// a new parent outside that subtree (skipped when no valid rewiring exists).
    RewireEdge,
}

impl FaultEventSpec {
    /// Short lowercase label used in per-epoch report rows.
    pub fn label(&self) -> &'static str {
        match self {
            FaultEventSpec::Transient { .. } => "transient",
            FaultEventSpec::MessageBurst { .. } => "message-burst",
            FaultEventSpec::Crash { .. } => "crash",
            FaultEventSpec::TargetTokenPath => "target-token-path",
            FaultEventSpec::JoinLeaf => "join-leaf",
            FaultEventSpec::LeaveLeaf => "leave-leaf",
            FaultEventSpec::RewireEdge => "rewire-edge",
        }
    }

    /// True for the topology-churn events (those that change the network's shape).
    pub fn is_churn(&self) -> bool {
        matches!(
            self,
            FaultEventSpec::JoinLeaf | FaultEventSpec::LeaveLeaf | FaultEventSpec::RewireEdge
        )
    }

    /// True for events only the tree rungs support (churn rebuilds an oriented tree;
    /// crash-restart and the token-path placer need the tree-side process traits).
    pub fn needs_tree(&self) -> bool {
        self.is_churn()
            || matches!(self, FaultEventSpec::Crash { .. } | FaultEventSpec::TargetTokenPath)
    }
}

/// A declarative multi-epoch fault campaign: a timeline of fault epochs, each an event
/// followed by a measured re-convergence phase.  The schedule runs after warmup (and after
/// the legacy one-shot [`FaultSpec`], when both are present) and before the measured phase.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultScheduleSpec {
    /// Campaign RNG seed (offset by the per-trial stream in harness runs).  Churn placement
    /// draws from an independent stream of this seed, so the epoch topology sequence is
    /// reproducible from the spec alone.
    pub seed: u64,
    /// The fault epochs, applied in order.
    pub epochs: Vec<FaultEventSpec>,
    /// Per-epoch re-convergence step budget.
    pub max_steps: u64,
    /// Sustained-legitimacy confirmation window (default: `4 n²` for the epoch's network
    /// size).
    pub window: Option<u64>,
}

/// Which node initiates each snapshot — the serializable mirror of
/// [`treenet::InitiatorPolicy`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitiatorSpec {
    /// The root (node 0) initiates every snapshot.
    Root,
    /// Snapshot `i` is initiated by node `i mod n`.
    Rotate,
}

impl InitiatorSpec {
    /// The simulator-side policy.
    pub fn to_policy(self) -> treenet::InitiatorPolicy {
        match self {
            InitiatorSpec::Root => treenet::InitiatorPolicy::Root,
            InitiatorSpec::Rotate => treenet::InitiatorPolicy::Rotate,
        }
    }
}

/// Periodic in-simulation Chandy–Lamport snapshots during the measured phase: every
/// `interval` activations a consistent cut is assembled on the live channels (marker
/// messages FIFO with protocol traffic) and handed to the cut-level safety monitor
/// ([`crate::snapshot::SnapshotMonitor`]), which asserts the (ℓ, 1, 1) token census and the
/// per-process `k` bounds on every cut.  Runs report the `snapshots_taken` and
/// `snapshots_clean` metrics and carry the per-cut verdicts in
/// [`crate::scenario::ScenarioOutcome::snapshots`].
///
/// Marker traffic is observability-only (never delivered to protocol code, never counted as
/// tokens), but it does occupy channels: with a [`StopSpec::Quiescent`] stop, keep the
/// quiescence grace shorter than the snapshot interval or in-flight markers will keep
/// interrupting the quiet streak.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotSpec {
    /// Activations between the completion of one cut and the initiation of the next (and
    /// before the first).  Must be positive.
    pub interval: u64,
    /// Initiator choice per snapshot.
    pub initiator: InitiatorSpec,
}

impl SnapshotSpec {
    /// The simulator-side plan.
    pub fn to_plan(&self) -> treenet::SnapshotPlan {
        treenet::SnapshotPlan { interval: self.interval, initiator: self.initiator.to_policy() }
    }
}

/// When the measured (main) phase of a run stops.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopSpec {
    /// Run exactly this many activations.
    Steps {
        /// Activations to execute.
        steps: u64,
    },
    /// Run until the network is quiescent for `grace` consecutive activations (the Figure-2
    /// deadlock detector) or the budget runs out.
    Quiescent {
        /// Step budget.
        max_steps: u64,
        /// Consecutive quiet activations required.
        grace: u64,
    },
    /// Run until this many critical sections have been entered (since the phase started).
    CsEntries {
        /// Critical-section entries to wait for.
        entries: u64,
        /// Step budget.
        max_steps: u64,
    },
    /// Run until a named predicate holds — sustained for `sustained_for` activations when
    /// that is non-zero (the convergence-measurement mode).  Known names:
    /// `"legitimate"`, `"census-complete"`, `"all-requesters-served"`.
    Predicate {
        /// Predicate name.
        name: String,
        /// Step budget.
        max_steps: u64,
        /// Sustained-window length (0 = stop the first time the predicate holds).
        sustained_for: u64,
    },
}

impl StopSpec {
    /// The names accepted by [`StopSpec::Predicate`].
    pub const PREDICATES: [&'static str; 3] =
        ["legitimate", "census-complete", "all-requesters-served"];
}

/// Bounds and properties for the bounded-exhaustive checking backend.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckSpec {
    /// Maximum distinct configurations to visit.
    pub max_configurations: usize,
    /// Maximum exploration depth (0 = unbounded).
    pub max_depth: usize,
    /// Property names to check.  Per-configuration predicates: `"safety"`,
    /// `"exact-census"`, `"no-garbage"`, `"legitimate"`.  The temporal name `"liveness"`
    /// instead enables graph recording plus the fair-cycle pass
    /// ([`checker::liveness::find_fair_cycles`]), whose lasso witnesses land in
    /// [`checker::ExplorationReport::liveness`].
    pub properties: Vec<String>,
    /// Explore from a *stabilized* configuration instead of the clean initial one: the
    /// lowered network first runs a deterministic fair schedule until sustained legitimacy
    /// (the closure half of Definition 1).  Only meaningful for the `ss` rung, and
    /// incompatible with init overrides.
    pub from_legitimate: bool,
    /// Worker threads for the exploration: `0` (the default) auto-sizes to one worker per
    /// available core, `1` forces the sequential delta engine, `N > 1` runs the
    /// work-stealing parallel engine with `N` workers.  The report is identical at every
    /// setting (the engine parity contract); the knob only trades wall-clock for cores.
    /// Decoded as optional (defaulting to `0`) for pre-parallel spec documents.
    pub threads: usize,
}

impl CheckSpec {
    /// The names accepted in [`CheckSpec::properties`].
    pub const PROPERTIES: [&'static str; 5] =
        ["safety", "exact-census", "no-garbage", "legitimate", "liveness"];
}

impl Default for CheckSpec {
    fn default() -> Self {
        CheckSpec {
            max_configurations: 100_000,
            max_depth: 0,
            properties: vec!["safety".to_string()],
            from_legitimate: false,
            threads: 0,
        }
    }
}

/// Metric names the sim/harness backends can compute (see [`ScenarioSpec::metrics`]).
pub const METRIC_NAMES: [&str; 20] = [
    "steps",
    "satisfied",
    "converged",
    "cs_entries",
    "messages_sent",
    "in_flight",
    "blocked_requesters",
    "jain_index",
    "waiting_max",
    "waiting_mean",
    "warmup_activations",
    "convergence_activations",
    "resource_tokens",
    "census_matches",
    "epochs_total",
    "epochs_converged",
    "epoch_convergence_mean",
    "epoch_convergence_max",
    "snapshots_taken",
    "snapshots_clean",
];

/// True for names the sim/harness backends can emit: every [`METRIC_NAMES`] entry plus the
/// per-epoch family `epoch<i>_convergence` produced by fault-schedule runs.
pub fn is_metric_name(name: &str) -> bool {
    if METRIC_NAMES.contains(&name) {
        return true;
    }
    name.strip_prefix("epoch")
        .and_then(|rest| rest.strip_suffix("_convergence"))
        .is_some_and(|digits| !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()))
}

/// The default metric selection when [`ScenarioSpec::metrics`] is empty.
pub const DEFAULT_METRICS: [&str; 4] = ["steps", "satisfied", "cs_entries", "messages_sent"];

/// A complete declarative scenario: one value describes topology, protocol, parameters,
/// workload, daemon, faults, stop condition, metrics, trial plan and checking bounds.
///
/// Build one fluently with [`ScenarioSpec::builder`], load one from JSON with
/// [`ScenarioSpec::from_json`], or take a named paper scenario from
/// [`crate::scenario::preset`]; then [`compile`](ScenarioSpec::compile) it and pick a
/// backend.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Human-readable scenario label (used as the table row label).
    pub name: String,
    /// How the tree is built.
    pub topology: TopologySpec,
    /// Which protocol rung runs.
    pub protocol: ProtocolSpec,
    /// Protocol parameters.
    pub config: ConfigSpec,
    /// Application workload.
    pub workload: WorkloadSpec,
    /// Scheduling daemon.
    pub daemon: DaemonSpec,
    /// Initial-configuration overrides.
    pub init: Option<InitSpec>,
    /// Optional stabilization phase before measurement.
    pub warmup: Option<WarmupSpec>,
    /// Optional transient fault after warmup.
    pub fault: Option<FaultSpec>,
    /// Optional multi-epoch fault campaign run between the (warmup + one-shot fault)
    /// preamble and the measured phase, with per-epoch re-convergence measurement.
    pub fault_schedule: Option<FaultScheduleSpec>,
    /// Optional periodic consistent snapshots (with cut-level safety verdicts) during the
    /// measured phase.
    pub snapshots: Option<SnapshotSpec>,
    /// Stop condition of the measured phase.
    pub stop: StopSpec,
    /// Metric selection (empty = [`DEFAULT_METRICS`]).
    pub metrics: Vec<String>,
    /// Temporal monitors evaluated on simulator runs ([`crate::monitor::MONITOR_NAMES`]):
    /// the paper property (or properties) this scenario certifies, as data.  Empty = no
    /// monitoring.
    pub properties: Vec<String>,
    /// Number of trials in harness runs.
    pub trials: u64,
    /// Base seed of the per-trial seed streams.
    pub base_seed: u64,
    /// Bounds and properties for the checking backend.
    pub check: CheckSpec,
}

impl ScenarioSpec {
    /// Starts a fluent builder; `name` labels the scenario in every rendered table.
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder::new(name)
    }

    /// Serializes the spec as JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("specs are serializable")
    }

    /// Parses a spec from its JSON representation (the format [`ScenarioSpec::to_json`]
    /// emits: externally tagged enums, structs as objects).
    pub fn from_json(input: &str) -> Result<Self, ScenarioError> {
        let value = serde_json::from_str(input)
            .map_err(|e| ScenarioError::Json(format!("unparsable spec: {e}")))?;
        super::json::spec_from_value(&value)
    }

    /// True when the fault schedule contains a topology-churn epoch (the network's shape
    /// changes mid-run).
    pub fn has_churn(&self) -> bool {
        self.fault_schedule
            .as_ref()
            .is_some_and(|s| s.epochs.iter().any(FaultEventSpec::is_churn))
    }

    /// The metric selection in effect (the default set when none was chosen).
    pub fn selected_metrics(&self) -> Vec<String> {
        if self.metrics.is_empty() {
            DEFAULT_METRICS.iter().map(|s| s.to_string()).collect()
        } else {
            self.metrics.clone()
        }
    }

    /// Validates the spec and returns the runnable form.
    pub fn compile(self) -> Result<CompiledScenario, ScenarioError> {
        self.validate()?;
        Ok(CompiledScenario::from_validated(self))
    }

    fn validate(&self) -> Result<(), ScenarioError> {
        let err = |msg: String| Err(ScenarioError::Invalid(msg));
        let n = self.topology.len();
        if n < 2 {
            return err(format!("topology has {n} processes; at least 2 are required"));
        }
        if self.config.k < 1 {
            return err("k must be at least 1".into());
        }
        if self.config.k > self.config.l {
            return err(format!("k ({}) must not exceed l ({})", self.config.k, self.config.l));
        }
        if let WorkloadSpec::Needs { needs, .. } = &self.workload {
            if needs.len() > n {
                return err(format!("needs lists {} nodes but the topology has {n}", needs.len()));
            }
        }
        if let WorkloadSpec::Uniform { p_request, .. }
        | WorkloadSpec::LeafUniform { p_request, .. } = &self.workload
        {
            if !(0.0..=1.0).contains(p_request) {
                return err(format!("p_request {p_request} is not a probability"));
            }
        }
        if matches!(self.workload, WorkloadSpec::LeafUniform { .. })
            && matches!(self.protocol, ProtocolSpec::Ring)
        {
            return err("the LeafUniform workload needs a tree; the ring has no leaves".into());
        }
        let daemons = [Some(&self.daemon), self.warmup.as_ref().and_then(|w| w.daemon.as_ref())];
        for daemon in daemons.into_iter().flatten() {
            if let DaemonSpec::Adversarial { victims, .. } = daemon {
                if let Some(v) = victims.iter().find(|&&v| v >= n) {
                    return err(format!("adversarial victim {v} is out of range (n = {n})"));
                }
            }
        }
        if let Some(init) = &self.init {
            // Node/channel bounds below are checked against the trial-0 tree; with a seeded
            // topology every harness trial gets a *different* tree, so overrides addressing
            // concrete nodes cannot be validated (and would panic mid-run instead).
            if self.topology.is_seeded()
                && self.trials > 1
                && !(init.nodes.is_empty() && init.inject.is_empty())
            {
                return err(
                    "init overrides address concrete nodes/channels, which cannot be \
                     validated across the per-trial trees of a seeded topology; use a \
                     deterministic topology or trials = 1"
                        .into(),
                );
            }
            if init.bootstrapped_root
                && !matches!(
                    self.protocol,
                    ProtocolSpec::Naive | ProtocolSpec::Pusher | ProtocolSpec::NonStab
                )
            {
                return err(format!(
                    "bootstrapped_root is only meaningful for the non-self-stabilizing rungs, \
                     not {}",
                    self.protocol.label()
                ));
            }
            // The init addresses concrete nodes/channels: check them against the built tree.
            // (Random topologies: checked against the trial-0 tree; harness trials share the
            // node count, and degrees are re-checked at build time by the channel API.)
            let tree = self.topology.build(0);
            for node_init in &init.nodes {
                if node_init.node >= n {
                    return err(format!("init node {} is out of range (n = {n})", node_init.node));
                }
                let degree = tree.degree(node_init.node);
                if let Some(l) = node_init.rset.iter().find(|&&l| l >= degree) {
                    return err(format!(
                        "init rset label {l} exceeds the degree {degree} of node {}",
                        node_init.node
                    ));
                }
            }
            for inject in &init.inject {
                if inject.from >= n {
                    return err(format!("inject source {} is out of range (n = {n})", inject.from));
                }
                if inject.channel >= tree.degree(inject.from) {
                    return err(format!(
                        "inject channel {} exceeds the degree {} of node {}",
                        inject.channel,
                        tree.degree(inject.from),
                        inject.from
                    ));
                }
            }
            if matches!(self.protocol, ProtocolSpec::Ring) && !init.inject.is_empty() {
                return err("message injection into the ring baseline is not supported".into());
            }
        }
        if let StopSpec::Predicate { name, .. } = &self.stop {
            if !StopSpec::PREDICATES.contains(&name.as_str()) {
                return err(format!(
                    "unknown stop predicate {name:?} (known: {:?})",
                    StopSpec::PREDICATES
                ));
            }
        }
        match &self.stop {
            StopSpec::Steps { .. } => {}
            StopSpec::Quiescent { max_steps, .. }
            | StopSpec::CsEntries { max_steps, .. }
            | StopSpec::Predicate { max_steps, .. } => {
                if *max_steps == 0 {
                    return err("stop budget (max_steps) must be positive".into());
                }
            }
        }
        if let Some(schedule) = &self.fault_schedule {
            if !schedule.epochs.is_empty() && schedule.max_steps == 0 {
                return err("fault-schedule re-convergence budget (max_steps) must be positive".into());
            }
            if schedule.window == Some(0) {
                return err("fault-schedule window must be at least 1 when set".into());
            }
            for (i, epoch) in schedule.epochs.iter().enumerate() {
                if let FaultEventSpec::MessageBurst { drop, duplicate, .. } = epoch {
                    for (name, p) in [("drop", drop), ("duplicate", duplicate)] {
                        if !(0.0..=1.0).contains(p) {
                            return err(format!(
                                "fault-schedule epoch {i}: {name} probability {p} is not a \
                                 probability"
                            ));
                        }
                    }
                }
                if let FaultEventSpec::Crash { count, .. } = epoch {
                    if *count == 0 {
                        return err(format!(
                            "fault-schedule epoch {i}: a crash event must crash at least one node"
                        ));
                    }
                }
                if matches!(self.protocol, ProtocolSpec::Ring) && epoch.needs_tree() {
                    return err(format!(
                        "fault-schedule epoch {i} ({}) needs a tree; the ring baseline supports \
                         only transient and message-burst fault epochs",
                        epoch.label()
                    ));
                }
            }
            if self.has_churn() && matches!(self.daemon, DaemonSpec::Adversarial { .. }) {
                return err(
                    "an adversarial daemon addresses concrete victim nodes, whose ids are not \
                     stable under topology churn; use a fair daemon with a churn schedule"
                        .into(),
                );
            }
        }
        if let Some(snapshots) = &self.snapshots {
            if snapshots.interval == 0 {
                return err("snapshot interval must be positive".into());
            }
        }
        for metric in &self.metrics {
            if !METRIC_NAMES.contains(&metric.as_str()) {
                return err(format!("unknown metric {metric:?} (known: {METRIC_NAMES:?})"));
            }
        }
        for monitor in &self.properties {
            if !crate::monitor::MONITOR_NAMES.contains(&monitor.as_str()) {
                return err(format!(
                    "unknown property monitor {monitor:?} (known: {:?})",
                    crate::monitor::MONITOR_NAMES
                ));
            }
        }
        for property in &self.check.properties {
            if !CheckSpec::PROPERTIES.contains(&property.as_str()) {
                return err(format!(
                    "unknown check property {property:?} (known: {:?})",
                    CheckSpec::PROPERTIES
                ));
            }
        }
        if self.check.from_legitimate {
            if self.protocol != ProtocolSpec::Ss {
                return err(format!(
                    "check.from_legitimate stabilizes the self-stabilizing protocol before \
                     exploring; the {} rung has no legitimacy to stabilize into",
                    self.protocol.label()
                ));
            }
            if self.init.is_some() {
                return err(
                    "check.from_legitimate replaces the initial configuration with a \
                     stabilized one; init overrides would be discarded"
                        .into(),
                );
            }
        }
        Ok(())
    }
}

/// Fluent constructor for [`ScenarioSpec`] — the `Scenario::builder()` entry point.
///
/// Every setter has a sensible default (see [`ScenarioBuilder::new`]), so a minimal scenario
/// is two lines: pick a topology and a stop condition.
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    spec: ScenarioSpec,
}

impl ScenarioBuilder {
    /// A builder with defaults: Figure-1 tree, self-stabilizing protocol, 1-out-of-2,
    /// saturated workload, round-robin daemon, 10 000-step run, 1 trial.
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioBuilder {
            spec: ScenarioSpec {
                name: name.into(),
                topology: TopologySpec::Figure1,
                protocol: ProtocolSpec::Ss,
                config: ConfigSpec::new(1, 2),
                workload: WorkloadSpec::Saturated { units: 1, hold: 5 },
                daemon: DaemonSpec::RoundRobin,
                init: None,
                warmup: None,
                fault: None,
                fault_schedule: None,
                snapshots: None,
                stop: StopSpec::Steps { steps: 10_000 },
                metrics: Vec::new(),
                properties: Vec::new(),
                trials: 1,
                base_seed: 0,
                check: CheckSpec::default(),
            },
        }
    }

    /// Sets the topology.
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        self.spec.topology = topology;
        self
    }

    /// Sets the protocol rung.
    pub fn protocol(mut self, protocol: ProtocolSpec) -> Self {
        self.spec.protocol = protocol;
        self
    }

    /// Sets `k` and `ℓ` (other config knobs keep their defaults).
    pub fn kl(mut self, k: usize, l: usize) -> Self {
        let base = ConfigSpec::new(k, l);
        self.spec.config = ConfigSpec { k, l, ..std::mem::replace(&mut self.spec.config, base) };
        self
    }

    /// Sets the full protocol-parameter spec.
    pub fn config(mut self, config: ConfigSpec) -> Self {
        self.spec.config = config;
        self
    }

    /// Sets the workload.
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.spec.workload = workload;
        self
    }

    /// Sets the daemon.
    pub fn daemon(mut self, daemon: DaemonSpec) -> Self {
        self.spec.daemon = daemon;
        self
    }

    /// Sets initial-configuration overrides.
    pub fn init(mut self, init: InitSpec) -> Self {
        self.spec.init = Some(init);
        self
    }

    /// Adds a stabilization warmup phase with the default window and the main daemon.
    pub fn warmup(mut self, max_steps: u64) -> Self {
        self.spec.warmup = Some(WarmupSpec { max_steps, window: None, daemon: None });
        self
    }

    /// Sets the full warmup spec.
    pub fn warmup_spec(mut self, warmup: WarmupSpec) -> Self {
        self.spec.warmup = Some(warmup);
        self
    }

    /// Injects a transient fault after warmup.
    pub fn fault(mut self, seed: u64, plan: FaultPlanSpec) -> Self {
        self.spec.fault = Some(FaultSpec { seed, plan });
        self
    }

    /// Attaches a multi-epoch fault campaign (see [`FaultScheduleSpec`]).
    pub fn fault_schedule(mut self, schedule: FaultScheduleSpec) -> Self {
        self.spec.fault_schedule = Some(schedule);
        self
    }

    /// Enables root-initiated consistent snapshots every `interval` activations of the
    /// measured phase.
    pub fn snapshots(mut self, interval: u64) -> Self {
        self.spec.snapshots = Some(SnapshotSpec { interval, initiator: InitiatorSpec::Root });
        self
    }

    /// Sets the full snapshot spec.
    pub fn snapshot_spec(mut self, snapshots: SnapshotSpec) -> Self {
        self.spec.snapshots = Some(snapshots);
        self
    }

    /// Sets the stop condition.
    pub fn stop(mut self, stop: StopSpec) -> Self {
        self.spec.stop = stop;
        self
    }

    /// Selects the metrics to compute.
    pub fn metrics(mut self, metrics: &[&str]) -> Self {
        self.spec.metrics = metrics.iter().map(|m| m.to_string()).collect();
        self
    }

    /// Selects the temporal monitors ([`crate::monitor::MONITOR_NAMES`]) simulator runs
    /// evaluate — the paper properties this scenario certifies.
    pub fn properties(mut self, properties: &[&str]) -> Self {
        self.spec.properties = properties.iter().map(|p| p.to_string()).collect();
        self
    }

    /// Sets the harness trial count.
    pub fn trials(mut self, trials: u64) -> Self {
        self.spec.trials = trials;
        self
    }

    /// Sets the base seed of the per-trial seed streams.
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.spec.base_seed = base_seed;
        self
    }

    /// Sets the checking bounds and properties.
    pub fn check(mut self, check: CheckSpec) -> Self {
        self.spec.check = check;
        self
    }

    /// The raw spec (pure data; serialize it, store it, or `compile()` it later).
    pub fn spec(self) -> ScenarioSpec {
        self.spec
    }

    /// Validates and compiles the spec in one step.
    pub fn build(self) -> Result<CompiledScenario, ScenarioError> {
        self.spec.compile()
    }
}
