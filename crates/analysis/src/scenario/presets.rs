//! The named scenario library: every paper figure and experiment regime as a ready-made
//! [`ScenarioSpec`].
//!
//! Presets are plain spec values — print one with [`ScenarioSpec::to_json`] to get a
//! starting point for a custom JSON scenario, or run one directly through the `klex` CLI
//! (`klex run figure2`).

use super::spec::{
    CheckSpec, ConfigSpec, CsStateSpec, DaemonSpec, FaultEventSpec, FaultPlanSpec,
    FaultScheduleSpec, InitSpec, MessageSpec, NodeInit, InjectSpec, ProtocolSpec, ScenarioSpec,
    StopSpec, TopologySpec, WarmupSpec, WorkloadSpec,
};

/// The names accepted by [`preset`], in presentation order.
pub const PRESET_NAMES: [&str; 18] = [
    "figure2",
    "figure2-pusher",
    "figure2-ss",
    "figure3-pusher",
    "figure3-nonstab",
    "figure3-ss",
    "quickstart",
    "theorem1",
    "theorem2",
    "timeout",
    "unbounded",
    "ring",
    "churn-campaign",
    "fault-gauntlet",
    "checker-safety",
    "checker-liveness",
    "checker-liveness-nonstab",
    "checker-churn",
];

/// Requested units per node in the Figure-2 scenario (`r,a,b,c,d,e,f,g`).
pub const FIGURE2_NEEDS: [usize; 8] = [0, 3, 2, 2, 2, 0, 0, 0];

/// Requested units per node in the Figure-3 scenario (`r, a, b`).
pub const FIGURE3_NEEDS: [usize; 3] = [1, 2, 1];

/// The right-hand (deadlocked) configuration of the paper's Figure 2 as declarative init
/// data: all five resource tokens reserved by the four requesters, none satisfiable, no
/// token in flight, and the root barred from creating fresh ones.
pub fn figure2_deadlock_init() -> InitSpec {
    InitSpec {
        bootstrapped_root: true,
        nodes: vec![
            // a = node 1: Req, Need 3, RSet {0,0}
            NodeInit { node: 1, state: CsStateSpec::Req, need: 3, rset: vec![0, 0] },
            // b, c, d = nodes 2..4: Req, Need 2, RSet {0}
            NodeInit { node: 2, state: CsStateSpec::Req, need: 2, rset: vec![0] },
            NodeInit { node: 3, state: CsStateSpec::Req, need: 2, rset: vec![0] },
            NodeInit { node: 4, state: CsStateSpec::Req, need: 2, rset: vec![0] },
        ],
        inject: Vec::new(),
    }
}

fn figure2_base(name: &str, protocol: ProtocolSpec) -> ScenarioSpec {
    ScenarioSpec::builder(name)
        .topology(TopologySpec::Figure1)
        .protocol(protocol)
        .kl(3, 5)
        .workload(WorkloadSpec::Needs { needs: FIGURE2_NEEDS.to_vec(), hold: 5 })
        .daemon(DaemonSpec::RoundRobin)
        .properties(&["at-most-k-in-cs", "l-availability"])
        .check(CheckSpec {
            max_configurations: 50_000,
            properties: vec!["safety".into()],
            ..CheckSpec::default()
        })
        .spec()
}

fn figure3_base(name: &str, protocol: ProtocolSpec) -> ScenarioSpec {
    ScenarioSpec::builder(name)
        .topology(TopologySpec::Figure3)
        .protocol(protocol)
        .kl(2, 3)
        .workload(WorkloadSpec::Needs { needs: FIGURE3_NEEDS.to_vec(), hold: 6 })
        .daemon(DaemonSpec::RandomFair { seed: 1_000 })
        .stop(StopSpec::Steps { steps: 60_000 })
        .metrics(&["steps", "satisfied", "cs_entries", "jain_index"])
        .properties(&["request-eventually-cs", "at-most-k-in-cs", "l-availability"])
        .trials(4)
        .spec()
}

/// The shared shape of the two fair-cycle checking presets: the exact Figure-3 liveness
/// instance (needs r=1, a=2, b=1, critical sections spanning one activation so processes
/// hold tokens while the pusher passes) with the fair-cycle pass enabled.
fn checker_liveness_base(name: &str, protocol: ProtocolSpec, max_configs: usize) -> ScenarioSpec {
    ScenarioSpec::builder(name)
        .topology(TopologySpec::Figure3)
        .protocol(protocol)
        .kl(2, 3)
        .workload(WorkloadSpec::Needs { needs: FIGURE3_NEEDS.to_vec(), hold: 1 })
        .daemon(DaemonSpec::RoundRobin)
        .stop(StopSpec::Steps { steps: 10_000 })
        .properties(&["request-eventually-cs", "at-most-k-in-cs", "l-availability"])
        .check(CheckSpec {
            max_configurations: max_configs,
            max_depth: 0,
            properties: vec!["safety".into(), "liveness".into()],
            ..CheckSpec::default()
        })
        .spec()
}

/// Looks up a named scenario.  `None` for unknown names — see [`PRESET_NAMES`].
pub fn preset(name: &str) -> Option<ScenarioSpec> {
    Some(match name {
        // Figure 2: the naive protocol starting in the figure's right-hand configuration
        // stays deadlocked forever — the run goes quiescent with all four requesters blocked.
        "figure2" => {
            let mut spec = figure2_base("figure2 — naive deadlock (Fig. 2)", ProtocolSpec::Naive);
            spec.init = Some(figure2_deadlock_init());
            spec.stop = StopSpec::Quiescent { max_steps: 100_000, grace: 64 };
            spec.metrics = vec![
                "steps".into(),
                "satisfied".into(),
                "cs_entries".into(),
                "in_flight".into(),
                "blocked_requesters".into(),
            ];
            spec.trials = 4;
            spec
        }
        // Figure 2 with the pusher rung: the same configuration plus the pusher token in
        // flight towards `a` — the deadlock resolves and critical sections keep happening.
        "figure2-pusher" => {
            let mut spec =
                figure2_base("figure2 — pusher resolves the deadlock", ProtocolSpec::Pusher);
            let mut init = figure2_deadlock_init();
            init.inject.push(InjectSpec { from: 0, channel: 0, message: MessageSpec::PushT });
            spec.init = Some(init);
            spec.stop = StopSpec::CsEntries { entries: 20, max_steps: 400_000 };
            spec.trials = 2;
            spec
        }
        // Figure 2 under the self-stabilizing protocol: the deadlock is just one more
        // arbitrary initial configuration; the controller repairs it and every requester is
        // eventually served.
        "figure2-ss" => {
            let mut spec =
                figure2_base("figure2 — self-stabilizing recovery", ProtocolSpec::Ss);
            let mut init = figure2_deadlock_init();
            init.bootstrapped_root = false;
            spec.init = Some(init);
            spec.stop = StopSpec::Predicate {
                name: "all-requesters-served".into(),
                max_steps: 2_000_000,
                sustained_for: 0,
            };
            spec.metrics =
                vec!["steps".into(), "satisfied".into(), "cs_entries".into(), "converged".into()];
            spec.trials = 2;
            spec
        }
        // Figure 3: 2-out-of-3 exclusion with needs r=1, a=2, b=1 under the pusher-only
        // protocol (the 2-unit requester can starve), the pusher+priority rung, and the full
        // self-stabilizing protocol.
        "figure3-pusher" => figure3_base("figure3 — pusher only", ProtocolSpec::Pusher),
        "figure3-nonstab" => figure3_base("figure3 — pusher + priority", ProtocolSpec::NonStab),
        "figure3-ss" => figure3_base("figure3 — self-stabilizing", ProtocolSpec::Ss),
        // The README quickstart: stabilize 3-out-of-5 on the Figure-1 tree, then measure a
        // steady-state window.
        "quickstart" => ScenarioSpec::builder("quickstart — 3-out-of-5 on the Figure-1 tree")
            .topology(TopologySpec::Figure1)
            .protocol(ProtocolSpec::Ss)
            .kl(3, 5)
            .workload(WorkloadSpec::Saturated { units: 2, hold: 10 })
            .daemon(DaemonSpec::RandomFair { seed: 2024 })
            .warmup_spec(WarmupSpec { max_steps: 2_000_000, window: Some(2_000), daemon: None })
            .stop(StopSpec::Steps { steps: 200_000 })
            .metrics(&[
                "steps",
                "satisfied",
                "cs_entries",
                "messages_sent",
                "jain_index",
                "waiting_max",
                "waiting_mean",
            ])
            .spec(),
        // Theorem 1 (one parameter point of experiment E5): stabilize, inject a catastrophic
        // transient fault, and measure re-convergence to sustained legitimacy.
        "theorem1" => ScenarioSpec::builder("theorem1 — convergence after a catastrophic fault")
            .topology(TopologySpec::Random { n: 9, seed: 7 })
            .protocol(ProtocolSpec::Ss)
            .kl(2, 4)
            .workload(WorkloadSpec::Uniform { seed: 11, p_request: 0.01, max_units: 2, max_hold: 20 })
            .daemon(DaemonSpec::RandomFair { seed: 50 })
            .warmup(1_500_000)
            .fault(900, FaultPlanSpec::Catastrophic)
            .stop(StopSpec::Predicate {
                name: "legitimate".into(),
                max_steps: 1_500_000,
                sustained_for: 2_000,
            })
            .metrics(&["converged", "convergence_activations", "warmup_activations"])
            .trials(5)
            .spec(),
        // Theorem 2 (one parameter point of experiment E6): saturate every process, stabilize
        // under a fair daemon, then measure waiting times under the bounded-unfairness
        // adversary that starves the deepest node.
        "theorem2" => ScenarioSpec::builder("theorem2 — waiting time under the adversary")
            .topology(TopologySpec::Chain { n: 9 })
            .protocol(ProtocolSpec::Ss)
            .kl(1, 3)
            .workload(WorkloadSpec::Saturated { units: 1, hold: 3 })
            .daemon(DaemonSpec::Adversarial { victims: vec![], patience: 8 })
            .warmup_spec(WarmupSpec {
                max_steps: 1_500_000,
                window: None,
                daemon: Some(DaemonSpec::RandomFair { seed: 300 }),
            })
            .stop(StopSpec::Steps { steps: 40_000 })
            .metrics(&["waiting_max", "waiting_mean", "cs_entries", "satisfied"])
            .trials(3)
            .spec(),
        // Experiment E13's "small" point: a timeout near one controller circulation — the
        // timer fires spuriously and pays in duplicate controller traffic.
        "timeout" => ScenarioSpec::builder("timeout — small controller-retransmission interval")
            .topology(TopologySpec::Random { n: 9, seed: 7_000 })
            .protocol(ProtocolSpec::Ss)
            .config(ConfigSpec::new(2, 3).with_timeout(16))
            .workload(WorkloadSpec::Saturated { units: 1, hold: 8 })
            .daemon(DaemonSpec::RandomFair { seed: 2_300 })
            .warmup(1_500_000)
            .stop(StopSpec::Steps { steps: 40_000 })
            .metrics(&["steps", "cs_entries", "messages_sent", "satisfied"])
            .spec(),
        // Experiment E14's adaptation point: the unbounded counter-flushing domain under a
        // catastrophic fault.
        "unbounded" => ScenarioSpec::builder("unbounded — counter domain of the conclusion")
            .topology(TopologySpec::Chain { n: 9 })
            .protocol(ProtocolSpec::Ss)
            .config(ConfigSpec::new(2, 4).with_cmax(0).with_unbounded_counter(true))
            .workload(WorkloadSpec::Uniform { seed: 3, p_request: 0.01, max_units: 2, max_hold: 20 })
            .daemon(DaemonSpec::RandomFair { seed: 1_400 })
            .warmup(1_500_000)
            .fault(77, FaultPlanSpec::Catastrophic)
            .stop(StopSpec::Predicate {
                name: "legitimate".into(),
                max_steps: 1_500_000,
                sustained_for: 2_000,
            })
            .metrics(&["converged", "convergence_activations"])
            .trials(3)
            .spec(),
        // The ring-based related-work baseline stabilizing from scratch.
        "ring" => ScenarioSpec::builder("ring — baseline stabilization")
            .topology(TopologySpec::Chain { n: 8 })
            .protocol(ProtocolSpec::Ring)
            .kl(1, 2)
            .workload(WorkloadSpec::Saturated { units: 1, hold: 4 })
            .daemon(DaemonSpec::RandomFair { seed: 4 })
            .stop(StopSpec::Predicate {
                name: "legitimate".into(),
                max_steps: 3_000_000,
                sustained_for: 0,
            })
            .metrics(&["steps", "satisfied", "cs_entries", "converged"])
            .spec(),
        // A multi-epoch fault campaign with topology churn: stabilize, then survive a
        // moderate transient fault, a leaf joining, a message burst, and a leaf leaving —
        // each epoch's re-convergence time is certified and reported separately.
        "churn-campaign" => ScenarioSpec::builder("churn campaign — faults and topology churn")
            .topology(TopologySpec::Random { n: 9, seed: 41 })
            .protocol(ProtocolSpec::Ss)
            .kl(2, 4)
            .workload(WorkloadSpec::Saturated { units: 1, hold: 6 })
            .daemon(DaemonSpec::RandomFair { seed: 90 })
            .warmup(1_500_000)
            .fault_schedule(FaultScheduleSpec {
                seed: 9_001,
                epochs: vec![
                    FaultEventSpec::Transient { plan: FaultPlanSpec::Moderate },
                    FaultEventSpec::JoinLeaf,
                    FaultEventSpec::MessageBurst { drop: 0.3, duplicate: 0.2, garbage: 2 },
                    FaultEventSpec::LeaveLeaf,
                ],
                max_steps: 1_500_000,
                window: None,
            })
            .stop(StopSpec::Steps { steps: 20_000 })
            .metrics(&[
                "epochs_total",
                "epochs_converged",
                "epoch_convergence_mean",
                "epoch_convergence_max",
                "cs_entries",
                "satisfied",
            ])
            .trials(3)
            .spec(),
        // The adversarial fault gauntlet: every epoch aims at the protocol's weak spot —
        // the token-holder root path, a crash-restart of two processes, then a catastrophic
        // wipe — measuring how quickly the self-stabilizing rung repairs each.
        "fault-gauntlet" => ScenarioSpec::builder("fault gauntlet — adversarial placement")
            .topology(TopologySpec::Random { n: 9, seed: 7 })
            .protocol(ProtocolSpec::Ss)
            .kl(2, 4)
            .workload(WorkloadSpec::Saturated { units: 1, hold: 8 })
            .daemon(DaemonSpec::RandomFair { seed: 51 })
            .warmup(1_500_000)
            .fault_schedule(FaultScheduleSpec {
                seed: 1_337,
                epochs: vec![
                    FaultEventSpec::TargetTokenPath,
                    FaultEventSpec::Crash { count: 2, lose_incoming: true },
                    FaultEventSpec::Transient { plan: FaultPlanSpec::Catastrophic },
                ],
                max_steps: 1_500_000,
                window: None,
            })
            .stop(StopSpec::Steps { steps: 20_000 })
            .metrics(&[
                "epochs_total",
                "epochs_converged",
                "epoch_convergence_mean",
                "epoch_convergence_max",
                "cs_entries",
            ])
            .trials(3)
            .spec(),
        // A small instance meant for the checking backend: exhaustively verify the safety
        // bounds *and* (k, ℓ)-liveness (no fair starvation cycle) of the full protocol on
        // the Figure-3 tree.
        "checker-safety" => ScenarioSpec::builder("checker — safety of ss on the Figure-3 tree")
            .topology(TopologySpec::Figure3)
            .protocol(ProtocolSpec::Ss)
            .kl(2, 3)
            .workload(WorkloadSpec::Saturated { units: 1, hold: 0 })
            .daemon(DaemonSpec::RoundRobin)
            .stop(StopSpec::Steps { steps: 5_000 })
            .properties(&["request-eventually-cs", "at-most-k-in-cs", "l-availability"])
            .check(CheckSpec {
                max_configurations: 20_000,
                max_depth: 0,
                properties: vec!["safety".into(), "liveness".into()],
                ..CheckSpec::default()
            })
            .spec(),
        // The Figure-3 livelock as a fair-cycle checking scenario: the pusher-only rung has
        // a weakly fair lasso starving the 2-unit requester (the checker reports it with a
        // stem + cycle witness)...
        "checker-liveness" => checker_liveness_base(
            "checker — figure3 livelock of the pusher-only rung",
            ProtocolSpec::Pusher,
            800_000,
        ),
        // ...and the priority token removes it: the same instance one rung up is clean.
        "checker-liveness-nonstab" => checker_liveness_base(
            "checker — priority token removes the figure3 livelock",
            ProtocolSpec::NonStab,
            1_500_000,
        ),
        // Exhaustive checking from a post-campaign configuration: a tiny chain survives a
        // transient fault, a leaf joining, and a message burst, then the checker explores
        // every reachable configuration from where the campaign left the network.
        "checker-churn" => ScenarioSpec::builder("checker — safety after a churn campaign")
            .topology(TopologySpec::Chain { n: 3 })
            .protocol(ProtocolSpec::Ss)
            .kl(1, 2)
            .workload(WorkloadSpec::Saturated { units: 1, hold: 0 })
            .daemon(DaemonSpec::RoundRobin)
            .fault_schedule(FaultScheduleSpec {
                seed: 77,
                epochs: vec![
                    FaultEventSpec::Transient { plan: FaultPlanSpec::MessageOnly },
                    FaultEventSpec::JoinLeaf,
                    FaultEventSpec::MessageBurst { drop: 0.5, duplicate: 0.0, garbage: 1 },
                ],
                max_steps: 100_000,
                window: None,
            })
            .stop(StopSpec::Steps { steps: 5_000 })
            .properties(&["at-most-k-in-cs", "l-availability"])
            .check(CheckSpec {
                max_configurations: 40_000,
                max_depth: 0,
                properties: vec!["safety".into()],
                ..CheckSpec::default()
            })
            .spec(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_compiles() {
        for name in PRESET_NAMES {
            let spec = preset(name).expect(name);
            assert!(spec.clone().compile().is_ok(), "{name} must validate");
            // And round-trips through its own JSON.
            let json = spec.to_json();
            assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec, "{name} round-trip");
        }
    }

    #[test]
    fn unknown_preset_is_none() {
        assert!(preset("no-such-scenario").is_none());
    }

    #[test]
    fn figure2_preset_encodes_the_paper_configuration() {
        let spec = preset("figure2").unwrap();
        assert_eq!(spec.protocol, ProtocolSpec::Naive);
        let init = spec.init.expect("figure2 starts from the deadlock");
        assert!(init.bootstrapped_root);
        assert_eq!(init.nodes.len(), 4);
        // The figure's requests over-subscribe the pool.
        let total: usize = FIGURE2_NEEDS.iter().sum();
        assert!(total > spec.config.l);
    }
}
