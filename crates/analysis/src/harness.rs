//! Experiment harness: repeated trials, sharded parallel execution, parameter sweeps, and
//! table rendering.
//!
//! Each experiment binary in the `bench` crate builds a list of [`Trial`]s (one per parameter
//! point × seed), runs them — optionally in parallel across OS threads with
//! [`run_trials_parallel`] — and renders the aggregated [`ExperimentRow`]s as a markdown
//! table (for `EXPERIMENTS.md`) and as JSON lines (for machine post-processing).
//!
//! # Sharded trials
//!
//! Statistical experiments (convergence matrices, waiting-time sweeps) repeat one simulation
//! over many seeds.  [`run_sharded`] fans those trials out across `std::thread::scope`
//! workers.  The crucial discipline is that each trial's RNG stream is derived from the
//! *trial index* ([`trial_seed`], a SplitMix64 stream), **not** from the worker that happens
//! to execute it — so the merged results are bit-identical for every shard count, including
//! `shards = 1`.  Per-trial outputs come back in index order and can be reduced with
//! [`summarize`] and [`crate::Histogram::merge`].

use crate::stats::Summary;
use serde::Serialize;
use std::collections::BTreeMap;

/// One measurement row of an experiment table: a labelled parameter point with named metrics.
#[derive(Clone, Debug, Default, Serialize)]
pub struct ExperimentRow {
    /// Human-readable parameter point, e.g. `"chain, n=15, l=4"`.
    pub label: String,
    /// Named metric values, in insertion order (BTreeMap keeps columns stable).
    pub metrics: BTreeMap<String, f64>,
}

impl ExperimentRow {
    /// Creates a row with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        ExperimentRow { label: label.into(), metrics: BTreeMap::new() }
    }

    /// Adds (or overwrites) one metric.
    pub fn with(mut self, key: &str, value: f64) -> Self {
        self.metrics.insert(key.to_string(), value);
        self
    }

    /// Adds the mean of a summary under `key` and its p95 under `key_p95`.
    pub fn with_summary(mut self, key: &str, summary: &Summary) -> Self {
        self.metrics.insert(format!("{key}_mean"), summary.mean);
        self.metrics.insert(format!("{key}_p95"), summary.p95);
        self.metrics.insert(format!("{key}_max"), summary.max);
        self
    }
}

/// A single trial: a closure producing named metric values, identified by a seed.
pub struct Trial {
    /// Seed identifying (and reproducing) the trial.
    pub seed: u64,
    /// The work: returns named metric samples.
    pub run: Box<dyn FnOnce() -> BTreeMap<String, f64> + Send>,
}

impl Trial {
    /// Creates a trial.
    pub fn new(seed: u64, run: impl FnOnce() -> BTreeMap<String, f64> + Send + 'static) -> Self {
        Trial { seed, run: Box::new(run) }
    }
}

/// Runs trials sequentially, returning each trial's metric map.
pub fn run_trials(trials: Vec<Trial>) -> Vec<BTreeMap<String, f64>> {
    trials.into_iter().map(|t| (t.run)()).collect()
}

/// Runs trials in parallel across up to `threads` OS threads (std scoped threads pulling from
/// a shared work queue), preserving the input order in the output.
pub fn run_trials_parallel(trials: Vec<Trial>, threads: usize) -> Vec<BTreeMap<String, f64>> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let threads = threads.max(1);
    if threads == 1 || trials.len() <= 1 {
        return run_trials(trials);
    }
    let n = trials.len();
    let work: Vec<Mutex<Option<Trial>>> =
        trials.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<BTreeMap<String, f64>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let trial = work[idx].lock().expect("unpoisoned").take().expect("claimed once");
                let result = (trial.run)();
                *slots[idx].lock().expect("unpoisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("unpoisoned").expect("every trial ran"))
        .collect()
}

/// Derives the RNG seed of trial `index` from an experiment-level `base_seed`.
///
/// SplitMix64 over `base_seed + index·φ64`: consecutive indices yield decorrelated streams,
/// and the mapping depends only on `(base_seed, index)` — never on which shard runs the
/// trial — so sharded executions are reproducible at every thread count.
pub fn trial_seed(base_seed: u64, index: u64) -> u64 {
    let mut z = base_seed.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Number of cores this host can run concurrently (at least 1).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolves a worker-count knob against a host core count: `0` means "one worker per core"
/// and anything else is taken literally.
///
/// This is *the* worker/thread derivation rule of the workspace — `CheckSpec.threads`
/// dispatch, the fuzzer's per-campaign thread split, the serve daemon's worker pool and the
/// benchmark binaries all resolve through it.  A pure function of `(requested, host_cores)`
/// so the policy is unit-testable off-host; in particular a 1-core host resolves `0` to `1`
/// — auto never oversubscribes a single core (the PR 6 fix).
pub fn worker_count(requested: usize, host_cores: usize) -> usize {
    if requested == 0 {
        host_cores.max(1)
    } else {
        requested
    }
}

/// [`worker_count`] against this host's [`host_cores`].
pub fn auto_workers(requested: usize) -> usize {
    worker_count(requested, host_cores())
}

/// A sensible shard count for this host: one shard per available core.
pub fn auto_shards() -> usize {
    host_cores()
}

/// Runs `trials` independent trials sharded across up to `shards` scoped worker threads,
/// returning each trial's result in index order.
///
/// `run(index, seed)` receives the trial index (`0..trials`) and its derived RNG seed
/// ([`trial_seed`]); because seeds are a function of the index alone, the returned vector is
/// identical for every `shards` value (a property asserted by this module's tests).  Workers
/// pull trial indices from a shared atomic counter, so uneven trial durations balance
/// automatically.
pub fn run_sharded<R, F>(trials: u64, base_seed: u64, shards: usize, run: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64, u64) -> R + Sync,
{
    run_sharded_with(trials, base_seed, shards, || (), |(), index, seed| run(index, seed))
}

/// [`run_sharded`] with **worker-local reusable state**: each worker thread calls `init`
/// once and hands the resulting value mutably to every trial it executes.
///
/// This is the trial-reuse hook of the scenario harness: the worker state holds a simulated
/// network (wrapped in `Option`, built on first use) that subsequent trials reset in place
/// ([`treenet::Network::reset_trial`]) instead of rebuilding, eliminating the per-trial
/// allocation of channels, enabled-set arrays, traces and metrics.  Because the state is
/// per-*worker* while seeds stay per-*trial*, the reuse is invisible to results: the
/// returned vector is still identical for every shard count, provided trials leave no
/// behaviourally relevant residue in the state (exactly what `reset_trial` guarantees —
/// asserted by the scenario-level reuse tests).
pub fn run_sharded_with<W, R, Init, F>(
    trials: u64,
    base_seed: u64,
    shards: usize,
    init: Init,
    run: F,
) -> Vec<R>
where
    R: Send,
    Init: Fn() -> W + Sync,
    F: Fn(&mut W, u64, u64) -> R + Sync,
{
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    let shards = shards.max(1).min(trials.max(1) as usize);
    if shards == 1 {
        let mut worker = init();
        return (0..trials).map(|i| run(&mut worker, i, trial_seed(base_seed, i))).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..trials).map(|_| Mutex::new(None)).collect();
    let next = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..shards {
            scope.spawn(|| {
                let mut worker = init();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= trials {
                        break;
                    }
                    let result = run(&mut worker, index, trial_seed(base_seed, index));
                    *slots[index as usize].lock().expect("unpoisoned") = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("unpoisoned").expect("every trial ran"))
        .collect()
}

/// Aggregates per-trial metric maps into one [`Summary`] per metric name.
pub fn summarize(results: &[BTreeMap<String, f64>]) -> BTreeMap<String, Summary> {
    let mut grouped: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for result in results {
        for (key, value) in result {
            grouped.entry(key.clone()).or_default().push(*value);
        }
    }
    grouped.into_iter().map(|(k, v)| (k, Summary::of(&v))).collect()
}

/// Renders rows as a GitHub-flavoured markdown table.  Columns are the union of all metric
/// names, in alphabetical order; missing cells render as `-`.
pub fn render_markdown_table(title: &str, rows: &[ExperimentRow]) -> String {
    let mut columns: Vec<String> = Vec::new();
    for row in rows {
        for key in row.metrics.keys() {
            if !columns.contains(key) {
                columns.push(key.clone());
            }
        }
    }
    columns.sort();
    let mut out = String::new();
    out.push_str(&format!("### {title}\n\n"));
    out.push_str("| scenario |");
    for c in &columns {
        out.push_str(&format!(" {c} |"));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &columns {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("| {} |", row.label));
        for c in &columns {
            match row.metrics.get(c) {
                Some(v) => out.push_str(&format!(" {} |", format_value(*v))),
                None => out.push_str(" - |"),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders rows as JSON lines for machine consumption.
pub fn render_jsonl(rows: &[ExperimentRow]) -> String {
    rows.iter()
        .map(|r| serde_json::to_string(r).expect("rows are serializable"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Renders rows as CSV (header + one line per row).  Columns are the union of all metric
/// names in alphabetical order; missing cells are left empty.  Labels containing commas or
/// quotes are quoted per RFC 4180.
pub fn render_csv(rows: &[ExperimentRow]) -> String {
    let mut columns: Vec<String> = Vec::new();
    for row in rows {
        for key in row.metrics.keys() {
            if !columns.contains(key) {
                columns.push(key.clone());
            }
        }
    }
    columns.sort();
    let quote = |s: &str| {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = String::from("scenario");
    for c in &columns {
        out.push(',');
        out.push_str(&quote(c));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&quote(&row.label));
        for c in &columns {
            out.push(',');
            if let Some(v) = row.metrics.get(c) {
                out.push_str(&format!("{v}"));
            }
        }
        out.push('\n');
    }
    out
}

fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_build_and_render() {
        let rows = vec![
            ExperimentRow::new("n=5").with("waiting_max", 12.0).with("bound", 35.0),
            ExperimentRow::new("n=9").with("waiting_max", 55.5),
        ];
        let table = render_markdown_table("Waiting time", &rows);
        assert!(table.contains("### Waiting time"));
        assert!(table.contains("| n=5 | 35 | 12 |"));
        assert!(table.contains("| n=9 | - | 55.50 |"));
    }

    #[test]
    fn jsonl_round_trips() {
        let rows = vec![ExperimentRow::new("x").with("m", 1.5)];
        let line = render_jsonl(&rows);
        let parsed: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(parsed["label"], "x");
        assert_eq!(parsed["metrics"]["m"], 1.5);
    }

    #[test]
    fn csv_renders_header_missing_cells_and_quoting() {
        let rows = vec![
            ExperimentRow::new("chain, n=5").with("waiting_max", 12.0),
            ExperimentRow::new("star").with("waiting_max", 3.5).with("bound", 35.0),
        ];
        let csv = render_csv(&rows);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "scenario,bound,waiting_max");
        assert_eq!(lines.next().unwrap(), "\"chain, n=5\",,12");
        assert_eq!(lines.next().unwrap(), "star,35,3.5");
    }

    #[test]
    fn with_summary_expands_columns() {
        let s = Summary::of(&[1.0, 3.0]);
        let row = ExperimentRow::new("a").with_summary("conv", &s);
        assert!(row.metrics.contains_key("conv_mean"));
        assert!(row.metrics.contains_key("conv_p95"));
        assert!(row.metrics.contains_key("conv_max"));
    }

    #[test]
    fn sequential_and_parallel_trials_agree() {
        let make = || {
            (0..8u64)
                .map(|seed| {
                    Trial::new(seed, move || {
                        let mut m = BTreeMap::new();
                        m.insert("value".to_string(), (seed * seed) as f64);
                        m
                    })
                })
                .collect::<Vec<_>>()
        };
        let seq = run_trials(make());
        let par = run_trials_parallel(make(), 4);
        assert_eq!(seq, par);
        let summary = summarize(&par);
        assert_eq!(summary["value"].count, 8);
        assert_eq!(summary["value"].max, 49.0);
    }

    #[test]
    fn parallel_with_single_thread_falls_back() {
        let trials = vec![Trial::new(0, || BTreeMap::from([("x".to_string(), 1.0)]))];
        let out = run_trials_parallel(trials, 1);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn sharded_results_are_independent_of_shard_count() {
        // A trial whose output depends on its derived seed, so any seed/shard mixup shows.
        let trial =
            |index: u64, seed: u64| (index, seed.wrapping_mul(0x2545F4914F6CDD1D).rotate_left(17));
        let sequential = run_sharded(17, 99, 1, trial);
        for shards in [2, 3, 8, 64] {
            assert_eq!(run_sharded(17, 99, shards, trial), sequential, "{shards} shards");
        }
        // Results come back in index order.
        for (i, (index, _)) in sequential.iter().enumerate() {
            assert_eq!(*index, i as u64);
        }
    }

    #[test]
    fn worker_local_state_does_not_leak_into_results() {
        // A worker state that counts the trials it served: results must depend only on the
        // (index, seed) pair, never on the worker-local counter, for every shard count.
        let trial = |state: &mut u64, index: u64, seed: u64| {
            *state += 1; // reused across that worker's trials — must not affect the result
            (index, seed ^ 0xABCD)
        };
        let sequential = run_sharded_with(23, 7, 1, || 0u64, trial);
        for shards in [2, 5, 16] {
            assert_eq!(run_sharded_with(23, 7, shards, || 0u64, trial), sequential);
        }
        assert_eq!(sequential, run_sharded(23, 7, 4, |i, s| (i, s ^ 0xABCD)));
    }

    #[test]
    fn trial_seeds_are_decorrelated_and_stable() {
        let a = trial_seed(7, 0);
        let b = trial_seed(7, 1);
        let c = trial_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, trial_seed(7, 0), "pure function of (base, index)");
    }

    #[test]
    fn worker_count_resolution_is_pure_and_single_core_safe() {
        // 0 = auto: one worker per host core — and on a 1-core host that is exactly one
        // worker, never an oversubscribing floor (the behavior fixed in PR 6).
        assert_eq!(worker_count(0, 1), 1);
        assert_eq!(worker_count(0, 8), 8);
        // A defensive guard: a degenerate host report still yields a usable count.
        assert_eq!(worker_count(0, 0), 1);
        // Explicit requests are taken literally, even above the core count.
        assert_eq!(worker_count(3, 1), 3);
        assert_eq!(worker_count(1, 64), 1);
        // The host-bound wrappers agree with the pure rule.
        assert_eq!(auto_workers(0), host_cores());
        assert_eq!(auto_workers(5), 5);
        assert_eq!(auto_shards(), host_cores());
    }

    #[test]
    fn sharded_handles_zero_and_one_trials() {
        let none: Vec<u64> = run_sharded(0, 1, 4, |_, seed| seed);
        assert!(none.is_empty());
        let one: Vec<u64> = run_sharded(1, 1, 4, |_, seed| seed);
        assert_eq!(one, vec![trial_seed(1, 0)]);
    }
}
