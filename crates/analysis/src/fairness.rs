//! Fairness and starvation measurements.

use serde::Serialize;
use treenet::{Event, NodeId, Trace};

/// Per-execution fairness report.
#[derive(Clone, Debug, Default, Serialize)]
pub struct FairnessReport {
    /// Critical-section entries per node.
    pub entries_per_node: Vec<u64>,
    /// Requests issued per node.
    pub requests_per_node: Vec<u64>,
    /// Nodes that issued at least one request but never entered the critical section.
    pub starved: Vec<NodeId>,
    /// Jain's fairness index over the entry counts of the nodes that requested at least once
    /// (1.0 = perfectly fair, → 1/n as service concentrates on one node).
    pub jain_index: f64,
}

/// Jain's fairness index of a sample (1.0 for a uniform sample, 1/n for a single non-zero).
pub fn jains_index(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
    if sumsq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sumsq)
}

impl FairnessReport {
    /// Builds a report from an execution trace over `n` nodes.
    pub fn from_trace(trace: &Trace, n: usize) -> Self {
        let mut entries = vec![0u64; n];
        let mut requests = vec![0u64; n];
        for ev in trace.events() {
            if ev.node >= n {
                continue;
            }
            match ev.event {
                Event::EnterCs { .. } => entries[ev.node] += 1,
                Event::RequestIssued { .. } => requests[ev.node] += 1,
                _ => {}
            }
        }
        let starved: Vec<NodeId> =
            (0..n).filter(|&v| requests[v] > 0 && entries[v] == 0).collect();
        let requesters: Vec<f64> =
            (0..n).filter(|&v| requests[v] > 0).map(|v| entries[v] as f64).collect();
        FairnessReport {
            jain_index: jains_index(&requesters),
            entries_per_node: entries,
            requests_per_node: requests,
            starved,
        }
    }

    /// True when no requester was starved.
    pub fn starvation_free(&self) -> bool {
        self.starved.is_empty()
    }

    /// Total critical-section entries.
    pub fn total_entries(&self) -> u64 {
        self.entries_per_node.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        let mut t = Trace::new();
        for (at, node) in [(1u64, 0usize), (2, 1), (3, 2)] {
            t.push(at, node, Event::RequestIssued { units: 1 });
        }
        t.push(5, 0, Event::EnterCs { units: 1 });
        t.push(6, 0, Event::ExitCs { units: 1 });
        t.push(7, 1, Event::EnterCs { units: 1 });
        t.push(9, 0, Event::RequestIssued { units: 1 });
        t.push(10, 0, Event::EnterCs { units: 1 });
        t
    }

    #[test]
    fn report_counts_and_detects_starvation() {
        let r = FairnessReport::from_trace(&trace(), 4);
        assert_eq!(r.entries_per_node, vec![2, 1, 0, 0]);
        assert_eq!(r.requests_per_node, vec![2, 1, 1, 0]);
        assert_eq!(r.starved, vec![2]);
        assert!(!r.starvation_free());
        assert_eq!(r.total_entries(), 3);
        // Node 3 never requested, so it does not enter the Jain index; requesters got 2,1,0.
        assert!((r.jain_index - jains_index(&[2.0, 1.0, 0.0])).abs() < 1e-12);
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jains_index(&[]), 1.0);
        assert_eq!(jains_index(&[0.0, 0.0]), 1.0);
        assert!((jains_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((jains_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        let uneven = jains_index(&[10.0, 1.0]);
        assert!(uneven < 1.0 && uneven > 0.5);
    }

    #[test]
    fn out_of_range_nodes_are_ignored() {
        let mut t = Trace::new();
        t.push(1, 99, Event::EnterCs { units: 1 });
        let r = FairnessReport::from_trace(&t, 2);
        assert_eq!(r.total_entries(), 0);
        assert!(r.starvation_free());
    }
}
