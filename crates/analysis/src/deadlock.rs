//! Deadlock detection for the non-fault-tolerant protocol rungs.
//!
//! The naive protocol of Figure 2 deadlocks: every resource token ends up reserved by a
//! requester that still needs more, no message is in flight, and no process can ever act
//! again.  [`detect_deadlock`] runs a network until it is quiescent and classifies the
//! outcome.

use klex_core::{KlInspect, Message};
use serde::Serialize;
use topology::Topology;
use treenet::{run_until_quiescent, Network, NodeId, Process, RunOutcome, Scheduler};

/// Outcome of a deadlock-detection run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum DeadlockVerdict {
    /// The network became quiescent while some processes still had unsatisfied requests —
    /// a deadlock in the sense of Figure 2.
    Deadlocked {
        /// Logical time at which quiescence was detected.
        at: u64,
        /// The processes whose requests will never be satisfied.
        blocked: Vec<NodeId>,
    },
    /// The network became quiescent with no outstanding request (everything was served and
    /// the workload stopped).
    QuiescentIdle {
        /// Logical time at which quiescence was detected.
        at: u64,
    },
    /// The network never became quiescent within the step budget (progress was still being
    /// made — e.g. the pusher keeps tokens moving).
    StillLive,
}

impl DeadlockVerdict {
    /// True for the deadlocked outcome.
    pub fn is_deadlock(&self) -> bool {
        matches!(self, DeadlockVerdict::Deadlocked { .. })
    }
}

/// Runs `net` until quiescence (or `max_steps`) and classifies the result.
pub fn detect_deadlock<P, T>(
    net: &mut Network<P, T>,
    scheduler: &mut impl Scheduler,
    max_steps: u64,
) -> DeadlockVerdict
where
    P: Process<Msg = Message> + KlInspect,
    T: Topology,
{
    match run_until_quiescent(net, scheduler, max_steps, 4 * net.len() as u64) {
        RunOutcome::Quiescent(at) => {
            let blocked: Vec<NodeId> = net
                .nodes()
                .enumerate()
                .filter(|(_, n)| n.is_unsatisfied_requester())
                .map(|(id, _)| id)
                .collect();
            if blocked.is_empty() {
                DeadlockVerdict::QuiescentIdle { at }
            } else {
                DeadlockVerdict::Deadlocked { at, blocked }
            }
        }
        _ => DeadlockVerdict::StillLive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klex_core::{naive, pusher, KlConfig};
    use treenet::app::{AppDriver, BoxedDriver, Idle};
    use treenet::RoundRobin;

    struct Fixed(usize, u64);
    impl AppDriver for Fixed {
        fn next_request(&mut self, _n: NodeId, _t: u64) -> Option<usize> {
            Some(self.0)
        }
        fn release_cs(&mut self, _n: NodeId, now: u64, e: u64) -> bool {
            now - e >= self.1
        }
    }

    /// The Figure-2 workload: a=3, b=c=d=2 on the Figure-1 tree with l=5.
    fn figure2_drivers(id: NodeId) -> BoxedDriver {
        match id {
            1 => Box::new(Fixed(3, 5)) as BoxedDriver,
            2..=4 => Box::new(Fixed(2, 5)) as BoxedDriver,
            _ => Box::new(Idle) as BoxedDriver,
        }
    }

    #[test]
    fn naive_protocol_deadlocks_in_figure2_configuration() {
        // Start from the exact right-hand configuration of Figure 2: all five tokens
        // reserved by the four requesters, none of which can be satisfied.
        let mut net = crate::scenarios::figure2_deadlock_config();
        let mut sched = RoundRobin::new();
        let verdict = detect_deadlock(&mut net, &mut sched, 500_000);
        match verdict {
            DeadlockVerdict::Deadlocked { ref blocked, .. } => {
                assert_eq!(blocked, &vec![1, 2, 3, 4], "all four requesters stay blocked");
            }
            other => panic!("expected a deadlock, got {other:?}"),
        }
    }

    #[test]
    fn pusher_resolves_the_constructed_figure2_deadlock() {
        // From the same configuration (plus the pusher in flight), the pusher-augmented
        // protocol keeps making progress: it never quiesces with blocked requesters.
        let mut net = crate::scenarios::figure2_deadlock_config_with_pusher();
        let mut sched = RoundRobin::new();
        let verdict = detect_deadlock(&mut net, &mut sched, 100_000);
        assert!(!verdict.is_deadlock(), "got {verdict:?}");
    }

    #[test]
    fn pusher_protocol_stays_live_on_figure2_workload() {
        let tree = topology::builders::figure1_tree();
        let cfg = KlConfig::new(3, 5, 8);
        let mut net = pusher::network(tree, cfg, figure2_drivers);
        let mut sched = RoundRobin::new();
        let verdict = detect_deadlock(&mut net, &mut sched, 200_000);
        assert_eq!(verdict, DeadlockVerdict::StillLive);
        assert!(!verdict.is_deadlock());
    }

    #[test]
    fn idle_naive_network_is_quiescent_only_if_tokens_parked() {
        // With nobody requesting, the naive tokens keep circulating forever: still live.
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(1, 1, 3);
        let mut net = naive::network(tree, cfg, |_| Box::new(Idle) as BoxedDriver);
        let mut sched = RoundRobin::new();
        let verdict = detect_deadlock(&mut net, &mut sched, 50_000);
        assert_eq!(verdict, DeadlockVerdict::StillLive);
    }

    #[test]
    fn satisfied_hoarder_parks_the_network_without_deadlock() {
        // One node requests exactly the whole pool and never releases: the network becomes
        // quiescent but nobody is left waiting, so it is not classified as a deadlock.
        struct Pin(usize, bool);
        impl AppDriver for Pin {
            fn next_request(&mut self, _n: NodeId, _t: u64) -> Option<usize> {
                if self.1 {
                    None
                } else {
                    self.1 = true;
                    Some(self.0)
                }
            }
            fn release_cs(&mut self, _n: NodeId, _now: u64, _e: u64) -> bool {
                false
            }
        }
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(2, 2, 3);
        let mut net = naive::network(tree, cfg, |id| {
            if id == 1 {
                Box::new(Pin(2, false)) as BoxedDriver
            } else {
                Box::new(Idle) as BoxedDriver
            }
        });
        let mut sched = RoundRobin::new();
        let verdict = detect_deadlock(&mut net, &mut sched, 200_000);
        assert!(matches!(verdict, DeadlockVerdict::QuiescentIdle { .. }), "got {verdict:?}");
    }
}
