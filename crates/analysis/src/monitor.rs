//! Streaming temporal monitors: one observer abstraction shared by simulator traces and
//! checker lassos.
//!
//! The paper's specification has temporal content that per-configuration predicates cannot
//! express — *every requesting process eventually enters its critical section*, *the system
//! eventually converges*.  A [`TemporalMonitor`] observes a stream of [`MonitorEvent`]s and
//! renders a [`Verdict`] once the stream [ends](StreamEnd).  The same monitor runs over
//!
//! * a **simulator trace** ([`feed_trace`]): the stream is the application events of one
//!   finite execution, ended with [`StreamEnd::Finite`] — a liveness monitor can never
//!   return `Violated` from a finite prefix alone, only `Inconclusive`;
//! * a **checker lasso** ([`feed_lasso`]): the stream is the stem followed by one cycle
//!   traversal of a [`checker::LassoWitness`], ended with [`StreamEnd::Lasso`] — because
//!   the cycle repeats forever, a request that is pending when the cycle starts and is
//!   never served inside it *is* a genuine liveness violation.
//!
//! This shared-verdict design is the cross-engine oracle of `klex fuzz`: the checker's
//! fair-cycle pass and the monitor replaying its lasso must agree, and a simulator-observed
//! safety violation must be reproduced by the exhaustive exploration.
//!
//! | monitor | paper property | violation |
//! |---|---|---|
//! | [`RequestEventuallyCS`] | (k, ℓ)-liveness (Specification 1, liveness clause) | a request pending forever (lasso) |
//! | [`AtMostKInCS`] | safety: no process uses more than `k` units | a critical section entered with more than `k` units |
//! | [`LAvailability`] | safety: at most `ℓ` units in use at once | concurrent critical sections exceeding `ℓ` units |
//! | [`ConvergenceWitnessed`] | Theorem 1 (convergence) | never violated; `Satisfied` once sustained legitimacy is observed |

use serde::Serialize;
use std::collections::BTreeMap;
use treenet::{CsState, NodeId, Trace};

/// The monitor names accepted by [`monitor_for`] and
/// [`crate::scenario::ScenarioSpec::properties`].
pub const MONITOR_NAMES: [&str; 4] =
    ["request-eventually-cs", "at-most-k-in-cs", "l-availability", "convergence-witnessed"];

/// The outcome of one monitored observation stream.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum Verdict {
    /// The property held on (and, for a lasso, beyond) the whole stream.
    Satisfied,
    /// The finite stream neither proved nor refuted the property.
    Inconclusive,
    /// The property is violated; the payload says how.
    Violated(String),
}

impl Verdict {
    /// True when the verdict is a violation.
    pub fn is_violated(&self) -> bool {
        matches!(self, Verdict::Violated(_))
    }

    /// A numeric rendering for metric tables: `1` satisfied, `0` inconclusive, `-1`
    /// violated.
    pub fn score(&self) -> f64 {
        match self {
            Verdict::Satisfied => 1.0,
            Verdict::Inconclusive => 0.0,
            Verdict::Violated(_) => -1.0,
        }
    }
}

/// One observation: an application-level happening at logical time `at`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MonitorEvent {
    /// `node` switched from `Out` to `Req`, asking for `units` resource units.
    Request {
        /// Logical time.
        at: u64,
        /// The requesting process.
        node: NodeId,
        /// Units requested.
        units: usize,
    },
    /// `node` entered its critical section holding `units` units.
    Enter {
        /// Logical time.
        at: u64,
        /// The entering process.
        node: NodeId,
        /// Units held.
        units: usize,
    },
    /// `node` left its critical section, releasing `units` units.
    Exit {
        /// Logical time.
        at: u64,
        /// The exiting process.
        node: NodeId,
        /// Units released.
        units: usize,
    },
    /// The global configuration was observed legitimate (sustained) at time `at`.
    Legitimate {
        /// Logical time.
        at: u64,
    },
}

impl MonitorEvent {
    /// The logical time of the observation.
    pub fn at(&self) -> u64 {
        match self {
            MonitorEvent::Request { at, .. }
            | MonitorEvent::Enter { at, .. }
            | MonitorEvent::Exit { at, .. }
            | MonitorEvent::Legitimate { at } => *at,
        }
    }
}

/// How an observation stream ends — the information that separates "saw nothing wrong yet"
/// from "nothing wrong can ever happen".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamEnd {
    /// A finite execution stopped at time `at`; liveness obligations still pending are
    /// *inconclusive*, not violated.
    Finite {
        /// Logical time of the last observation point.
        at: u64,
    },
    /// The suffix of the stream from time `cycle_started_at` onward repeats forever (a
    /// checker lasso); liveness obligations opened at or before the cycle start and not
    /// discharged within it are violated.
    Lasso {
        /// Logical time at which the repeating cycle began.
        cycle_started_at: u64,
    },
}

/// A streaming observer of one temporal property; see the [module docs](self).
pub trait TemporalMonitor {
    /// The monitor's registry name (one of [`MONITOR_NAMES`]).
    fn name(&self) -> &'static str;

    /// The paper property the monitor certifies, for reports and docs.
    fn paper_property(&self) -> &'static str;

    /// Feeds one observation.  Events arrive in non-decreasing time order.
    fn observe(&mut self, event: &MonitorEvent);

    /// Closes the stream; after this the verdict is final.
    fn finish(&mut self, end: StreamEnd);

    /// The verdict so far (final once [`TemporalMonitor::finish`] ran).
    fn verdict(&self) -> Verdict;
}

/// The final verdict of one monitor over one stream, with its identity attached.
#[derive(Clone, Debug, Serialize)]
pub struct MonitorReport {
    /// Monitor name (one of [`MONITOR_NAMES`]).
    pub name: String,
    /// The paper property it certifies.
    pub property: String,
    /// The verdict.
    pub verdict: Verdict,
}

/// Builds the monitor registered under `name` for a `k`-out-of-`l` scenario; `None` for
/// unknown names (see [`MONITOR_NAMES`]).
pub fn monitor_for(name: &str, k: usize, l: usize) -> Option<Box<dyn TemporalMonitor>> {
    Some(match name {
        "request-eventually-cs" => Box::new(RequestEventuallyCS::new()),
        "at-most-k-in-cs" => Box::new(AtMostKInCS::new(k)),
        "l-availability" => Box::new(LAvailability::new(l)),
        "convergence-witnessed" => Box::new(ConvergenceWitnessed::new()),
        _ => return None,
    })
}

/// (k, ℓ)-liveness, liveness clause: every request is eventually granted.
#[derive(Clone, Debug, Default)]
pub struct RequestEventuallyCS {
    /// Open obligations: requesting node → time the request was issued.
    pending: BTreeMap<NodeId, u64>,
    served: u64,
    verdict: Option<Verdict>,
}

impl RequestEventuallyCS {
    /// A fresh monitor with no open obligations.
    pub fn new() -> Self {
        RequestEventuallyCS::default()
    }
}

impl TemporalMonitor for RequestEventuallyCS {
    fn name(&self) -> &'static str {
        "request-eventually-cs"
    }

    fn paper_property(&self) -> &'static str {
        "(k,l)-liveness: every requesting process eventually enters its critical section"
    }

    fn observe(&mut self, event: &MonitorEvent) {
        match event {
            MonitorEvent::Request { at, node, .. } => {
                self.pending.entry(*node).or_insert(*at);
            }
            MonitorEvent::Enter { node, .. } => {
                self.pending.remove(node);
                self.served += 1;
            }
            _ => {}
        }
    }

    fn finish(&mut self, end: StreamEnd) {
        self.verdict = Some(match end {
            StreamEnd::Finite { .. } => {
                if self.pending.is_empty() {
                    Verdict::Satisfied
                } else {
                    Verdict::Inconclusive
                }
            }
            StreamEnd::Lasso { cycle_started_at } => {
                let starved: Vec<NodeId> = self
                    .pending
                    .iter()
                    .filter(|&(_, &since)| since <= cycle_started_at)
                    .map(|(&node, _)| node)
                    .collect();
                if starved.is_empty() {
                    Verdict::Satisfied
                } else {
                    Verdict::Violated(format!(
                        "process(es) {starved:?} request forever without entering the \
                         critical section (pending before the cycle, never served inside it)"
                    ))
                }
            }
        });
    }

    fn verdict(&self) -> Verdict {
        self.verdict.clone().unwrap_or(Verdict::Inconclusive)
    }
}

/// Safety, per-process clause: no critical section ever holds more than `k` units.
#[derive(Clone, Debug)]
pub struct AtMostKInCS {
    k: usize,
    violation: Option<String>,
    finished: bool,
}

impl AtMostKInCS {
    /// A monitor for the per-process bound `k`.
    pub fn new(k: usize) -> Self {
        AtMostKInCS { k, violation: None, finished: false }
    }
}

impl TemporalMonitor for AtMostKInCS {
    fn name(&self) -> &'static str {
        "at-most-k-in-cs"
    }

    fn paper_property(&self) -> &'static str {
        "safety: no process holds more than k resource units in its critical section"
    }

    fn observe(&mut self, event: &MonitorEvent) {
        if let MonitorEvent::Enter { at, node, units } = event {
            if *units > self.k && self.violation.is_none() {
                self.violation = Some(format!(
                    "process {node} entered its critical section with {units} units at time \
                     {at} but k = {}",
                    self.k
                ));
            }
        }
    }

    fn finish(&mut self, _end: StreamEnd) {
        self.finished = true;
    }

    fn verdict(&self) -> Verdict {
        match (&self.violation, self.finished) {
            (Some(detail), _) => Verdict::Violated(detail.clone()),
            (None, true) => Verdict::Satisfied,
            (None, false) => Verdict::Inconclusive,
        }
    }
}

/// Safety, global clause: at most `ℓ` resource units in use at any instant.
#[derive(Clone, Debug)]
pub struct LAvailability {
    l: usize,
    /// Units currently held per in-CS process (exit events then release the right amount
    /// even if their `units` payload disagrees).
    held: BTreeMap<NodeId, usize>,
    in_use: usize,
    violation: Option<String>,
    finished: bool,
}

impl LAvailability {
    /// A monitor for the global bound `ℓ`.
    pub fn new(l: usize) -> Self {
        LAvailability { l, held: BTreeMap::new(), in_use: 0, violation: None, finished: false }
    }
}

impl TemporalMonitor for LAvailability {
    fn name(&self) -> &'static str {
        "l-availability"
    }

    fn paper_property(&self) -> &'static str {
        "safety: at most l resource units are in use at any instant"
    }

    fn observe(&mut self, event: &MonitorEvent) {
        match event {
            MonitorEvent::Enter { at, node, units } => {
                let previous = self.held.insert(*node, *units).unwrap_or(0);
                self.in_use = self.in_use - previous + units;
                if self.in_use > self.l && self.violation.is_none() {
                    self.violation = Some(format!(
                        "{} units in use at time {at} (process {node} entering with {units}) \
                         but l = {}",
                        self.in_use, self.l
                    ));
                }
            }
            MonitorEvent::Exit { node, .. } => {
                if let Some(released) = self.held.remove(node) {
                    self.in_use -= released;
                }
            }
            _ => {}
        }
    }

    fn finish(&mut self, _end: StreamEnd) {
        self.finished = true;
    }

    fn verdict(&self) -> Verdict {
        match (&self.violation, self.finished) {
            (Some(detail), _) => Verdict::Violated(detail.clone()),
            (None, true) => Verdict::Satisfied,
            (None, false) => Verdict::Inconclusive,
        }
    }
}

/// Theorem 1 witness: the execution was observed to reach (sustained) legitimacy.  Never
/// violated — absence of convergence within a finite run is inconclusive by nature.
#[derive(Clone, Debug, Default)]
pub struct ConvergenceWitnessed {
    witnessed_at: Option<u64>,
}

impl ConvergenceWitnessed {
    /// A fresh monitor.
    pub fn new() -> Self {
        ConvergenceWitnessed::default()
    }
}

impl TemporalMonitor for ConvergenceWitnessed {
    fn name(&self) -> &'static str {
        "convergence-witnessed"
    }

    fn paper_property(&self) -> &'static str {
        "Theorem 1 (convergence): the execution reaches a legitimate configuration"
    }

    fn observe(&mut self, event: &MonitorEvent) {
        if let MonitorEvent::Legitimate { at } = event {
            self.witnessed_at.get_or_insert(*at);
        }
    }

    fn finish(&mut self, _end: StreamEnd) {}

    fn verdict(&self) -> Verdict {
        if self.witnessed_at.is_some() {
            Verdict::Satisfied
        } else {
            Verdict::Inconclusive
        }
    }
}

/// Feeds every application event of a simulator [`Trace`] to every monitor, in trace order.
/// Does **not** close the stream — call [`finish_all`] once any extra events (e.g.
/// [`MonitorEvent::Legitimate`]) have been delivered.
pub fn feed_trace(monitors: &mut [Box<dyn TemporalMonitor>], trace: &Trace) {
    for traced in trace.events() {
        let event = match traced.event {
            treenet::Event::RequestIssued { units } => {
                MonitorEvent::Request { at: traced.at, node: traced.node, units }
            }
            treenet::Event::EnterCs { units } => {
                MonitorEvent::Enter { at: traced.at, node: traced.node, units }
            }
            treenet::Event::ExitCs { units } => {
                MonitorEvent::Exit { at: traced.at, node: traced.node, units }
            }
            treenet::Event::Note(_) => continue,
        };
        observe_all(monitors, &event);
    }
}

/// Delivers one event to every monitor.
pub fn observe_all(monitors: &mut [Box<dyn TemporalMonitor>], event: &MonitorEvent) {
    for monitor in monitors.iter_mut() {
        monitor.observe(event);
    }
}

/// Closes the stream for every monitor and collects their reports.
pub fn finish_all(monitors: &mut [Box<dyn TemporalMonitor>], end: StreamEnd) -> Vec<MonitorReport> {
    monitors
        .iter_mut()
        .map(|monitor| {
            monitor.finish(end);
            MonitorReport {
                name: monitor.name().to_string(),
                property: monitor.paper_property().to_string(),
                verdict: monitor.verdict(),
            }
        })
        .collect()
}

/// Replays a checker lasso through the monitors: the stem configurations, then one cycle
/// traversal, then [`StreamEnd::Lasso`].  Events are synthesized from configuration diffs
/// (request issued, critical section entered/left) plus the recorded per-transition
/// critical-section entries (which also capture *instantaneous* critical sections that are
/// invisible as configuration states).  Logical time is the position in the lasso.
pub fn feed_lasso(
    monitors: &mut [Box<dyn TemporalMonitor>],
    witness: &checker::LassoWitness,
) -> Vec<MonitorReport> {
    // Obligations already open in the initial configuration (declarative-init scenarios can
    // start with requests or occupied critical sections).
    let first = witness
        .stem_configs
        .first()
        .or(witness.cycle_configs.first())
        .expect("a lasso has at least one configuration");
    for (node, state) in first.nodes.iter().enumerate() {
        match state.cs {
            CsState::Req => {
                observe_all(monitors, &MonitorEvent::Request { at: 0, node, units: state.need })
            }
            CsState::In => {
                observe_all(monitors, &MonitorEvent::Enter { at: 0, node, units: state.need })
            }
            CsState::Out => {}
        }
    }

    // The walk: stem configs (ending at the cycle entry), then around the cycle and back to
    // the entry.  Each consecutive pair is one transition.
    let mut time = 0u64;
    let cycle_started_at;
    {
        let stem_pairs = witness.stem_configs.windows(2).zip(&witness.stem_cs);
        for (pair, cs_entries) in stem_pairs {
            time += 1;
            emit_step(monitors, &pair[0], &pair[1], cs_entries, time);
        }
        cycle_started_at = time;
        let len = witness.cycle_configs.len();
        for i in 0..len {
            let here = &witness.cycle_configs[i];
            let next = &witness.cycle_configs[(i + 1) % len];
            time += 1;
            emit_step(monitors, here, next, &witness.cycle_cs[i], time);
        }
    }
    finish_all(monitors, StreamEnd::Lasso { cycle_started_at })
}

/// Emits the events of one transition `before → after` at time `at`.
fn emit_step(
    monitors: &mut [Box<dyn TemporalMonitor>],
    before: &checker::Configuration,
    after: &checker::Configuration,
    cs_entries: &[NodeId],
    at: u64,
) {
    for (node, (b, a)) in before.nodes.iter().zip(&after.nodes).enumerate() {
        if b.cs != CsState::Req && a.cs == CsState::Req {
            observe_all(monitors, &MonitorEvent::Request { at, node, units: a.need });
        }
        if b.cs != CsState::In && a.cs == CsState::In {
            observe_all(monitors, &MonitorEvent::Enter { at, node, units: a.need });
        }
        if b.cs == CsState::In && a.cs != CsState::In {
            observe_all(monitors, &MonitorEvent::Exit { at, node, units: b.need });
        }
        // Instantaneous critical sections never show as an `In` configuration: the recorded
        // entry plus the absence of an `In` state after the step means enter-and-exit
        // within this one transition.
        if cs_entries.contains(&node) && a.cs != CsState::In && b.cs != CsState::In {
            observe_all(monitors, &MonitorEvent::Enter { at, node, units: b.need });
            observe_all(monitors, &MonitorEvent::Exit { at, node, units: b.need });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(names: &[&str], k: usize, l: usize) -> Vec<Box<dyn TemporalMonitor>> {
        names.iter().map(|n| monitor_for(n, k, l).expect(n)).collect()
    }

    #[test]
    fn request_eventually_cs_is_inconclusive_on_finite_pending_and_violated_on_lasso() {
        let mut m = RequestEventuallyCS::new();
        m.observe(&MonitorEvent::Request { at: 3, node: 1, units: 2 });
        let mut finite = m.clone();
        finite.finish(StreamEnd::Finite { at: 100 });
        assert_eq!(finite.verdict(), Verdict::Inconclusive);

        let mut lasso = m.clone();
        lasso.finish(StreamEnd::Lasso { cycle_started_at: 50 });
        assert!(lasso.verdict().is_violated());

        // A request issued only *after* the cycle started is not a proven starvation: the
        // repeating suffix may serve it in the next iteration, before its issue point.
        let mut late = RequestEventuallyCS::new();
        late.observe(&MonitorEvent::Request { at: 60, node: 1, units: 2 });
        late.finish(StreamEnd::Lasso { cycle_started_at: 50 });
        assert!(!late.verdict().is_violated());
    }

    #[test]
    fn request_eventually_cs_satisfied_when_all_served() {
        let mut m = RequestEventuallyCS::new();
        m.observe(&MonitorEvent::Request { at: 1, node: 0, units: 1 });
        m.observe(&MonitorEvent::Enter { at: 5, node: 0, units: 1 });
        m.finish(StreamEnd::Finite { at: 10 });
        assert_eq!(m.verdict(), Verdict::Satisfied);
    }

    #[test]
    fn at_most_k_flags_oversized_critical_sections() {
        let mut m = AtMostKInCS::new(2);
        m.observe(&MonitorEvent::Enter { at: 1, node: 0, units: 2 });
        m.observe(&MonitorEvent::Exit { at: 2, node: 0, units: 2 });
        m.finish(StreamEnd::Finite { at: 3 });
        assert_eq!(m.verdict(), Verdict::Satisfied);

        let mut m = AtMostKInCS::new(2);
        m.observe(&MonitorEvent::Enter { at: 1, node: 0, units: 3 });
        assert!(m.verdict().is_violated());
    }

    #[test]
    fn l_availability_tracks_concurrent_units() {
        let mut m = LAvailability::new(3);
        m.observe(&MonitorEvent::Enter { at: 1, node: 0, units: 2 });
        m.observe(&MonitorEvent::Enter { at: 2, node: 1, units: 1 });
        m.observe(&MonitorEvent::Exit { at: 3, node: 0, units: 2 });
        m.observe(&MonitorEvent::Enter { at: 4, node: 2, units: 2 });
        m.finish(StreamEnd::Finite { at: 5 });
        assert_eq!(m.verdict(), Verdict::Satisfied);

        let mut m = LAvailability::new(3);
        m.observe(&MonitorEvent::Enter { at: 1, node: 0, units: 2 });
        m.observe(&MonitorEvent::Enter { at: 2, node: 1, units: 2 });
        assert!(m.verdict().is_violated());
    }

    #[test]
    fn convergence_witnessed_needs_a_legitimacy_observation() {
        let mut m = ConvergenceWitnessed::new();
        m.finish(StreamEnd::Finite { at: 10 });
        assert_eq!(m.verdict(), Verdict::Inconclusive);
        let mut m = ConvergenceWitnessed::new();
        m.observe(&MonitorEvent::Legitimate { at: 7 });
        m.finish(StreamEnd::Finite { at: 10 });
        assert_eq!(m.verdict(), Verdict::Satisfied);
    }

    #[test]
    fn feed_trace_maps_application_events() {
        let mut trace = Trace::new();
        trace.push(1, 0, treenet::Event::RequestIssued { units: 2 });
        trace.push(4, 0, treenet::Event::EnterCs { units: 2 });
        trace.push(6, 0, treenet::Event::ExitCs { units: 2 });
        let mut monitors =
            boxed(&["request-eventually-cs", "at-most-k-in-cs", "l-availability"], 2, 3);
        feed_trace(&mut monitors, &trace);
        let reports = finish_all(&mut monitors, StreamEnd::Finite { at: 10 });
        assert!(reports.iter().all(|r| r.verdict == Verdict::Satisfied), "{reports:?}");
    }

    #[test]
    fn monitor_registry_knows_exactly_the_published_names() {
        for name in MONITOR_NAMES {
            assert!(monitor_for(name, 1, 2).is_some(), "{name}");
        }
        assert!(monitor_for("no-such-monitor", 1, 2).is_none());
    }

    #[test]
    fn lasso_replay_flags_the_starved_victim() {
        // Explore the Figure-3 pusher livelock and replay its lasso through the monitors:
        // the monitor verdict must agree with the checker's fair-cycle verdict.
        let mut net = klex_core::pusher::network(
            topology::builders::figure3_tree(),
            klex_core::KlConfig::new(2, 3, 3),
            checker::drivers::from_needs_holding(&[1, 2, 1]),
        );
        let report = checker::Explorer::new(&mut net)
            .with_limits(checker::Limits { max_configurations: 600_000, max_depth: usize::MAX })
            .check_liveness(true)
            .run();
        assert!(!report.live());
        let witness = report.liveness.iter().find(|w| w.victim == 1).expect("process a starves");
        let mut monitors = boxed(&MONITOR_NAMES, 2, 3);
        let reports = feed_lasso(&mut monitors, witness);
        let liveness = reports.iter().find(|r| r.name == "request-eventually-cs").unwrap();
        assert!(
            liveness.verdict.is_violated(),
            "the monitor must reproduce the checker's liveness verdict: {reports:?}"
        );
        // Safety still holds along the livelock lasso.
        for safety in ["at-most-k-in-cs", "l-availability"] {
            let r = reports.iter().find(|r| r.name == safety).unwrap();
            assert!(!r.verdict.is_violated(), "{safety} must hold along the lasso");
        }
    }
}
