//! Structural coverage signatures for the differential fuzzer.
//!
//! A [`CoverageSignature`] compresses one explored scenario — its
//! [`checker::ExplorationReport`] plus the simulator's monitor verdicts — into a small,
//! deterministic, engine-independent fingerprint of the *shape* of the behaviour it
//! exercised: how the BFS frontier grew, how the state graph decomposes into strongly
//! connected components, how full channels got, and which verdict combination the property
//! machinery produced.  Two scenarios with the same signature stress the checkers the same
//! way; a scenario with a *new* signature reached state-graph structure no corpus entry
//! reaches, which is what the coverage-guided campaign in `bench::fuzz` optimizes for.
//!
//! Every numeric feature is **bucketed** (log₂ classes, clamped raw values, quarter
//! positions) so the signature space stays small enough that a campaign saturates
//! meaningfully instead of treating every state count as novel.  The signature is a pure
//! function of its inputs: reports are engine-independent by the parity contract, and the
//! monitor verdicts come from the (seeded, deterministic) simulator run — so identical
//! specs always produce identical signatures, which makes corpus keys stable across
//! campaigns, shards and hosts.

use crate::monitor::{MonitorReport, Verdict, MONITOR_NAMES};
use checker::ExplorationReport;

/// Shape class of the per-level frontier-size sequence of a BFS exploration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FrontierShape {
    /// Zero or one level: nothing to classify.
    Point,
    /// Every level has the same size.
    Flat,
    /// Sizes never shrink (and grow at least once).
    Widening,
    /// Sizes never grow (and shrink at least once).
    Narrowing,
    /// One rise followed by one fall — the classic reachable-set bulge.
    Unimodal,
    /// Multiple direction changes.
    Jagged,
}

impl FrontierShape {
    /// Classifies a frontier-size sequence.
    pub fn classify(sizes: &[usize]) -> FrontierShape {
        if sizes.len() <= 1 {
            return FrontierShape::Point;
        }
        let mut rose = false;
        let mut fell = false;
        let mut switches = 0u32;
        let mut last: Option<bool> = None; // Some(true) = rising, Some(false) = falling
        for pair in sizes.windows(2) {
            let dir = match pair[1].cmp(&pair[0]) {
                std::cmp::Ordering::Greater => Some(true),
                std::cmp::Ordering::Less => Some(false),
                std::cmp::Ordering::Equal => None,
            };
            let Some(dir) = dir else { continue };
            if dir {
                rose = true;
            } else {
                fell = true;
            }
            if let Some(prev) = last {
                if prev != dir {
                    switches += 1;
                }
            }
            last = Some(dir);
        }
        match (rose, fell, switches) {
            (false, false, _) => FrontierShape::Flat,
            (true, false, _) => FrontierShape::Widening,
            (false, true, _) => FrontierShape::Narrowing,
            (true, true, 1) => FrontierShape::Unimodal,
            _ => FrontierShape::Jagged,
        }
    }

    /// One-letter code used in signature keys.
    pub fn code(self) -> char {
        match self {
            FrontierShape::Point => 'p',
            FrontierShape::Flat => 'f',
            FrontierShape::Widening => 'w',
            FrontierShape::Narrowing => 'n',
            FrontierShape::Unimodal => 'u',
            FrontierShape::Jagged => 'j',
        }
    }
}

/// The structural coverage fingerprint of one explored scenario; see the [module
/// docs](self).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CoverageSignature {
    /// log₂ class of the number of distinct configurations.
    pub states_class: u8,
    /// log₂ class of the deepest BFS level.
    pub depth_class: u8,
    /// log₂ class of the largest frontier.
    pub peak_class: u8,
    /// Shape of the frontier-size sequence.
    pub frontier_shape: FrontierShape,
    /// Quarter (0–3) of the depth range in which the largest frontier occurs.
    pub peak_quarter: u8,
    /// log₂ class of the strongly-connected-component count (0 when no graph was recorded).
    pub scc_class: u8,
    /// log₂ class of the largest SCC's size.
    pub largest_scc_class: u8,
    /// Non-trivial SCCs (size ≥ 2 or self-loop), clamped to 15.
    pub nontrivial_sccs: u8,
    /// Largest total in-flight message count over all configurations, clamped to 15.
    pub max_in_flight: u8,
    /// Largest single-channel occupancy over all configurations, clamped to 15.
    pub max_channel_occupancy: u8,
    /// The exploration hit a bound before exhausting the reachable space.
    pub truncated: bool,
    /// The checker found a safety-property violation.
    pub safety_violated: bool,
    /// The checker found a violation of some non-safety per-configuration property.
    pub other_violated: bool,
    /// The checker found a deadlocked configuration.
    pub deadlock: bool,
    /// The fair-cycle pass found a starvation lasso.
    pub lasso: bool,
    /// Per-monitor verdict combination, one code per [`MONITOR_NAMES`] entry in canonical
    /// order: `S`atisfied, `I`nconclusive, `V`iolated, `-` (monitor not run).
    pub monitor_verdicts: [char; MONITOR_NAMES.len()],
}

/// log₂ bucket of a count: 0 → 0, 1 → 1, 2–3 → 2, 4–7 → 3, …
fn log2_class(x: usize) -> u8 {
    (usize::BITS - x.leading_zeros()) as u8
}

impl CoverageSignature {
    /// Extracts the signature of one explored scenario from the checker's report and the
    /// simulator run's monitor verdicts (pass an empty slice when no monitors ran).
    pub fn of(report: &ExplorationReport, monitors: &[MonitorReport]) -> CoverageSignature {
        let peak = report.frontier_sizes.iter().copied().max().unwrap_or(0);
        let peak_quarter = if report.frontier_sizes.len() <= 1 {
            0
        } else {
            let peak_level = report
                .frontier_sizes
                .iter()
                .enumerate()
                .max_by_key(|&(level, &size)| (size, std::cmp::Reverse(level)))
                .map_or(0, |(level, _)| level);
            (peak_level * 4 / report.frontier_sizes.len()).min(3) as u8
        };
        let summary = report.graph_summary.unwrap_or_default();
        let mut monitor_verdicts = ['-'; MONITOR_NAMES.len()];
        for monitor in monitors {
            if let Some(slot) = MONITOR_NAMES.iter().position(|n| *n == monitor.name) {
                monitor_verdicts[slot] = match monitor.verdict {
                    Verdict::Satisfied => 'S',
                    Verdict::Inconclusive => 'I',
                    Verdict::Violated(_) => 'V',
                };
            }
        }
        CoverageSignature {
            states_class: log2_class(report.configurations),
            depth_class: log2_class(report.max_depth),
            peak_class: log2_class(peak),
            frontier_shape: FrontierShape::classify(&report.frontier_sizes),
            peak_quarter,
            scc_class: log2_class(summary.scc_count),
            largest_scc_class: log2_class(summary.largest_scc),
            nontrivial_sccs: summary.nontrivial_sccs.min(15) as u8,
            max_in_flight: summary.max_in_flight.min(15) as u8,
            max_channel_occupancy: summary.max_channel_occupancy.min(15) as u8,
            truncated: report.truncated,
            safety_violated: report.violations.iter().any(|v| v.property == "safety"),
            other_violated: report.violations.iter().any(|v| v.property != "safety"),
            deadlock: !report.deadlocks.is_empty(),
            lasso: !report.liveness.is_empty(),
            monitor_verdicts,
        }
    }

    /// The canonical compact rendering — the corpus key.  Stable across campaigns (it is
    /// what `tests/corpus/MANIFEST.json` records), so treat the format as persistent.
    pub fn key(&self) -> String {
        let flags: String = [
            ('t', self.truncated),
            ('s', self.safety_violated),
            ('v', self.other_violated),
            ('d', self.deadlock),
            ('l', self.lasso),
        ]
        .iter()
        .filter(|(_, set)| *set)
        .map(|(code, _)| *code)
        .collect();
        let monitors: String = self.monitor_verdicts.iter().collect();
        format!(
            "s{}d{}p{}{}q{}-c{}g{}n{}-f{}o{}-{}-{}",
            self.states_class,
            self.depth_class,
            self.peak_class,
            self.frontier_shape.code(),
            self.peak_quarter,
            self.scc_class,
            self.largest_scc_class,
            self.nontrivial_sccs,
            self.max_in_flight,
            self.max_channel_occupancy,
            if flags.is_empty() { "none".to_string() } else { flags },
            monitors,
        )
    }
}

impl std::fmt::Display for CoverageSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_classes_bucket_doublings() {
        assert_eq!(log2_class(0), 0);
        assert_eq!(log2_class(1), 1);
        assert_eq!(log2_class(2), 2);
        assert_eq!(log2_class(3), 2);
        assert_eq!(log2_class(4), 3);
        assert_eq!(log2_class(7), 3);
        assert_eq!(log2_class(8), 4);
    }

    #[test]
    fn frontier_shapes_classify() {
        assert_eq!(FrontierShape::classify(&[]), FrontierShape::Point);
        assert_eq!(FrontierShape::classify(&[5]), FrontierShape::Point);
        assert_eq!(FrontierShape::classify(&[2, 2, 2]), FrontierShape::Flat);
        assert_eq!(FrontierShape::classify(&[1, 2, 2, 4]), FrontierShape::Widening);
        assert_eq!(FrontierShape::classify(&[4, 2, 2, 1]), FrontierShape::Narrowing);
        assert_eq!(FrontierShape::classify(&[1, 3, 5, 4, 2]), FrontierShape::Unimodal);
        assert_eq!(FrontierShape::classify(&[1, 3, 2, 4, 1]), FrontierShape::Jagged);
    }

    #[test]
    fn signature_of_the_default_report_is_stable() {
        let report = ExplorationReport::default();
        let sig = CoverageSignature::of(&report, &[]);
        assert_eq!(sig, CoverageSignature::of(&report, &[]));
        assert_eq!(sig.key(), "s0d0p0pq0-c0g0n0-f0o0-none-----");
    }

    #[test]
    fn monitor_verdicts_land_in_canonical_slots() {
        let report = ExplorationReport::default();
        let monitors = vec![
            MonitorReport {
                name: "l-availability".to_string(),
                property: String::new(),
                verdict: Verdict::Violated("x".to_string()),
            },
            MonitorReport {
                name: "request-eventually-cs".to_string(),
                property: String::new(),
                verdict: Verdict::Satisfied,
            },
        ];
        let sig = CoverageSignature::of(&report, &monitors);
        assert_eq!(sig.monitor_verdicts, ['S', '-', 'V', '-']);
        assert!(sig.key().ends_with("S-V-"));
    }
}
