//! The exact scenarios of the paper's figures, shared by tests, examples and experiment
//! binaries.
//!
//! * **Figure 1 / Figure 4** — the 8-node oriented tree and its virtual ring
//!   (`topology::builders::figure1_tree`).
//! * **Figure 2** — the deadlock of the naive protocol on that tree with ℓ = 5, k = 3 and
//!   needs a=3, b=c=d=2.  [`figure2_deadlock_config`] constructs the *right-hand*
//!   configuration of the figure (all five tokens reserved, every requester short of its
//!   need), from which the naive protocol can never progress.
//! * **Figure 3** — 2-out-of-3 exclusion on the 3-node tree with needs r=1, a=2, b=1, where
//!   the pusher-only protocol can starve process `a`.

use klex_core::{naive, nonstab, pusher, ss, KlConfig};
use topology::OrientedTree;
use treenet::app::BoxedDriver;
use treenet::{CsState, Network, NodeId};
use workloads::Heterogeneous;

/// The configuration used throughout the Figure-2 scenario: 3-out-of-5 exclusion on the
/// 8-process tree of Figure 1.
pub fn figure2_config() -> KlConfig {
    KlConfig::new(3, 5, 8)
}

/// Requested units per node in the Figure-2 scenario (`r,a,b,c,d,e,f,g`).
pub fn figure2_needs() -> [usize; 8] {
    [0, 3, 2, 2, 2, 0, 0, 0]
}

/// Per-node drivers implementing the Figure-2 workload (`hold` is the CS duration).
pub fn figure2_drivers(hold: u64) -> impl FnMut(NodeId) -> BoxedDriver {
    move |node| {
        let units = figure2_needs().get(node).copied().unwrap_or(0);
        Box::new(Heterogeneous { units, hold }) as BoxedDriver
    }
}

/// The configuration of the Figure-3 scenario: 2-out-of-3 exclusion on the 3-process tree.
pub fn figure3_config() -> KlConfig {
    KlConfig::new(2, 3, 3)
}

/// Requested units per node in the Figure-3 scenario (`r, a, b`).
pub fn figure3_needs() -> [usize; 3] {
    [1, 2, 1]
}

/// Per-node drivers implementing the Figure-3 workload.
pub fn figure3_drivers(hold: u64) -> impl FnMut(NodeId) -> BoxedDriver {
    move |node| {
        let units = figure3_needs().get(node).copied().unwrap_or(0);
        Box::new(Heterogeneous { units, hold }) as BoxedDriver
    }
}

/// Applies the right-hand (deadlocked) configuration of Figure 2 to a freshly built network:
///
/// * `a` has reserved two tokens (both received from its parent channel 0) and needs 3;
/// * `b`, `c`, `d` have each reserved one token (from channel 0) and need 2;
/// * nobody else requests; no token is in flight; the root will not create new tokens.
fn apply_figure2_deadlock<N>(net: &mut Network<N, OrientedTree>, set: impl Fn(&mut N, CsState, usize, Vec<usize>))
where
    N: treenet::Process,
{
    // a = node 1: Req, Need 3, RSet {0,0}
    set(net.node_mut(1), CsState::Req, 3, vec![0, 0]);
    // b = node 2, c = node 3, d = node 4: Req, Need 2, RSet {0}
    for v in [2usize, 3, 4] {
        set(net.node_mut(v), CsState::Req, 2, vec![0]);
    }
}

/// Builds the naive-protocol network already placed in the deadlocked configuration of
/// Figure 2 (right-hand side): all five resource tokens are reserved by the four requesters,
/// none of which can ever be satisfied.
pub fn figure2_deadlock_config() -> Network<naive::NaiveNode, OrientedTree> {
    let cfg = figure2_config();
    let mut net = naive::network(topology::builders::figure1_tree(), cfg, figure2_drivers(5));
    // The root must not create fresh tokens: the five tokens of the scenario are the reserved
    // ones below.
    net.node_mut(0).bootstrapped = true;
    apply_figure2_deadlock(&mut net, |node, state, need, rset| {
        node.app.state = state;
        node.app.need = need;
        node.app.rset = rset;
    });
    net
}

/// Builds the pusher-protocol network placed in the same Figure-2 configuration (plus the
/// pusher token in flight towards `a`), to show that the pusher resolves the deadlock.
pub fn figure2_deadlock_config_with_pusher() -> Network<pusher::PusherNode, OrientedTree> {
    let cfg = figure2_config();
    let mut net = pusher::network(topology::builders::figure1_tree(), cfg, figure2_drivers(5));
    net.node_mut(0).bootstrapped = true;
    apply_figure2_deadlock(&mut net, |node, state, need, rset| {
        node.app.state = state;
        node.app.need = need;
        node.app.rset = rset;
    });
    // The pusher token is in flight from the root towards `a` (root channel 0).
    net.inject_from(0, 0, klex_core::Message::PushT);
    net
}

/// Builds the self-stabilizing network whose *initial* configuration is the Figure-2
/// deadlock: for Algorithm 1/2 this is just one more arbitrary initial configuration, and the
/// controller recovers from it.
pub fn figure2_deadlock_config_ss() -> Network<ss::SsNode, OrientedTree> {
    let cfg = figure2_config();
    let mut net = ss::network(topology::builders::figure1_tree(), cfg, figure2_drivers(5));
    apply_figure2_deadlock(&mut net, |node, state, need, rset| {
        node.app.state = state;
        node.app.need = need;
        node.app.rset = rset;
    });
    net
}

/// Builds the pusher-only (livelock-prone) network for the Figure-3 scenario.
pub fn figure3_pusher_network(hold: u64) -> Network<pusher::PusherNode, OrientedTree> {
    pusher::network(topology::builders::figure3_tree(), figure3_config(), figure3_drivers(hold))
}

/// Builds the full non-stabilizing (pusher + priority) network for the Figure-3 scenario.
pub fn figure3_nonstab_network(hold: u64) -> Network<nonstab::NonStabNode, OrientedTree> {
    nonstab::network(topology::builders::figure3_tree(), figure3_config(), figure3_drivers(hold))
}

/// Builds the self-stabilizing network for the Figure-3 scenario.
pub fn figure3_ss_network(hold: u64) -> Network<ss::SsNode, OrientedTree> {
    ss::network(topology::builders::figure3_tree(), figure3_config(), figure3_drivers(hold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use klex_core::count_tokens;

    #[test]
    fn figure2_deadlock_config_matches_the_figure() {
        let net = figure2_deadlock_config();
        let cfg = figure2_config();
        // All five tokens are reserved, none in flight.
        let census = count_tokens(&net);
        assert_eq!(census.resource, cfg.l);
        assert_eq!(net.in_flight(), 0);
        // Node states match the figure.
        assert_eq!(net.node(1).app.need, 3);
        assert_eq!(net.node(1).app.reserved(), 2);
        for v in [2, 3, 4] {
            assert_eq!(net.node(v).app.need, 2);
            assert_eq!(net.node(v).app.reserved(), 1);
        }
        assert_eq!(net.node(0).app.reserved(), 0);
    }

    #[test]
    fn figure2_needs_sum_exceeds_l() {
        let total: usize = figure2_needs().iter().sum();
        assert!(total > figure2_config().l, "the figure's requests over-subscribe the pool");
    }

    #[test]
    fn figure3_needs_match_paper() {
        assert_eq!(figure3_needs(), [1, 2, 1]);
        let cfg = figure3_config();
        assert_eq!((cfg.k, cfg.l), (2, 3));
    }

    #[test]
    fn figure2_pusher_variant_has_pusher_in_flight() {
        let net = figure2_deadlock_config_with_pusher();
        let pushers = net.iter_messages().filter(|(_, _, m)| m.is_pusher()).count();
        assert_eq!(pushers, 1);
    }
}
