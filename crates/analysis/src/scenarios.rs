//! The exact scenarios of the paper's figures, shared by tests, examples and experiment
//! binaries.
//!
//! Since the unified scenario API landed, these constructors are thin wrappers over the
//! declarative presets in [`crate::scenario`]: the Figure-2 deadlock and the Figure-3
//! starvation instance are [`crate::scenario::ScenarioSpec`] values
//! ([`crate::scenario::preset`] names `figure2`, `figure2-pusher`, `figure2-ss`,
//! `figure3-*`), and the functions here merely compile them and hand back the concrete
//! networks for callers that drive executions by hand.
//!
//! * **Figure 1 / Figure 4** — the 8-node oriented tree and its virtual ring
//!   (`topology::builders::figure1_tree`).
//! * **Figure 2** — the deadlock of the naive protocol on that tree with ℓ = 5, k = 3 and
//!   needs a=3, b=c=d=2.  [`figure2_deadlock_config`] constructs the *right-hand*
//!   configuration of the figure (all five tokens reserved, every requester short of its
//!   need), from which the naive protocol can never progress.
//! * **Figure 3** — 2-out-of-3 exclusion on the 3-node tree with needs r=1, a=2, b=1, where
//!   the pusher-only protocol can starve process `a`.

use crate::scenario::{
    preset, CompiledScenario, ProtocolSpec, ScenarioSpec, TopologySpec, WorkloadSpec,
    FIGURE2_NEEDS, FIGURE3_NEEDS,
};
use klex_core::{naive, nonstab, pusher, ss, KlConfig};
use topology::OrientedTree;
use treenet::app::BoxedDriver;
use treenet::{Network, NodeId};
use workloads::Heterogeneous;

fn compiled(name: &str) -> CompiledScenario {
    preset(name).expect("bundled preset").compile().expect("bundled presets validate")
}

/// The configuration used throughout the Figure-2 scenario: 3-out-of-5 exclusion on the
/// 8-process tree of Figure 1.
pub fn figure2_config() -> KlConfig {
    KlConfig::new(3, 5, 8)
}

/// Requested units per node in the Figure-2 scenario (`r,a,b,c,d,e,f,g`).
pub fn figure2_needs() -> [usize; 8] {
    FIGURE2_NEEDS
}

/// Per-node drivers implementing the Figure-2 workload (`hold` is the CS duration).
pub fn figure2_drivers(hold: u64) -> impl FnMut(NodeId) -> BoxedDriver {
    move |node| {
        let units = FIGURE2_NEEDS.get(node).copied().unwrap_or(0);
        Box::new(Heterogeneous { units, hold }) as BoxedDriver
    }
}

/// The configuration of the Figure-3 scenario: 2-out-of-3 exclusion on the 3-process tree.
pub fn figure3_config() -> KlConfig {
    KlConfig::new(2, 3, 3)
}

/// Requested units per node in the Figure-3 scenario (`r, a, b`).
pub fn figure3_needs() -> [usize; 3] {
    FIGURE3_NEEDS
}

/// Per-node drivers implementing the Figure-3 workload.
pub fn figure3_drivers(hold: u64) -> impl FnMut(NodeId) -> BoxedDriver {
    move |node| {
        let units = FIGURE3_NEEDS.get(node).copied().unwrap_or(0);
        Box::new(Heterogeneous { units, hold }) as BoxedDriver
    }
}

/// Builds the naive-protocol network already placed in the deadlocked configuration of
/// Figure 2 (right-hand side): all five resource tokens are reserved by the four requesters,
/// none of which can ever be satisfied.  (The `figure2` preset, compiled.)
pub fn figure2_deadlock_config() -> Network<naive::NaiveNode, OrientedTree> {
    compiled("figure2").build_naive().expect("figure2 runs the naive protocol")
}

/// Builds the pusher-protocol network placed in the same Figure-2 configuration (plus the
/// pusher token in flight towards `a`), to show that the pusher resolves the deadlock.
/// (The `figure2-pusher` preset, compiled.)
pub fn figure2_deadlock_config_with_pusher() -> Network<pusher::PusherNode, OrientedTree> {
    compiled("figure2-pusher").build_pusher().expect("figure2-pusher runs the pusher rung")
}

/// Builds the self-stabilizing network whose *initial* configuration is the Figure-2
/// deadlock: for Algorithm 1/2 this is just one more arbitrary initial configuration, and the
/// controller recovers from it.  (The `figure2-ss` preset, compiled.)
pub fn figure2_deadlock_config_ss() -> Network<ss::SsNode, OrientedTree> {
    compiled("figure2-ss").build_ss().expect("figure2-ss runs the full protocol")
}

/// The Figure-3 scenario as a spec for any protocol rung and critical-section duration.
fn figure3_spec(protocol: ProtocolSpec, hold: u64) -> CompiledScenario {
    ScenarioSpec::builder("figure3")
        .topology(TopologySpec::Figure3)
        .protocol(protocol)
        .kl(2, 3)
        .workload(WorkloadSpec::Needs { needs: FIGURE3_NEEDS.to_vec(), hold })
        .build()
        .expect("the figure3 scenario validates")
}

/// Builds the pusher-only (livelock-prone) network for the Figure-3 scenario.
pub fn figure3_pusher_network(hold: u64) -> Network<pusher::PusherNode, OrientedTree> {
    figure3_spec(ProtocolSpec::Pusher, hold).build_pusher().expect("pusher rung")
}

/// Builds the full non-stabilizing (pusher + priority) network for the Figure-3 scenario.
pub fn figure3_nonstab_network(hold: u64) -> Network<nonstab::NonStabNode, OrientedTree> {
    figure3_spec(ProtocolSpec::NonStab, hold).build_nonstab().expect("nonstab rung")
}

/// Builds the self-stabilizing network for the Figure-3 scenario.
pub fn figure3_ss_network(hold: u64) -> Network<ss::SsNode, OrientedTree> {
    figure3_spec(ProtocolSpec::Ss, hold).build_ss().expect("ss rung")
}

#[cfg(test)]
mod tests {
    use super::*;
    use klex_core::count_tokens;

    #[test]
    fn figure2_deadlock_config_matches_the_figure() {
        let net = figure2_deadlock_config();
        let cfg = figure2_config();
        // All five tokens are reserved, none in flight.
        let census = count_tokens(&net);
        assert_eq!(census.resource, cfg.l);
        assert_eq!(net.in_flight(), 0);
        // Node states match the figure.
        assert_eq!(net.node(1).app.need, 3);
        assert_eq!(net.node(1).app.reserved(), 2);
        for v in [2, 3, 4] {
            assert_eq!(net.node(v).app.need, 2);
            assert_eq!(net.node(v).app.reserved(), 1);
        }
        assert_eq!(net.node(0).app.reserved(), 0);
    }

    #[test]
    fn figure2_needs_sum_exceeds_l() {
        let total: usize = figure2_needs().iter().sum();
        assert!(total > figure2_config().l, "the figure's requests over-subscribe the pool");
    }

    #[test]
    fn figure3_needs_match_paper() {
        assert_eq!(figure3_needs(), [1, 2, 1]);
        let cfg = figure3_config();
        assert_eq!((cfg.k, cfg.l), (2, 3));
    }

    #[test]
    fn figure2_pusher_variant_has_pusher_in_flight() {
        let net = figure2_deadlock_config_with_pusher();
        let pushers = net.iter_messages().filter(|(_, _, m)| m.is_pusher()).count();
        assert_eq!(pushers, 1);
    }

    #[test]
    fn wrappers_agree_with_hand_wired_construction() {
        // The preset-built deadlock equals the historical hand-wired construction.
        let from_preset = figure2_deadlock_config();
        let mut by_hand =
            naive::network(topology::builders::figure1_tree(), figure2_config(), figure2_drivers(5));
        by_hand.node_mut(0).bootstrapped = true;
        by_hand.node_mut(1).app.state = treenet::CsState::Req;
        by_hand.node_mut(1).app.need = 3;
        by_hand.node_mut(1).app.rset = vec![0, 0];
        for v in [2usize, 3, 4] {
            by_hand.node_mut(v).app.state = treenet::CsState::Req;
            by_hand.node_mut(v).app.need = 2;
            by_hand.node_mut(v).app.rset = vec![0];
        }
        for v in 0..8 {
            assert_eq!(from_preset.node(v).app.state, by_hand.node(v).app.state, "node {v}");
            assert_eq!(from_preset.node(v).app.need, by_hand.node(v).app.need, "node {v}");
            assert_eq!(from_preset.node(v).app.rset, by_hand.node(v).app.rset, "node {v}");
        }
        assert_eq!(from_preset.in_flight(), by_hand.in_flight());
    }
}
