//! Convergence (stabilization-time) measurement.
//!
//! Theorem 1 states that from *any* configuration the protocol converges to a legitimate
//! configuration.  Experimentally we measure the convergence time as the first moment from
//! which the legitimacy predicate ([`klex_core::is_legitimate`]) holds *continuously* for a
//! confirmation window: the instantaneous predicate can hold transiently while the
//! counter-flushing controller is still unstable, so a single observation is not evidence of
//! stabilization (see the discussion in `crates/core/src/ss.rs`).

use klex_core::{is_legitimate, KlConfig, KlInspect, Message};
use serde::Serialize;
use topology::Topology;
use treenet::{Network, Process, Scheduler};

/// Result of a convergence measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum ConvergenceOutcome {
    /// The network became (and stayed) legitimate.
    Converged {
        /// Logical time at which the sustained-legitimacy window started, i.e. the measured
        /// stabilization time.
        stabilized_at: u64,
        /// Logical time at which the measurement finished (end of the confirmation window).
        confirmed_at: u64,
    },
    /// Legitimacy was never sustained for a full window within the step budget.
    DidNotConverge,
}

impl ConvergenceOutcome {
    /// The measured stabilization time, if the run converged.
    pub fn stabilization_time(&self) -> Option<u64> {
        match self {
            ConvergenceOutcome::Converged { stabilized_at, .. } => Some(*stabilized_at),
            ConvergenceOutcome::DidNotConverge => None,
        }
    }

    /// True when the run converged.
    pub fn converged(&self) -> bool {
        matches!(self, ConvergenceOutcome::Converged { .. })
    }
}

/// Runs `net` under `scheduler` until the legitimacy predicate has held for `window`
/// consecutive activations, or `max_steps` activations have elapsed.
///
/// The returned stabilization time is the activation at which the successful window began.
pub fn measure_convergence<P, T>(
    net: &mut Network<P, T>,
    scheduler: &mut impl Scheduler,
    cfg: &KlConfig,
    max_steps: u64,
    window: u64,
) -> ConvergenceOutcome
where
    P: Process<Msg = Message> + KlInspect,
    T: Topology,
{
    let mut streak_start: Option<u64> = if is_legitimate(net, cfg) { Some(net.now()) } else { None };
    for _ in 0..max_steps {
        net.step(scheduler);
        if is_legitimate(net, cfg) {
            let start = *streak_start.get_or_insert(net.now());
            if net.now() - start >= window {
                return ConvergenceOutcome::Converged {
                    stabilized_at: start,
                    confirmed_at: net.now(),
                };
            }
        } else {
            streak_start = None;
        }
    }
    ConvergenceOutcome::DidNotConverge
}

/// A reasonable confirmation window for a network of `n` processes: several full controller
/// circulations' worth of activations.
pub fn default_window(n: usize) -> u64 {
    (n as u64 * 200).max(2_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use klex_core::ss;
    use treenet::app::{BoxedDriver, Idle};
    use treenet::{FaultInjector, FaultPlan, RoundRobin};

    #[test]
    fn converges_from_empty_configuration() {
        let tree = topology::builders::figure1_tree();
        let cfg = KlConfig::new(3, 5, 8);
        let mut net = ss::network(tree, cfg, |_| Box::new(Idle) as BoxedDriver);
        let mut sched = RoundRobin::new();
        let out = measure_convergence(&mut net, &mut sched, &cfg, 1_000_000, default_window(8));
        assert!(out.converged());
        assert!(out.stabilization_time().unwrap() > 0);
    }

    #[test]
    fn converges_after_fault_and_reports_later_time() {
        let tree = topology::builders::chain(5);
        let cfg = KlConfig::new(1, 2, 5);
        let mut net = ss::network(tree, cfg, |_| Box::new(Idle) as BoxedDriver);
        let mut sched = RoundRobin::new();
        let first = measure_convergence(&mut net, &mut sched, &cfg, 1_000_000, default_window(5));
        assert!(first.converged());
        let mut injector = FaultInjector::new(3);
        injector.inject(&mut net, &FaultPlan::catastrophic(cfg.cmax));
        let second = measure_convergence(&mut net, &mut sched, &cfg, 2_000_000, default_window(5));
        assert!(second.converged());
        assert!(
            second.stabilization_time().unwrap() >= first.stabilization_time().unwrap(),
            "time only moves forward"
        );
    }

    #[test]
    fn did_not_converge_with_tiny_budget() {
        let tree = topology::builders::chain(4);
        let cfg = KlConfig::new(1, 2, 4);
        let mut net = ss::network(tree, cfg, |_| Box::new(Idle) as BoxedDriver);
        let mut sched = RoundRobin::new();
        let out = measure_convergence(&mut net, &mut sched, &cfg, 10, 1_000);
        assert!(!out.converged());
        assert_eq!(out.stabilization_time(), None);
    }

    #[test]
    fn default_window_scales_with_n() {
        assert!(default_window(100) > default_window(10));
        assert!(default_window(2) >= 2_000);
    }
}
