//! Summary statistics over repeated trials.

use serde::Serialize;

/// Summary statistics (mean, standard deviation, min/median/p95/max) of a sample.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `samples`; returns the zero summary for an empty slice.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            max: sorted[count - 1],
        }
    }

    /// Convenience for integer samples.
    pub fn of_u64(samples: &[u64]) -> Summary {
        let as_f: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Summary::of(&as_f)
    }
}

/// Nearest-rank percentile of an already-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_gives_zeroes() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn u64_helper_matches() {
        assert_eq!(Summary::of_u64(&[2, 4, 6]).mean, 4.0);
    }

    #[test]
    fn percentile_is_monotone() {
        let s = Summary::of(&(0..100).map(|x| x as f64).collect::<Vec<_>>());
        assert!(s.median <= s.p95);
        assert!(s.p95 <= s.max);
        assert_eq!(s.p95, 94.0);
    }
}
