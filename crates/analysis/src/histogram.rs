//! Bucketed distributions for waiting-time and convergence-time samples.
//!
//! The [`crate::stats::Summary`] gives point statistics; experiments E5 and E6 additionally
//! report *distributions* (how waiting times spread relative to the Theorem-2 bound, how
//! convergence times spread across random faults), which is what [`Histogram`] provides,
//! together with a terminal-friendly rendering.
//!
//! # Exhausted trials
//!
//! Multi-trial harness runs can end a trial without producing a measurement at all
//! ([`treenet::RunOutcome::Exhausted`]: the step budget ran out before the stop condition
//! was met).  Folding such trials into the overflow (max) bucket would silently
//! misrepresent the distribution — "took longer than the range" and "never finished" are
//! different claims.  The histogram therefore carries a dedicated [`Histogram::exhausted`]
//! counter, fed by [`Histogram::record_exhausted`] /
//! [`Histogram::record_outcome`]; exhausted trials count towards
//! [`Histogram::total`] but never towards any value bucket, and quantiles are computed over
//! the *measured* samples only.

use serde::Serialize;
use treenet::RunOutcome;

/// A fixed-width-bucket histogram over `u64` samples.
#[derive(Clone, Debug, Serialize)]
pub struct Histogram {
    /// Lower edge of the first bucket (always 0 for these experiments).
    pub low: u64,
    /// Exclusive upper edge of the last regular bucket; samples at or above it land in the
    /// overflow bucket.
    pub high: u64,
    /// Width of each regular bucket.
    pub bucket_width: u64,
    /// Sample counts per regular bucket.
    pub counts: Vec<u64>,
    /// Samples `>= high`.
    pub overflow: u64,
    /// Trials that ended without a measurement (see the [module docs](self)); counted in
    /// `total` but in no value bucket.
    pub exhausted: u64,
    /// Total number of samples, including exhausted trials.
    pub total: u64,
}

impl Histogram {
    /// Builds a histogram with `buckets` equal-width buckets spanning `[0, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `high == 0`.
    pub fn with_range(high: u64, buckets: usize) -> Self {
        assert!(buckets > 0, "a histogram needs at least one bucket");
        assert!(high > 0, "the histogram range must be non-empty");
        let bucket_width = high.div_ceil(buckets as u64).max(1);
        Histogram {
            low: 0,
            high: bucket_width * buckets as u64,
            bucket_width,
            counts: vec![0; buckets],
            overflow: 0,
            exhausted: 0,
            total: 0,
        }
    }

    /// Builds a histogram sized to the samples themselves (range `[0, max + 1)`).
    pub fn of(samples: &[u64], buckets: usize) -> Self {
        let max = samples.iter().copied().max().unwrap_or(0);
        let mut h = Histogram::with_range(max + 1, buckets);
        for &s in samples {
            h.record(s);
        }
        h
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        self.total += 1;
        if sample >= self.high {
            self.overflow += 1;
        } else {
            let idx = (sample / self.bucket_width) as usize;
            self.counts[idx] += 1;
        }
    }

    /// Records one trial that produced no measurement (separately from every value bucket —
    /// see the [module docs](self)).
    pub fn record_exhausted(&mut self) {
        self.total += 1;
        self.exhausted += 1;
    }

    /// Records a [`RunOutcome`]: satisfied and quiescent outcomes contribute their time as
    /// a sample, an exhausted outcome lands in the [`Histogram::exhausted`] counter instead
    /// of the max bucket.
    pub fn record_outcome(&mut self, outcome: &RunOutcome) {
        match outcome {
            RunOutcome::Exhausted(_) => self.record_exhausted(),
            _ => self.record(outcome.at()),
        }
    }

    /// Number of samples that carried a measurement (`total - exhausted`).
    pub fn measured(&self) -> u64 {
        self.total - self.exhausted
    }

    /// Number of samples strictly below `value` (bucket resolution: `value` is rounded down
    /// to a bucket edge).
    pub fn count_below(&self, value: u64) -> u64 {
        let full_buckets = ((value.min(self.high)) / self.bucket_width) as usize;
        self.counts.iter().take(full_buckets).sum()
    }

    /// The fraction of *measured* samples strictly below `value` (0 when the histogram has
    /// no measured samples); exhausted trials are excluded — they carry no value to
    /// compare.
    pub fn fraction_below(&self, value: u64) -> f64 {
        if self.measured() == 0 {
            0.0
        } else {
            self.count_below(value) as f64 / self.measured() as f64
        }
    }

    /// Nearest-rank quantile over the *measured* samples, computed from the buckets
    /// (bucket upper edge of the bucket in which the quantile falls; overflow reports
    /// `high`).  Exhausted trials are excluded.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.measured() == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.measured() as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return (idx as u64 + 1) * self.bucket_width;
            }
        }
        self.high
    }

    /// Merges another histogram with the same bucket configuration into this one (used to
    /// combine per-shard distributions from [`crate::harness::run_sharded`] workers).
    ///
    /// # Panics
    ///
    /// Panics if the two histograms differ in range or bucket width — merging incompatible
    /// bucketings would silently misattribute samples.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            (self.low, self.high, self.bucket_width),
            (other.low, other.high, other.bucket_width),
            "cannot merge histograms with different bucket configurations"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.overflow += other.overflow;
        self.exhausted += other.exhausted;
        self.total += other.total;
    }

    /// Renders the histogram as aligned ASCII bars, one line per non-empty bucket.
    pub fn render(&self, width: usize) -> String {
        let width = width.max(1);
        let max_count = self
            .counts
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.overflow)
            .max(self.exhausted)
            .max(1);
        let mut out = String::new();
        for (idx, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let lo = idx as u64 * self.bucket_width;
            let hi = lo + self.bucket_width;
            let bar = "#".repeat(((count as f64 / max_count as f64) * width as f64).ceil() as usize);
            out.push_str(&format!("[{lo:>8} .. {hi:>8}) {count:>6} {bar}\n"));
        }
        if self.overflow > 0 {
            let bar = "#".repeat(
                ((self.overflow as f64 / max_count as f64) * width as f64).ceil() as usize,
            );
            out.push_str(&format!("[{:>8} ..     +inf) {:>6} {bar}\n", self.high, self.overflow));
        }
        if self.exhausted > 0 {
            let bar = "#".repeat(
                ((self.exhausted as f64 / max_count as f64) * width as f64).ceil() as usize,
            );
            out.push_str(&format!("(exhausted, no value) {:>6} {bar}\n", self.exhausted));
        }
        if out.is_empty() {
            out.push_str("(no samples)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_requested_range() {
        let h = Histogram::with_range(100, 10);
        assert_eq!(h.bucket_width, 10);
        assert_eq!(h.high, 100);
        assert_eq!(h.counts.len(), 10);
    }

    #[test]
    fn records_land_in_the_right_buckets() {
        let mut h = Histogram::with_range(100, 10);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(99);
        h.record(100); // overflow
        h.record(1_000); // overflow
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[9], 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.total, 6);
    }

    #[test]
    fn of_sizes_the_range_to_the_samples() {
        let samples = [3u64, 7, 7, 20];
        let h = Histogram::of(&samples, 7);
        assert_eq!(h.total, 4);
        assert_eq!(h.overflow, 0);
        assert_eq!(h.counts.iter().sum::<u64>(), 4);
    }

    #[test]
    fn fraction_below_and_quantile_agree_on_simple_data() {
        let samples: Vec<u64> = (0..100).collect();
        let h = Histogram::of(&samples, 10);
        assert!((h.fraction_below(50) - 0.5).abs() < 0.11, "{}", h.fraction_below(50));
        let median = h.quantile(0.5);
        assert!((40..=60).contains(&median), "median bucket edge was {median}");
        assert!(h.quantile(1.0) >= median);
        assert_eq!(h.quantile(0.0), h.quantile(0.001));
    }

    #[test]
    fn render_draws_bars_and_handles_empty() {
        let h = Histogram::of(&[1, 1, 1, 50], 5);
        let drawn = h.render(20);
        assert!(drawn.contains('#'));
        assert!(drawn.lines().count() >= 2);
        let empty = Histogram::with_range(10, 2);
        assert!(empty.render(10).contains("no samples"));
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Histogram::with_range(10, 2);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.fraction_below(10), 0.0);
    }

    #[test]
    fn merge_equals_recording_everything_in_one_histogram() {
        let (a, b): (Vec<u64>, Vec<u64>) = ((0..40).collect(), (30..90).collect());
        let mut merged = Histogram::with_range(80, 8);
        let mut other = Histogram::with_range(80, 8);
        let mut reference = Histogram::with_range(80, 8);
        for &s in &a {
            merged.record(s);
            reference.record(s);
        }
        for &s in &b {
            other.record(s);
            reference.record(s);
        }
        merged.merge(&other);
        assert_eq!(merged.counts, reference.counts);
        assert_eq!(merged.overflow, reference.overflow);
        assert_eq!(merged.total, reference.total);
    }

    #[test]
    #[should_panic(expected = "different bucket configurations")]
    fn merge_rejects_incompatible_bucketings() {
        let mut a = Histogram::with_range(80, 8);
        let b = Histogram::with_range(100, 8);
        a.merge(&b);
    }

    #[test]
    fn exhausted_trials_never_land_in_a_value_bucket() {
        use treenet::RunOutcome;
        let mut h = Histogram::with_range(100, 10);
        h.record_outcome(&RunOutcome::Satisfied(12));
        h.record_outcome(&RunOutcome::Quiescent(99));
        h.record_outcome(&RunOutcome::Exhausted(1_000_000));
        h.record_outcome(&RunOutcome::Exhausted(50));
        assert_eq!(h.total, 4);
        assert_eq!(h.exhausted, 2);
        assert_eq!(h.measured(), 2);
        // The exhausted outcomes are in neither the regular buckets nor the overflow —
        // even the one whose (meaningless) time would have fit the range.
        assert_eq!(h.counts.iter().sum::<u64>(), 2);
        assert_eq!(h.overflow, 0);
        // Quantiles and fractions are over the measured samples only.
        assert_eq!(h.quantile(1.0), 100);
        assert!((h.fraction_below(50) - 0.5).abs() < f64::EPSILON);
        // The rendering reports the exhausted bucket explicitly.
        assert!(h.render(10).contains("exhausted"));
    }

    #[test]
    fn merging_preserves_the_exhausted_count() {
        let mut a = Histogram::with_range(80, 8);
        let mut b = Histogram::with_range(80, 8);
        a.record(10);
        a.record_exhausted();
        b.record_exhausted();
        b.record(200);
        a.merge(&b);
        assert_eq!(a.exhausted, 2);
        assert_eq!(a.total, 4);
        assert_eq!(a.overflow, 1);
        assert_eq!(a.measured(), 2);
    }
}
