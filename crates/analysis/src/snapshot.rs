//! Snapshot-fed safety monitoring: token census and safety bounds over consistent cuts.
//!
//! The `treenet` crate assembles Chandy–Lamport cuts protocol-agnostically
//! ([`treenet::SnapshotRunner`] feeding a [`treenet::SnapshotObserver`]); this module owns
//! the protocol-specific interpretation.  [`SnapshotMonitor`] accumulates, per cut, the
//! token census over recorded node states plus in-transit messages — the same quantity
//! [`klex_core::count_tokens`] computes instantaneously — and the per-process safety bounds
//! of [`klex_core::legitimacy::safety_holds`], and renders each completed cut into a [`CutVerdict`].
//!
//! A consistent cut of a legitimate execution is itself a reachable configuration, so on a
//! stabilized network **every** verdict must be clean: census exactly (ℓ, 1, 1) and no
//! process over its `k` bound.  An unclean verdict is a genuine safety finding, not a
//! tearing artifact — that is the point of snapshotting consistently instead of reading
//! racing per-node state mid-flight.  (This is the cut-level complement of the continuous
//! per-step [`crate::invariants::SafetyMonitor`].)

use klex_core::{KlConfig, KlInspect, Message, TokenCensus};
use serde::Serialize;
use treenet::{ChannelLabel, NodeId, Process, SnapshotObserver};

/// The verdict of one completed consistent cut.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct CutVerdict {
    /// Snapshot sequence number.
    pub snap: u32,
    /// Logical time at which the cut was initiated.
    pub initiated_at: u64,
    /// Logical time at which the last marker arrived.
    pub completed_at: u64,
    /// Token census over the cut: recorded node states plus in-transit messages.
    pub census: TokenCensus,
    /// Units in use (processes in their critical sections) on the cut.
    pub units_in_use: usize,
    /// Largest per-process reservation on the cut.
    pub max_reserved: usize,
    /// Largest per-process units-in-use on the cut.
    pub max_units_in_use: usize,
    /// True when the census is exactly (ℓ, 1, 1).
    pub census_matches: bool,
    /// True when every safety bound holds: no process over `k` (reserved or in use) and at
    /// most `ℓ` units in use overall.
    pub safety_ok: bool,
}

impl CutVerdict {
    /// True when the cut certifies both the census and the safety bounds.
    pub fn clean(&self) -> bool {
        self.census_matches && self.safety_ok
    }
}

/// Per-cut accumulator, reset when the cut completes (cuts never overlap: the runner
/// initiates the next snapshot only after the previous cut closed).
#[derive(Debug, Default)]
struct CutAccumulator {
    census: TokenCensus,
    units_in_use: usize,
    max_reserved: usize,
    max_units_in_use: usize,
}

/// A [`SnapshotObserver`] that turns every completed cut into a [`CutVerdict`].
///
/// Incremental by construction: node states are folded into census counters at record time
/// (nothing is cloned or retained per node), so monitoring a 10⁶-node cut costs O(1) memory
/// beyond the runner's own bitmaps.
#[derive(Debug)]
pub struct SnapshotMonitor {
    k: usize,
    l: usize,
    current: CutAccumulator,
    verdicts: Vec<CutVerdict>,
}

impl SnapshotMonitor {
    /// A monitor asserting `cfg`'s (k, ℓ) bounds on every cut.
    pub fn new(cfg: &KlConfig) -> Self {
        Self::with_kl(cfg.k, cfg.l)
    }

    /// A monitor asserting the given bounds on every cut.
    pub fn with_kl(k: usize, l: usize) -> Self {
        SnapshotMonitor { k, l, current: CutAccumulator::default(), verdicts: Vec::new() }
    }

    /// The verdicts of every completed cut, in completion order.
    pub fn verdicts(&self) -> &[CutVerdict] {
        &self.verdicts
    }

    /// Consumes the monitor, returning its verdicts.
    pub fn into_verdicts(self) -> Vec<CutVerdict> {
        self.verdicts
    }

    /// Number of completed cuts.
    pub fn cuts(&self) -> usize {
        self.verdicts.len()
    }

    /// True when every completed cut so far was clean.
    pub fn clean(&self) -> bool {
        self.verdicts.iter().all(CutVerdict::clean)
    }
}

impl<P> SnapshotObserver<P> for SnapshotMonitor
where
    P: Process<Msg = Message> + KlInspect,
{
    fn node_state(&mut self, _snap: u32, _node: NodeId, process: &P) {
        let acc = &mut self.current;
        let reserved = process.reserved();
        let in_use = process.units_in_use();
        acc.census.resource += reserved;
        if process.holds_priority() {
            acc.census.priority += 1;
        }
        acc.units_in_use += in_use;
        acc.max_reserved = acc.max_reserved.max(reserved);
        acc.max_units_in_use = acc.max_units_in_use.max(in_use);
    }

    fn in_transit(&mut self, _snap: u32, _node: NodeId, _label: ChannelLabel, msg: &Message) {
        let census = &mut self.current.census;
        match msg {
            Message::ResT => census.resource += 1,
            Message::PushT => census.pusher += 1,
            Message::PrioT => census.priority += 1,
            Message::Ctrl { .. } => census.ctrl += 1,
            Message::Garbage(_) => census.garbage += 1,
            // A marker at the head of an open channel is consumed by the runner before
            // delivery, so it can never be recorded in transit; the arm is defensive.
            Message::Marker(_) => {}
        }
    }

    fn cut_complete(&mut self, snap: u32, initiated_at: u64, completed_at: u64) {
        let acc = std::mem::take(&mut self.current);
        let census_matches = acc.census.matches(self.l);
        let safety_ok = acc.max_reserved <= self.k
            && acc.max_units_in_use <= self.k
            && acc.units_in_use <= self.l;
        self.verdicts.push(CutVerdict {
            snap,
            initiated_at,
            completed_at,
            census: acc.census,
            units_in_use: acc.units_in_use,
            max_reserved: acc.max_reserved,
            max_units_in_use: acc.max_units_in_use,
            census_matches,
            safety_ok,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klex_core::{is_legitimate, nonstab, ss};
    use treenet::app::{BoxedDriver, Idle};
    use treenet::{run_with_snapshots, InitiatorPolicy, SnapshotPlan, SnapshotRunner};

    #[test]
    fn stabilized_network_yields_only_clean_cuts() {
        let tree = topology::builders::figure1_tree();
        let cfg = KlConfig::new(1, 2, 8);
        let mut net = ss::network(tree, cfg, |_| Box::new(Idle) as BoxedDriver);
        let mut daemon = treenet::RoundRobin::new();
        let warm = treenet::run_until(&mut net, &mut daemon, 500_000, |net| {
            is_legitimate(net, &cfg)
        });
        assert!(warm.is_satisfied(), "ss must stabilize before the snapshot phase");

        let mut runner =
            SnapshotRunner::new(SnapshotPlan { interval: 64, initiator: InitiatorPolicy::Rotate });
        let mut monitor = SnapshotMonitor::new(&cfg);
        run_with_snapshots(&mut net, &mut daemon, 20_000, &mut runner, &mut monitor);

        assert!(runner.cuts_completed() >= 10, "got {} cuts", runner.cuts_completed());
        assert_eq!(monitor.cuts() as u64, runner.cuts_completed());
        assert!(monitor.clean(), "verdicts: {:?}", monitor.verdicts());
        for verdict in monitor.verdicts() {
            assert!(verdict.census.matches(cfg.l), "cut census must be (l,1,1): {verdict:?}");
            assert!(verdict.completed_at > verdict.initiated_at);
        }
    }

    #[test]
    fn surplus_token_is_flagged_on_every_cut() {
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(2, 3, 3);
        let mut net = nonstab::network(tree, cfg, |_| Box::new(Idle) as BoxedDriver);
        let mut daemon = treenet::RoundRobin::new();
        treenet::run_for(&mut net, &mut daemon, 5_000);
        assert!(klex_core::count_tokens(&net).matches(cfg.l));
        net.inject_into(1, 0, Message::ResT);

        let mut runner =
            SnapshotRunner::new(SnapshotPlan { interval: 32, initiator: InitiatorPolicy::Root });
        let mut monitor = SnapshotMonitor::new(&cfg);
        run_with_snapshots(&mut net, &mut daemon, 5_000, &mut runner, &mut monitor);

        assert!(monitor.cuts() >= 1);
        assert!(!monitor.clean(), "the surplus token must surface in the cut census");
        for verdict in monitor.verdicts() {
            assert_eq!(verdict.census.resource, cfg.l + 1, "{verdict:?}");
            assert!(!verdict.census_matches);
        }
    }
}
