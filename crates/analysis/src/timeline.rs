//! Terminal-friendly renderings of executions: per-process activity lanes, the virtual ring,
//! and token-census timelines.
//!
//! These renderings serve the examples and the experiment write-ups: a Figure-2 deadlock is
//! immediately visible as lanes stuck on `r`, the Figure-3 starvation as one lane that never
//! shows `#` while its neighbours alternate, and a transient fault as a census sparkline that
//! departs from `ℓ/1/1` and comes back.

use klex_core::{count_tokens, KlInspect, Message, TokenCensus};
use topology::{OrientedTree, Topology, VirtualRing};
use treenet::{Event, Network, Trace};

/// Per-process activity lanes over a time window.
///
/// Each lane shows `width` samples of the process's request state between `from` and `to`
/// (activation timestamps): `·` idle (`Out`), `r` requesting, `#` executing the critical
/// section.  The state at a sample point is the one established by the last event at or
/// before that activation.
pub fn render_activity_gantt(trace: &Trace, n: usize, from: u64, to: u64, width: usize) -> String {
    let width = width.max(1);
    let to = to.max(from + 1);
    // Per-node, time-ordered (timestamp, state-char) change points.
    let mut changes: Vec<Vec<(u64, char)>> = vec![Vec::new(); n];
    for ev in trace.events() {
        if ev.node >= n {
            continue;
        }
        let state = match ev.event {
            Event::RequestIssued { .. } => Some('r'),
            Event::EnterCs { .. } => Some('#'),
            Event::ExitCs { .. } => Some('·'),
            Event::Note(_) => None,
        };
        if let Some(c) = state {
            changes[ev.node].push((ev.at, c));
        }
    }
    let mut out = String::new();
    let span = (to - from).max(1);
    for (node, lane_changes) in changes.iter().enumerate() {
        let mut lane = String::with_capacity(width);
        for col in 0..width {
            let t = from + (span * col as u64) / width as u64;
            let state = lane_changes
                .iter()
                .take_while(|(at, _)| *at <= t)
                .last()
                .map(|(_, c)| *c)
                .unwrap_or('·');
            lane.push(state);
        }
        out.push_str(&format!("p{node:<3} {lane}\n"));
    }
    out
}

/// Renders the virtual ring (Euler tour) of an oriented tree as the node sequence a token
/// visits in one full circulation, e.g. `0 → 1 → 2 → 1 → 0 → …` for a small tree.
pub fn render_virtual_ring(tree: &OrientedTree) -> String {
    let ring = VirtualRing::of(tree);
    let mut out = String::new();
    for (i, node) in ring.node_sequence().iter().enumerate() {
        if i > 0 {
            out.push_str(" → ");
        }
        out.push_str(&node.to_string());
    }
    if !ring.is_empty() {
        out.push_str(" → (back to ");
        out.push_str(&ring.node_sequence()[0].to_string());
        out.push(')');
    }
    out
}

/// Records the token census over time and renders it as sparklines.
///
/// Call [`CensusRecorder::observe`] as often as desired (every step, or at a sampling
/// interval); the recorder stores `(activation, census)` pairs.
#[derive(Clone, Debug, Default)]
pub struct CensusRecorder {
    samples: Vec<(u64, TokenCensus)>,
}

impl CensusRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        CensusRecorder::default()
    }

    /// Takes one census sample from the network.
    pub fn observe<P, T>(&mut self, net: &Network<P, T>)
    where
        P: treenet::Process<Msg = Message> + KlInspect,
        T: Topology,
    {
        self.samples.push((net.now(), count_tokens(net)));
    }

    /// The recorded `(activation, census)` samples, in observation order.
    pub fn samples(&self) -> &[(u64, TokenCensus)] {
        &self.samples
    }

    /// The first recorded activation at which the census was exactly `(l, 1, 1)`, if any.
    pub fn first_time_matching(&self, l: usize) -> Option<u64> {
        self.samples.iter().find(|(_, c)| c.matches(l)).map(|(at, _)| *at)
    }

    /// The last recorded activation at which the census was *not* `(l, 1, 1)`, if any —
    /// i.e. the end of the disturbance caused by a fault.
    pub fn last_time_deviating(&self, l: usize) -> Option<u64> {
        self.samples.iter().rev().find(|(_, c)| !c.matches(l)).map(|(at, _)| *at)
    }

    /// Renders the resource/pusher/priority counts as three digit-sparklines resampled to
    /// `width` columns (counts above 9 render as `+`).
    pub fn render_sparklines(&self, width: usize) -> String {
        let width = width.max(1);
        if self.samples.is_empty() {
            return "(no samples)\n".to_string();
        }
        let pick = |col: usize| {
            let idx = col * (self.samples.len() - 1) / width.max(1);
            &self.samples[idx.min(self.samples.len() - 1)].1
        };
        let digit = |x: usize| {
            if x > 9 {
                '+'
            } else {
                char::from_digit(x as u32, 10).unwrap_or('?')
            }
        };
        let mut res = String::new();
        let mut push = String::new();
        let mut prio = String::new();
        for col in 0..width {
            let census = pick(col);
            res.push(digit(census.resource));
            push.push(digit(census.pusher));
            prio.push(digit(census.priority));
        }
        format!("resource {res}\npusher   {push}\npriority {prio}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klex_core::KlConfig;
    use treenet::app::{AppDriver, BoxedDriver};
    use treenet::{NodeId, RandomFair};

    struct Fixed(usize);
    impl AppDriver for Fixed {
        fn next_request(&mut self, _n: NodeId, _t: u64) -> Option<usize> {
            Some(self.0)
        }
        fn release_cs(&mut self, _n: NodeId, now: u64, e: u64) -> bool {
            now - e >= 5
        }
    }

    #[test]
    fn gantt_shows_requests_and_critical_sections() {
        let tree = topology::builders::figure1_tree();
        let cfg = KlConfig::new(2, 5, 8);
        let mut net =
            klex_core::ss::network(tree, cfg, |_| Box::new(Fixed(1)) as BoxedDriver);
        let mut sched = RandomFair::new(7);
        for _ in 0..40_000 {
            net.step(&mut sched);
        }
        let gantt = render_activity_gantt(net.trace(), 8, 0, net.now(), 60);
        assert_eq!(gantt.lines().count(), 8);
        assert!(gantt.contains('#'), "someone must have executed a critical section:\n{gantt}");
        assert!(gantt.contains('r'), "someone must have waited:\n{gantt}");
        for line in gantt.lines() {
            assert!(line.starts_with('p'));
        }
    }

    #[test]
    fn gantt_of_an_empty_trace_is_all_idle() {
        let trace = Trace::new();
        let gantt = render_activity_gantt(&trace, 3, 0, 100, 10);
        for line in gantt.lines() {
            assert!(line.ends_with(&"·".repeat(10)));
        }
    }

    #[test]
    fn virtual_ring_rendering_matches_the_euler_tour() {
        let tree = topology::builders::figure1_tree();
        let drawn = render_virtual_ring(&tree);
        // The Figure-1/4 ring is r a b a c a r d e d f d g d (as node ids: 0 1 2 1 3 1 0 4 5 4 6 4 7 4).
        assert!(drawn.starts_with("0 → 1 → 2 → 1 → 3 → 1 → 0 → 4"));
        assert!(drawn.ends_with("(back to 0)"));
    }

    #[test]
    fn census_recorder_tracks_fault_and_recovery() {
        let tree = topology::builders::figure1_tree();
        let cfg = KlConfig::new(2, 4, 8);
        let mut net =
            klex_core::ss::network(tree, cfg, |_| Box::new(Fixed(1)) as BoxedDriver);
        let mut sched = RandomFair::new(3);
        let mut recorder = CensusRecorder::new();
        // Bootstrap.
        for _ in 0..60_000 {
            net.step(&mut sched);
        }
        // Inject a surplus token (a transient fault), then watch the census recover.
        net.inject_into(1, 0, Message::ResT);
        for _ in 0..200_000 {
            net.step(&mut sched);
            if net.now() % 50 == 0 {
                recorder.observe(&net);
            }
        }
        assert!(!recorder.samples().is_empty());
        let first_ok = recorder.first_time_matching(4);
        let last_bad = recorder.last_time_deviating(4);
        assert!(first_ok.is_some(), "the census must eventually match (l,1,1)");
        assert!(last_bad.is_some(), "the injected surplus must be visible");
        // After the last deviation the census stays correct, i.e. recovery happened.
        let sparks = recorder.render_sparklines(40);
        assert_eq!(sparks.lines().count(), 3);
        assert!(sparks.contains("resource"));
    }

    #[test]
    fn sparklines_handle_empty_and_large_counts() {
        let recorder = CensusRecorder::new();
        assert!(recorder.render_sparklines(10).contains("no samples"));
        let mut loaded = CensusRecorder::new();
        loaded.samples.push((
            0,
            TokenCensus { resource: 12, pusher: 1, priority: 0, ctrl: 1, garbage: 0 },
        ));
        let sparks = loaded.render_sparklines(5);
        assert!(sparks.lines().next().unwrap().contains('+'));
    }
}
