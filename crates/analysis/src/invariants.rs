//! Continuous safety monitoring.
//!
//! The safety property of k-out-of-ℓ exclusion (Section 2 of the paper): every resource unit
//! is used by at most one process, every process uses at most `k` units, and at most `ℓ`
//! units are used overall.  In the token implementation, "a unit used by at most one process"
//! is structural (a token is a message held by at most one `RSet`), so the monitor checks the
//! two numeric bounds plus token conservation after stabilization.

use klex_core::{count_tokens, KlConfig, KlInspect, Message, TokenCensus};
use serde::Serialize;
use topology::Topology;
use treenet::{Network, NodeId, Process};

/// A recorded violation of the monitored invariants.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum SafetyViolation {
    /// A process used more than `k` units inside its critical section.
    PerProcessBound {
        /// Offending process.
        node: NodeId,
        /// Units it was using.
        used: usize,
        /// The bound `k`.
        k: usize,
        /// Logical time of the observation.
        at: u64,
    },
    /// More than `ℓ` units were in use system-wide.
    GlobalBound {
        /// Units in use.
        used: usize,
        /// The bound `ℓ`.
        l: usize,
        /// Logical time of the observation.
        at: u64,
    },
    /// The resource-token population deviated from `ℓ` while conservation was being enforced.
    TokenConservation {
        /// Tokens observed.
        observed: usize,
        /// Tokens expected.
        expected: usize,
        /// Logical time of the observation.
        at: u64,
    },
}

/// A safety monitor to be invoked after every simulation step (or as often as desired).
#[derive(Clone, Debug)]
pub struct SafetyMonitor {
    cfg: KlConfig,
    /// When true, also require the resource-token census to equal `ℓ` (valid only after
    /// stabilization).
    pub enforce_conservation: bool,
    checks: u64,
    violations: Vec<SafetyViolation>,
}

impl SafetyMonitor {
    /// Creates a monitor for the given configuration.
    pub fn new(cfg: KlConfig) -> Self {
        SafetyMonitor { cfg, enforce_conservation: false, checks: 0, violations: Vec::new() }
    }

    /// Also enforce token conservation (call once the network has stabilized).
    pub fn with_conservation(mut self) -> Self {
        self.enforce_conservation = true;
        self
    }

    /// Inspects the network once, recording any violations.
    pub fn check<P, T>(&mut self, net: &Network<P, T>)
    where
        P: Process<Msg = Message> + KlInspect,
        T: Topology,
    {
        self.checks += 1;
        let at = net.now();
        let mut in_use = 0usize;
        for (id, node) in net.nodes().enumerate() {
            let used = node.units_in_use();
            in_use += used;
            if used > self.cfg.k {
                self.violations.push(SafetyViolation::PerProcessBound {
                    node: id,
                    used,
                    k: self.cfg.k,
                    at,
                });
            }
        }
        if in_use > self.cfg.l {
            self.violations.push(SafetyViolation::GlobalBound { used: in_use, l: self.cfg.l, at });
        }
        if self.enforce_conservation {
            let census: TokenCensus = count_tokens(net);
            if census.resource != self.cfg.l {
                self.violations.push(SafetyViolation::TokenConservation {
                    observed: census.resource,
                    expected: self.cfg.l,
                    at,
                });
            }
        }
    }

    /// Number of checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// The violations recorded so far.
    pub fn violations(&self) -> &[SafetyViolation] {
        &self.violations
    }

    /// True when no violation has been recorded.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klex_core::{naive, nonstab};
    use treenet::app::{AppDriver, BoxedDriver, Idle};
    use treenet::RoundRobin;

    struct Fixed(usize, u64);
    impl AppDriver for Fixed {
        fn next_request(&mut self, _n: NodeId, _t: u64) -> Option<usize> {
            Some(self.0)
        }
        fn release_cs(&mut self, _n: NodeId, now: u64, e: u64) -> bool {
            now - e >= self.1
        }
    }

    #[test]
    fn clean_run_has_no_violations() {
        let tree = topology::builders::figure1_tree();
        let cfg = KlConfig::new(2, 4, 8);
        let mut net = nonstab::network(tree, cfg, |_| Box::new(Fixed(2, 3)) as BoxedDriver);
        let mut sched = RoundRobin::new();
        let mut monitor = SafetyMonitor::new(cfg);
        for _ in 0..30_000 {
            net.step(&mut sched);
            monitor.check(&net);
        }
        assert!(monitor.clean(), "violations: {:?}", monitor.violations());
        assert_eq!(monitor.checks(), 30_000);
    }

    #[test]
    fn conservation_detects_injected_token() {
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(1, 2, 3);
        let mut net = naive::network(tree, cfg, |_| Box::new(Idle) as BoxedDriver);
        let mut sched = RoundRobin::new();
        treenet::run_for(&mut net, &mut sched, 1_000);
        let mut monitor = SafetyMonitor::new(cfg).with_conservation();
        monitor.check(&net);
        assert!(monitor.clean());
        net.inject_into(1, 0, Message::ResT);
        monitor.check(&net);
        assert!(!monitor.clean());
        assert!(matches!(
            monitor.violations()[0],
            SafetyViolation::TokenConservation { observed: 3, expected: 2, .. }
        ));
    }

    #[test]
    fn per_process_bound_is_reported() {
        // Build a naive network and force an illegal reservation directly (simulating a
        // corrupted state the monitor should flag).
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(1, 2, 3);
        let mut net = naive::network(tree, cfg, |_| Box::new(Idle) as BoxedDriver);
        {
            let node = net.node_mut(1);
            node.app.state = treenet::CsState::In;
            node.app.rset = vec![0, 0];
        }
        let mut monitor = SafetyMonitor::new(cfg);
        monitor.check(&net);
        assert!(monitor
            .violations()
            .iter()
            .any(|v| matches!(v, SafetyViolation::PerProcessBound { node: 1, used: 2, .. })));
    }

    #[test]
    fn global_bound_is_reported() {
        let tree = topology::builders::figure1_tree();
        let cfg = KlConfig::new(2, 2, 8);
        let mut net = naive::network(tree, cfg, |_| Box::new(Idle) as BoxedDriver);
        for v in 1..=3usize {
            let node = net.node_mut(v);
            node.app.state = treenet::CsState::In;
            node.app.rset = vec![0];
        }
        let mut monitor = SafetyMonitor::new(cfg);
        monitor.check(&net);
        assert!(monitor
            .violations()
            .iter()
            .any(|v| matches!(v, SafetyViolation::GlobalBound { used: 3, l: 2, .. })));
    }
}
