//! Composition of the spanning-tree construction with the k-out-of-ℓ exclusion protocol —
//! the extension to arbitrary rooted networks sketched in the paper's conclusion.
//!
//! The composition implemented here is the classic *layered* (fair) composition used to argue
//! that extension: the spanning-tree layer stabilizes regardless of what runs on top of it
//! (its beacons are independent of the exclusion traffic), and once its output — the parent
//! pointers — stops changing, the exclusion protocol runs on a fixed oriented tree and
//! stabilizes by Theorem 1.  Concretely, [`compose`] runs the spanning-tree network until its
//! output is stable, extracts the [`topology::OrientedTree`] (with the paper's parent = channel
//! 0 labelling), instantiates the self-stabilizing exclusion protocol on it, and runs that
//! until it is legitimate; the returned [`Composition`] carries both stabilization costs and
//! the ready-to-use exclusion network, so callers can keep driving it.
//!
//! The measured cost of the composition — spanning-tree convergence plus exclusion
//! convergence as a function of the graph's size and density — is experiment E11.

use crate::extract::{distances_are_exact, extract_tree, parents_form_tree, ExtractedTree};
use crate::protocol::{self, StConfig};
use klex_core::{is_legitimate, KlConfig, SsNode};
use topology::{OrientedTree, RootedGraph};
use treenet::app::BoxedDriver;
use treenet::{Network, NodeId, Scheduler};

/// Why a composition attempt failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompositionError {
    /// The spanning-tree layer did not stabilize within the step budget.
    SpanningTreeDidNotStabilize {
        /// Activations spent on the spanning-tree layer.
        spent: u64,
    },
    /// The exclusion layer did not become legitimate within the step budget.
    ExclusionDidNotStabilize {
        /// Activations spent on the exclusion layer.
        spent: u64,
    },
}

impl std::fmt::Display for CompositionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompositionError::SpanningTreeDidNotStabilize { spent } => {
                write!(f, "spanning tree did not stabilize within {spent} activations")
            }
            CompositionError::ExclusionDidNotStabilize { spent } => {
                write!(f, "exclusion protocol did not stabilize within {spent} activations")
            }
        }
    }
}

impl std::error::Error for CompositionError {}

/// Step budgets and stabilization windows for [`compose`].
#[derive(Clone, Copy, Debug)]
pub struct CompositionBudget {
    /// Maximum activations for the spanning-tree layer.
    pub st_max_steps: u64,
    /// The spanning-tree output must be unchanged for this many consecutive activations to be
    /// considered stable.
    pub st_window: u64,
    /// Maximum activations for the exclusion layer.
    pub kl_max_steps: u64,
    /// The exclusion layer must be legitimate for this many consecutive activations.
    pub kl_window: u64,
}

impl CompositionBudget {
    /// A generous default budget for a graph of `n` nodes.
    pub fn for_size(n: usize) -> Self {
        let n = n.max(2) as u64;
        CompositionBudget {
            st_max_steps: 40_000 * n,
            st_window: 8 * n,
            kl_max_steps: 80_000 * n,
            kl_window: 8 * n,
        }
    }
}

/// The outcome of a successful composition.
pub struct Composition {
    /// The stabilized spanning tree and the graph ↔ tree id mappings.
    pub extracted: ExtractedTree,
    /// Activations spent until the spanning-tree layer stabilized.
    pub st_activations: u64,
    /// Messages sent by the spanning-tree layer until stabilization.
    pub st_messages: u64,
    /// Activations spent until the exclusion layer became legitimate.
    pub kl_activations: u64,
    /// The running exclusion network (legitimate when returned); drive it further to serve
    /// requests.
    pub network: Network<SsNode, OrientedTree>,
    /// The exclusion configuration in force.
    pub kl_config: KlConfig,
}

impl Composition {
    /// Total stabilization cost of the layered composition, in activations.
    pub fn total_activations(&self) -> u64 {
        self.st_activations + self.kl_activations
    }
}

/// Runs the spanning-tree layer on `graph` until its output is stable, then builds and
/// stabilizes the k-out-of-ℓ exclusion protocol on the extracted tree.
///
/// `driver_for` is indexed by **graph** node id; the mapping to tree ids is applied
/// internally, so callers describe workloads in terms of the original network.
pub fn compose(
    graph: RootedGraph,
    st_cfg: StConfig,
    kl_cfg: KlConfig,
    mut driver_for: impl FnMut(NodeId) -> BoxedDriver,
    sched: &mut impl Scheduler,
    budget: CompositionBudget,
) -> Result<Composition, CompositionError> {
    // Layer 1: spanning-tree construction.
    let mut st_net = protocol::network(graph, st_cfg);
    let mut stable_for = 0u64;
    let mut st_activations = 0u64;
    let mut stabilized = false;
    while st_activations < budget.st_max_steps {
        st_net.step(sched);
        st_activations += 1;
        if parents_form_tree(&st_net) && distances_are_exact(&st_net) {
            stable_for += 1;
            if stable_for >= budget.st_window {
                stabilized = true;
                break;
            }
        } else {
            stable_for = 0;
        }
    }
    if !stabilized {
        return Err(CompositionError::SpanningTreeDidNotStabilize { spent: st_activations });
    }
    let st_messages = st_net.metrics().messages_sent;
    let extracted = extract_tree(&st_net)
        .expect("a stabilized spanning-tree network must yield a tree");

    // Layer 2: the exclusion protocol on the extracted tree, with drivers translated from
    // graph ids to tree ids.
    let tree_to_graph = extracted.tree_to_graph.clone();
    let mut kl_net = klex_core::ss::network(extracted.tree.clone(), kl_cfg, |tree_id| {
        driver_for(tree_to_graph[tree_id])
    });
    let mut kl_activations = 0u64;
    let mut legitimate_for = 0u64;
    let mut kl_ok = false;
    while kl_activations < budget.kl_max_steps {
        kl_net.step(sched);
        kl_activations += 1;
        if is_legitimate(&kl_net, &kl_cfg) {
            legitimate_for += 1;
            if legitimate_for >= budget.kl_window {
                kl_ok = true;
                break;
            }
        } else {
            legitimate_for = 0;
        }
    }
    if !kl_ok {
        return Err(CompositionError::ExclusionDidNotStabilize { spent: kl_activations });
    }

    Ok(Composition {
        extracted,
        st_activations,
        st_messages,
        kl_activations,
        network: kl_net,
        kl_config: kl_cfg,
    })
}

/// Convenience wrapper: default spanning-tree configuration and budget for the graph's size.
pub fn compose_with_defaults(
    graph: RootedGraph,
    kl_cfg: KlConfig,
    driver_for: impl FnMut(NodeId) -> BoxedDriver,
    sched: &mut impl Scheduler,
) -> Result<Composition, CompositionError> {
    let st_cfg = StConfig::for_graph(&graph);
    let budget = CompositionBudget::for_size(graph.len());
    compose(graph, st_cfg, kl_cfg, driver_for, sched, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use klex_core::count_tokens;
    use topology::Topology;
    use treenet::app::{AppDriver, Idle};
    use treenet::{RandomFair, RoundRobin};

    /// Requests one unit forever, releasing the critical section immediately.
    #[derive(Clone, Copy)]
    struct One;
    impl AppDriver for One {
        fn next_request(&mut self, _n: NodeId, _t: u64) -> Option<usize> {
            Some(1)
        }
        fn release_cs(&mut self, _n: NodeId, _t: u64, _e: u64) -> bool {
            true
        }
    }

    #[test]
    fn composition_stabilizes_on_a_random_general_network() {
        let graph = RootedGraph::random_connected(12, 8, 21);
        let kl_cfg = KlConfig::new(2, 4, 12);
        let mut sched = RandomFair::new(3);
        let composition =
            compose_with_defaults(graph, kl_cfg, |_| Box::new(One) as BoxedDriver, &mut sched)
                .expect("composition must stabilize");
        assert!(composition.st_activations > 0);
        assert!(composition.kl_activations > 0);
        assert!(is_legitimate(&composition.network, &kl_cfg));
        assert!(count_tokens(&composition.network).matches(4));
    }

    #[test]
    fn composition_serves_requests_after_stabilization() {
        let graph = RootedGraph::random_connected(8, 5, 4);
        let kl_cfg = KlConfig::new(1, 2, 8);
        let mut sched = RandomFair::new(11);
        let mut composition =
            compose_with_defaults(graph, kl_cfg, |_| Box::new(One) as BoxedDriver, &mut sched)
                .expect("composition must stabilize");
        let before = composition.network.trace().cs_entries(None);
        for _ in 0..60_000 {
            composition.network.step(&mut sched);
        }
        let after = composition.network.trace().cs_entries(None);
        assert!(
            after > before + 50,
            "the composed system must keep serving critical sections ({before} -> {after})"
        );
    }

    #[test]
    fn composition_on_a_tree_shaped_graph_matches_direct_execution() {
        // When the general network is already a tree, the extracted tree must be that tree
        // (same depths) and the composition reduces to the plain protocol.
        let graph = RootedGraph::new(5, 0, &[(0, 1), (0, 2), (1, 3), (1, 4)]);
        let expected_depths = graph.bfs_distances();
        let kl_cfg = KlConfig::new(1, 2, 5);
        let mut sched = RoundRobin::new();
        let composition =
            compose_with_defaults(graph, kl_cfg, |_| Box::new(Idle) as BoxedDriver, &mut sched)
                .expect("composition must stabilize");
        assert_eq!(composition.extracted.depths, expected_depths);
        assert_eq!(composition.extracted.tree.len(), 5);
    }

    #[test]
    fn budget_exhaustion_is_reported_not_panicked() {
        let graph = RootedGraph::random_connected(10, 6, 9);
        let st_cfg = StConfig::for_graph(&graph);
        let kl_cfg = KlConfig::new(1, 2, 10);
        let mut sched = RoundRobin::new();
        let tight = CompositionBudget { st_max_steps: 5, st_window: 3, kl_max_steps: 5, kl_window: 3 };
        let err = match compose(
            graph,
            st_cfg,
            kl_cfg,
            |_| Box::new(Idle) as BoxedDriver,
            &mut sched,
            tight,
        ) {
            Ok(_) => panic!("a 5-activation budget cannot stabilize a 10-node graph"),
            Err(err) => err,
        };
        assert!(matches!(err, CompositionError::SpanningTreeDidNotStabilize { .. }));
        assert!(err.to_string().contains("spanning tree"));
    }
}
