//! A self-stabilizing BFS spanning-tree protocol for rooted message-passing networks.
//!
//! The paper's conclusion observes that the k-out-of-ℓ exclusion protocol extends from
//! oriented trees to *arbitrary rooted networks* "by running the protocol concurrently with a
//! spanning tree construction (for message passing systems), such as given in [1, 4]".  This
//! module provides that substrate: a distributed, self-stabilizing construction of a
//! breadth-first spanning tree over a [`RootedGraph`], in the same computation model as the
//! exclusion protocol (asynchronous message passing, reliable FIFO channels, bounded local
//! memory).  It is a faithful realisation of the classic beacon/distance scheme rather than a
//! line-by-line reproduction of \[1\] or \[4\] (neither is reproduced in the paper either).
//!
//! # How it works
//!
//! Every process keeps a distance estimate `dist ∈ [0 .. n]` (`n` acts as the "infinity" of
//! the bounded domain), a parent channel, and its last-heard estimate for every neighbour.
//! The root pins `dist = 0`.  Periodically — every [`StConfig::beacon_interval`] of its own
//! activations, and additionally whenever its estimate changes — a process sends a
//! [`Beacon`] carrying its current `dist` on every incident channel.  On receiving a beacon a
//! process updates the stored estimate for that neighbour and recomputes
//! `dist = min(n, 1 + min over neighbours)` with the parent being the smallest-labelled
//! minimising channel.
//!
//! Starting from *any* state (arbitrary `dist`/`view`/`parent` values, arbitrary beacons in
//! channels), once every process has broadcast at least once every stored view entry is a
//! value actually announced by the corresponding neighbour; from then on the estimates
//! converge level by level exactly as in distributed Bellman–Ford with a bounded domain, and
//! after O(n) beacon rounds every `dist` equals the true BFS distance and every parent points
//! one level up — a breadth-first spanning tree (verified exhaustively in the tests and
//! measured in experiment E11).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use topology::{RootedGraph, Topology};
use treenet::{
    ArbitraryMessage, ChannelLabel, Context, Corruptible, MessageKind, Network, NodeId, Process,
};

/// The single message type of the spanning-tree protocol: "my current distance estimate".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Beacon {
    /// The sender's distance estimate at the time of sending.
    pub dist: usize,
}

impl MessageKind for Beacon {
    fn kind(&self) -> &'static str {
        "beacon"
    }
}

impl ArbitraryMessage for Beacon {
    fn arbitrary(rng: &mut StdRng) -> Self {
        Beacon { dist: rng.gen_range(0..64) }
    }
}

/// Parameters of the spanning-tree protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StConfig {
    /// Number of processes (used as the bounded "infinity" of the distance domain).
    pub n: usize,
    /// A process re-broadcasts its estimate every `beacon_interval` of its own activations
    /// even when nothing changed.  Must be at least the maximum degree for the periodic
    /// traffic to stay within the network's delivery capacity (one message per activation).
    pub beacon_interval: u64,
}

impl StConfig {
    /// A configuration for `graph`: the distance bound is the node count and the beacon
    /// interval defaults to `2 · max degree + 2`.
    pub fn for_graph(graph: &RootedGraph) -> Self {
        let max_degree = (0..graph.len()).map(|v| graph.degree(v)).max().unwrap_or(1);
        StConfig { n: graph.len(), beacon_interval: 2 * max_degree as u64 + 2 }
    }

    /// Overrides the beacon interval (clamped to at least 1).
    pub fn with_beacon_interval(mut self, interval: u64) -> Self {
        self.beacon_interval = interval.max(1);
        self
    }

    /// The sentinel value standing for "unreachable / unknown" in the bounded distance domain.
    pub fn infinity(&self) -> usize {
        self.n
    }
}

/// A process of the self-stabilizing spanning-tree protocol.
pub struct StNode {
    cfg: StConfig,
    is_root: bool,
    degree: usize,
    /// Current distance estimate, `0` for the root, `cfg.infinity()` when unknown.
    pub dist: usize,
    /// Channel towards the current parent (`None` for the root or while unknown).
    pub parent: Option<ChannelLabel>,
    /// Last distance heard from each neighbour (indexed by channel label).
    pub view: Vec<usize>,
    ticks: u64,
    last_broadcast: u64,
    started: bool,
}

impl StNode {
    /// Creates the process for `node` with `degree` incident channels.
    pub fn new(node: NodeId, root: NodeId, degree: usize, cfg: StConfig) -> Self {
        let is_root = node == root;
        StNode {
            is_root,
            degree,
            dist: if is_root { 0 } else { cfg.infinity() },
            parent: None,
            view: vec![cfg.infinity(); degree],
            ticks: 0,
            last_broadcast: 0,
            started: false,
            cfg,
        }
    }

    /// The configuration this node runs with.
    pub fn config(&self) -> &StConfig {
        &self.cfg
    }

    /// True for the distinguished root.
    pub fn is_root(&self) -> bool {
        self.is_root
    }

    /// Recomputes `dist`/`parent` from the stored neighbour estimates.  Returns true when the
    /// estimate changed.
    fn recompute(&mut self) -> bool {
        if self.is_root {
            let changed = self.dist != 0 || self.parent.is_some();
            self.dist = 0;
            self.parent = None;
            return changed;
        }
        let infinity = self.cfg.infinity();
        let mut best = infinity;
        let mut best_label = None;
        for (label, &d) in self.view.iter().enumerate() {
            if d < best {
                best = d;
                best_label = Some(label);
            }
        }
        let (new_dist, new_parent) = if best >= infinity {
            (infinity, None)
        } else {
            ((best + 1).min(infinity), best_label)
        };
        let changed = new_dist != self.dist || new_parent != self.parent;
        self.dist = new_dist;
        self.parent = new_parent;
        changed
    }

    fn broadcast(&mut self, ctx: &mut Context<'_, Beacon>) {
        for label in 0..self.degree {
            ctx.send(label, Beacon { dist: self.dist });
        }
        self.last_broadcast = self.ticks;
    }
}

impl Process for StNode {
    type Msg = Beacon;

    fn on_message(&mut self, from: ChannelLabel, msg: Beacon, ctx: &mut Context<'_, Beacon>) {
        let infinity = self.cfg.infinity();
        self.view[from] = msg.dist.min(infinity);
        if self.recompute() {
            // Estimate changed: announce it right away so corrections propagate in O(diameter)
            // message hops instead of waiting for the next periodic beacon.
            self.broadcast(ctx);
        }
    }

    fn on_tick(&mut self, ctx: &mut Context<'_, Beacon>) {
        self.ticks += 1;
        self.recompute();
        let due = self.ticks.saturating_sub(self.last_broadcast) >= self.cfg.beacon_interval;
        if !self.started || due {
            self.started = true;
            self.broadcast(ctx);
        }
    }
}

impl Corruptible for StNode {
    fn corrupt(&mut self, rng: &mut StdRng) {
        let infinity = self.cfg.infinity();
        self.dist = rng.gen_range(0..=infinity);
        self.parent = if self.degree > 0 && rng.gen_bool(0.5) {
            Some(rng.gen_range(0..self.degree))
        } else {
            None
        };
        for v in self.view.iter_mut() {
            *v = rng.gen_range(0..=infinity);
        }
        self.last_broadcast = self.ticks;
    }
}

/// Builds a spanning-tree network over `graph` with the given configuration.
pub fn network(graph: RootedGraph, cfg: StConfig) -> Network<StNode, RootedGraph> {
    let root = graph.root();
    let degrees: Vec<usize> = (0..graph.len()).map(|v| graph.degree(v)).collect();
    Network::new(graph, |id| StNode::new(id, root, degrees[id], cfg))
}

/// Builds a spanning-tree network with the default configuration for `graph`.
pub fn network_with_defaults(graph: RootedGraph) -> Network<StNode, RootedGraph> {
    let cfg = StConfig::for_graph(&graph);
    network(graph, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{distances_are_exact, parent_map};
    use rand::SeedableRng;
    use treenet::{RandomFair, RoundRobin, Scheduler};

    fn run(net: &mut Network<StNode, RootedGraph>, sched: &mut impl Scheduler, steps: u64) {
        for _ in 0..steps {
            net.step(sched);
        }
    }

    #[test]
    fn converges_to_bfs_distances_on_a_diamond() {
        let graph = RootedGraph::new(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3), (1, 2)]);
        let mut net = network_with_defaults(graph);
        let mut sched = RoundRobin::new();
        run(&mut net, &mut sched, 4_000);
        assert!(distances_are_exact(&net));
        // Node 3 is at distance 2, through either node 1 or node 2.
        assert_eq!(net.node(3).dist, 2);
        let parents = parent_map(&net);
        assert!(matches!(parents[3], Some(1) | Some(2)));
        assert_eq!(parents[0], None);
    }

    #[test]
    fn converges_on_random_graphs_under_a_random_scheduler() {
        for seed in 0..4u64 {
            let graph = RootedGraph::random_connected(20, 12, seed);
            let expected = graph.bfs_distances();
            let mut net = network_with_defaults(graph);
            let mut sched = RandomFair::new(seed * 7 + 1);
            run(&mut net, &mut sched, 200_000);
            for v in 0..net.len() {
                assert_eq!(net.node(v).dist, expected[v], "node {v}, seed {seed}");
            }
        }
    }

    #[test]
    fn recovers_from_corrupted_local_state() {
        let graph = RootedGraph::random_connected(12, 6, 3);
        let mut net = network_with_defaults(graph);
        let mut sched = RoundRobin::new();
        run(&mut net, &mut sched, 20_000);
        assert!(distances_are_exact(&net));
        // Corrupt every process's spanning-tree state, then let the protocol re-stabilize.
        let mut rng = StdRng::seed_from_u64(99);
        for v in 0..net.len() {
            net.node_mut(v).corrupt(&mut rng);
        }
        run(&mut net, &mut sched, 40_000);
        assert!(distances_are_exact(&net), "the protocol must re-converge after corruption");
    }

    #[test]
    fn recovers_from_arbitrary_channel_garbage() {
        let graph = RootedGraph::random_connected(10, 5, 8);
        let mut net = network_with_defaults(graph);
        // Stuff every channel with arbitrary beacons before running.
        let mut rng = StdRng::seed_from_u64(5);
        for v in 0..net.len() {
            for l in 0..net.topology().degree(v) {
                for _ in 0..3 {
                    let junk = Beacon::arbitrary(&mut rng);
                    net.inject_into(v, l, junk);
                }
            }
        }
        let mut sched = RandomFair::new(17);
        run(&mut net, &mut sched, 150_000);
        assert!(distances_are_exact(&net));
    }

    #[test]
    fn periodic_beacons_keep_channel_occupancy_bounded() {
        let graph = RootedGraph::random_connected(16, 10, 2);
        let mut net = network_with_defaults(graph);
        let mut sched = RoundRobin::new();
        let mut max_in_flight = 0;
        for _ in 0..30_000 {
            net.step(&mut sched);
            max_in_flight = max_in_flight.max(net.in_flight());
        }
        // The round-robin scheduler delivers one message per activation when available; the
        // rate-limited beacons must not outpace it by more than a small constant per channel.
        let channels = net.topology().directed_channels();
        assert!(
            max_in_flight <= 4 * channels,
            "in-flight messages grew to {max_in_flight} for {channels} channels"
        );
    }

    #[test]
    fn root_pins_distance_zero_even_after_corruption() {
        let graph = RootedGraph::new(3, 0, &[(0, 1), (1, 2)]);
        let cfg = StConfig::for_graph(&graph);
        let mut net = network(graph, cfg);
        let mut rng = StdRng::seed_from_u64(1);
        net.node_mut(0).corrupt(&mut rng);
        let mut sched = RoundRobin::new();
        run(&mut net, &mut sched, 50);
        assert_eq!(net.node(0).dist, 0);
        assert_eq!(net.node(0).parent, None);
    }

    #[test]
    fn config_defaults_scale_with_degree() {
        let star = RootedGraph::new(5, 0, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let cfg = StConfig::for_graph(&star);
        assert_eq!(cfg.infinity(), 5);
        assert_eq!(cfg.beacon_interval, 2 * 4 + 2);
        assert_eq!(cfg.with_beacon_interval(0).beacon_interval, 1);
    }
}
