//! `stree` — self-stabilizing spanning-tree construction and its composition with the
//! k-out-of-ℓ exclusion protocol.
//!
//! The paper proves its protocol for *oriented trees* and notes in the conclusion that the
//! extension to arbitrary rooted networks "is trivial; it consists of running the protocol
//! concurrently with a spanning tree construction (for message passing systems), such as
//! given in [1, 4]".  This crate builds that missing substrate and realises the extension:
//!
//! * [`protocol`] — a distributed, self-stabilizing BFS spanning-tree construction over a
//!   [`topology::RootedGraph`], in the same asynchronous message-passing model (reliable FIFO
//!   channels, bounded per-process memory) as the exclusion protocol;
//! * [`extract`] — turning the stabilized parent pointers into the [`topology::OrientedTree`]
//!   (parent = channel 0) that [`klex_core::ss`] expects, with graph ↔ tree id mappings;
//! * [`composed`] — the layered composition: stabilize the tree, then stabilize the exclusion
//!   protocol on it, reporting both costs (experiment E11) and returning the live network.
//!
//! # Quickstart
//!
//! ```
//! use stree::composed::compose_with_defaults;
//! use topology::RootedGraph;
//! use treenet::RandomFair;
//!
//! // 2-out-of-3 exclusion on a random general network of 8 processes.
//! let graph = RootedGraph::random_connected(8, 5, 7);
//! let kl = klex_core::KlConfig::new(2, 3, 8);
//! let mut sched = RandomFair::new(1);
//! let composition = compose_with_defaults(
//!     graph,
//!     kl,
//!     |_| Box::new(treenet::app::Idle) as treenet::app::BoxedDriver,
//!     &mut sched,
//! )
//! .expect("stabilizes");
//! assert!(klex_core::is_legitimate(&composition.network, &kl));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod composed;
pub mod extract;
pub mod protocol;

pub use composed::{compose, compose_with_defaults, Composition, CompositionBudget, CompositionError};
pub use extract::{distances_are_exact, extract_tree, parent_map, parents_form_tree, ExtractedTree};
pub use protocol::{network, network_with_defaults, Beacon, StConfig, StNode};
