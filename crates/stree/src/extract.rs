//! Reading the constructed spanning tree out of a stabilized network.
//!
//! Once the [`crate::protocol`] has stabilized, every process's `parent` channel points one
//! hop closer to the root.  These helpers turn that distributed state into the
//! [`OrientedTree`] the k-out-of-ℓ exclusion protocol runs on (with the paper's labelling
//! convention: the parent channel of every non-root process becomes channel `0`), together
//! with the node-id mappings between the graph and the tree.

use crate::protocol::StNode;
use topology::{OrientedTree, RootedGraph, Topology};
use treenet::{Network, NodeId};

/// The spanning tree extracted from a stabilized spanning-tree network.
#[derive(Clone, Debug)]
pub struct ExtractedTree {
    /// The oriented tree, re-indexed so its root is node `0` (the tree type's convention).
    pub tree: OrientedTree,
    /// `graph_to_tree[graph_id] = tree_id`.
    pub graph_to_tree: Vec<NodeId>,
    /// `tree_to_graph[tree_id] = graph_id`.
    pub tree_to_graph: Vec<NodeId>,
    /// BFS depth of every graph node according to the extracted tree.
    pub depths: Vec<usize>,
}

/// The parent (as a graph node id) each process currently points to; `None` for the root and
/// for processes whose distance estimate is still the domain's "infinity".
pub fn parent_map(net: &Network<StNode, RootedGraph>) -> Vec<Option<NodeId>> {
    (0..net.len())
        .map(|v| {
            let node = net.node(v);
            if node.is_root() || node.dist >= node.config().infinity() {
                None
            } else {
                node.parent.map(|label| net.topology().endpoint(v, label).0)
            }
        })
        .collect()
}

/// True when every process's distance estimate equals its true BFS distance from the root —
/// the ground-truth stabilization criterion used by tests and experiments (an external
/// observer's view; the processes themselves never need it).
pub fn distances_are_exact(net: &Network<StNode, RootedGraph>) -> bool {
    let expected = net.topology().bfs_distances();
    (0..net.len()).all(|v| net.node(v).dist == expected[v])
}

/// True when the current parent pointers form a spanning tree of the graph in which every
/// parent is strictly closer to the root (a *consistent* tree, not necessarily the BFS one).
pub fn parents_form_tree(net: &Network<StNode, RootedGraph>) -> bool {
    let parents = parent_map(net);
    let n = parents.len();
    let root = net.topology().root();
    if parents[root].is_some() {
        return false;
    }
    // Every non-root node needs a parent, and following parents must reach the root within n
    // steps (no cycles).
    for v in 0..n {
        if v != root && parents[v].is_none() {
            return false;
        }
        let mut cursor = v;
        let mut hops = 0;
        while cursor != root {
            match parents[cursor] {
                Some(p) => cursor = p,
                None => return false,
            }
            hops += 1;
            if hops > n {
                return false;
            }
        }
    }
    true
}

/// Extracts the constructed spanning tree, or `None` while the parent pointers do not yet form
/// a tree.
///
/// The returned [`OrientedTree`] follows the tree type's conventions (root re-indexed to node
/// `0`, children ordered by ascending id, parent channel labelled `0`), which is exactly what
/// [`klex_core::ss::network`] expects; the id mappings let callers translate between graph
/// process ids and tree process ids.
pub fn extract_tree(net: &Network<StNode, RootedGraph>) -> Option<ExtractedTree> {
    if !parents_form_tree(net) {
        return None;
    }
    let parents = parent_map(net);
    let n = parents.len();
    let root = net.topology().root();
    let tree = OrientedTree::from_parents(&parents);
    // Same re-indexing rule as `OrientedTree::from_parents` and `RootedGraph::spanning_tree`:
    // the root becomes 0, every other node keeps its relative order.
    let mut graph_to_tree = vec![0usize; n];
    let mut next = 1usize;
    for v in 0..n {
        if v == root {
            graph_to_tree[v] = 0;
        } else {
            graph_to_tree[v] = next;
            next += 1;
        }
    }
    let mut tree_to_graph = vec![0usize; n];
    for (graph_id, &tree_id) in graph_to_tree.iter().enumerate() {
        tree_to_graph[tree_id] = graph_id;
    }
    let depths = (0..n).map(|v| tree.depth(graph_to_tree[v])).collect();
    Some(ExtractedTree { tree, graph_to_tree, tree_to_graph, depths })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{network_with_defaults, StConfig};
    use treenet::RoundRobin;

    fn stabilized(graph: RootedGraph) -> Network<StNode, RootedGraph> {
        let mut net = network_with_defaults(graph);
        let mut sched = RoundRobin::new();
        for _ in 0..100_000 {
            net.step(&mut sched);
            if distances_are_exact(&net) && parents_form_tree(&net) {
                break;
            }
        }
        net
    }

    #[test]
    fn extraction_yields_a_bfs_tree_with_consistent_mappings() {
        let graph = RootedGraph::random_connected(18, 10, 11);
        let expected = graph.bfs_distances();
        let net = stabilized(graph);
        let extracted = extract_tree(&net).expect("stabilized network must yield a tree");
        assert_eq!(extracted.tree.len(), net.len());
        for v in 0..net.len() {
            assert_eq!(extracted.depths[v], expected[v], "depth of graph node {v}");
            assert_eq!(extracted.tree_to_graph[extracted.graph_to_tree[v]], v);
        }
        assert!(extracted.tree.is_root(extracted.graph_to_tree[net.topology().root()]));
    }

    #[test]
    fn extraction_respects_a_non_zero_root() {
        let graph = RootedGraph::new(4, 2, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let net = stabilized(graph);
        let extracted = extract_tree(&net).expect("cycle graph must stabilize");
        assert_eq!(extracted.graph_to_tree[2], 0, "the graph root maps to tree node 0");
        assert_eq!(extracted.depths[2], 0);
        // In a 4-cycle rooted at node 2, the opposite node (0) is at distance 2.
        assert_eq!(extracted.depths[0], 2);
    }

    #[test]
    fn unconverged_network_does_not_extract() {
        let graph = RootedGraph::random_connected(10, 4, 1);
        let net = network_with_defaults(graph);
        // Freshly built: every non-root distance is "infinity", no parents yet.
        assert!(!parents_form_tree(&net));
        assert!(extract_tree(&net).is_none());
    }

    #[test]
    fn parents_form_tree_rejects_cycles() {
        let graph = RootedGraph::new(4, 0, &[(0, 1), (1, 2), (2, 3), (3, 1)]);
        let cfg = StConfig::for_graph(&graph);
        let mut net = crate::protocol::network(graph, cfg);
        // Hand-craft a cyclic parent structure among nodes 1, 2, 3.
        net.node_mut(1).dist = 1;
        net.node_mut(1).parent = Some(1); // 1 -> 2 (its channel 1 leads to node 2)
        net.node_mut(2).dist = 2;
        net.node_mut(2).parent = Some(1); // 2 -> 3
        net.node_mut(3).dist = 3;
        net.node_mut(3).parent = Some(1); // 3 -> 1
        assert!(!parents_form_tree(&net));
    }
}
