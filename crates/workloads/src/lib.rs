//! `workloads` — application drivers for k-out-of-ℓ exclusion experiments.
//!
//! A workload decides, per process, *when* resource units are requested, *how many*, and *how
//! long* the critical section lasts — i.e. it plays the role of the "application" in the
//! paper's interface (`State: Out → Req` transitions and the `ReleaseCS()` predicate).
//!
//! All drivers are deterministic functions of their construction parameters and seed, so
//! every experiment is reproducible.
//!
//! | Driver | Behaviour | Used by |
//! |---|---|---|
//! | [`Saturated`] | always requesting a fixed number of units | waiting-time worst cases (Theorem 2) |
//! | [`UniformRandom`] | requests with probability `p` per tick, uniform size `1..=max units` | throughput sweeps |
//! | [`Hotspot`] | a few hot nodes request large amounts frequently, others rarely | contention studies |
//! | [`Bursty`] | alternating active/idle phases | convergence under load swings |
//! | [`Heterogeneous`] | a fixed per-node request size | Figure 2 / Figure 3 scenarios |
//! | [`Scripted`] | an explicit list of (time, units, hold) requests | exact figure reproductions |
//! | [`PinnedInCs`] | requests once and never releases | (k,ℓ)-liveness experiments |
//! | [`SkewedNeeds`] | heterogeneous request sizes, geometrically skewed toward 1 unit | the intro's mixed audio/video-bandwidth motivation |
//! | [`ThinkTime`] | closed loop: request, hold, then think for a random interval | steady-state service studies |
//! | [`Cyclic`] | deterministic cycle over a list of `(units, hold)` pairs | regression tests and exact schedules |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use treenet::app::{AppDriver, BoxedDriver};
use treenet::NodeId;

/// Always requesting `units`, holding each critical section for `hold` activations.
///
/// This is the saturation workload of the waiting-time analysis: every process other than the
/// observed one always has an outstanding request.
#[derive(Clone, Debug)]
pub struct Saturated {
    /// Units requested every time.
    pub units: usize,
    /// Critical-section duration in activations.
    pub hold: u64,
}

impl AppDriver for Saturated {
    fn next_request(&mut self, _node: NodeId, _now: u64) -> Option<usize> {
        Some(self.units)
    }
    fn release_cs(&mut self, _node: NodeId, now: u64, entered_at: u64) -> bool {
        now.saturating_sub(entered_at) >= self.hold
    }
}

/// Requests with probability `p_request` on each tick; request sizes are uniform in
/// `1..=max_units`; critical sections last uniform `1..=max_hold` activations.
#[derive(Clone, Debug)]
pub struct UniformRandom {
    rng: StdRng,
    /// Per-tick probability of issuing a request while idle.
    pub p_request: f64,
    /// Largest request size drawn.
    pub max_units: usize,
    /// Longest critical-section duration drawn.
    pub max_hold: u64,
    current_hold: u64,
}

impl UniformRandom {
    /// Creates a driver seeded by `seed` (distinct per node so streams are independent).
    pub fn new(seed: u64, p_request: f64, max_units: usize, max_hold: u64) -> Self {
        UniformRandom {
            rng: StdRng::seed_from_u64(seed),
            p_request: p_request.clamp(0.0, 1.0),
            max_units: max_units.max(1),
            max_hold: max_hold.max(1),
            current_hold: 1,
        }
    }
}

impl AppDriver for UniformRandom {
    fn next_request(&mut self, _node: NodeId, _now: u64) -> Option<usize> {
        if self.rng.gen_bool(self.p_request) {
            self.current_hold = self.rng.gen_range(1..=self.max_hold);
            Some(self.rng.gen_range(1..=self.max_units))
        } else {
            None
        }
    }
    fn release_cs(&mut self, _node: NodeId, now: u64, entered_at: u64) -> bool {
        now.saturating_sub(entered_at) >= self.current_hold
    }
}

/// Hotspot workload: "hot" nodes behave like [`Saturated`]; all others request rarely.
#[derive(Clone, Debug)]
pub struct Hotspot {
    inner: UniformRandom,
    hot: bool,
    hot_units: usize,
    hot_hold: u64,
}

impl Hotspot {
    /// Creates the driver for one node; `hot` selects the aggressive behaviour.
    pub fn new(seed: u64, hot: bool, hot_units: usize, hot_hold: u64) -> Self {
        Hotspot { inner: UniformRandom::new(seed, 0.02, 1, hot_hold.max(1)), hot, hot_units, hot_hold }
    }
}

impl AppDriver for Hotspot {
    fn next_request(&mut self, node: NodeId, now: u64) -> Option<usize> {
        if self.hot {
            Some(self.hot_units)
        } else {
            self.inner.next_request(node, now)
        }
    }
    fn release_cs(&mut self, node: NodeId, now: u64, entered_at: u64) -> bool {
        if self.hot {
            now.saturating_sub(entered_at) >= self.hot_hold
        } else {
            self.inner.release_cs(node, now, entered_at)
        }
    }
}

/// Bursty workload: alternates between an *active* phase (behaves like [`Saturated`]) and an
/// *idle* phase (no requests), with configurable phase lengths.
#[derive(Clone, Debug)]
pub struct Bursty {
    /// Units requested during active phases.
    pub units: usize,
    /// Critical-section duration.
    pub hold: u64,
    /// Length of the active phase, in activations.
    pub active_len: u64,
    /// Length of the idle phase, in activations.
    pub idle_len: u64,
    /// Phase offset so different nodes do not burst in lockstep.
    pub offset: u64,
}

impl AppDriver for Bursty {
    fn next_request(&mut self, _node: NodeId, now: u64) -> Option<usize> {
        let period = self.active_len + self.idle_len;
        if period == 0 {
            return None;
        }
        let phase = (now + self.offset) % period;
        if phase < self.active_len {
            Some(self.units)
        } else {
            None
        }
    }
    fn release_cs(&mut self, _node: NodeId, now: u64, entered_at: u64) -> bool {
        now.saturating_sub(entered_at) >= self.hold
    }
}

/// A fixed request size per node, repeated forever; `0` units means the node never requests.
///
/// This is the driver behind the paper's figure scenarios (e.g. needs 3/2/2/2 in Figure 2).
#[derive(Clone, Debug)]
pub struct Heterogeneous {
    /// Units requested every time (0 = never request).
    pub units: usize,
    /// Critical-section duration.
    pub hold: u64,
}

impl AppDriver for Heterogeneous {
    fn next_request(&mut self, _node: NodeId, _now: u64) -> Option<usize> {
        if self.units == 0 {
            None
        } else {
            Some(self.units)
        }
    }
    fn release_cs(&mut self, _node: NodeId, now: u64, entered_at: u64) -> bool {
        now.saturating_sub(entered_at) >= self.hold
    }
}

/// An explicit script of requests: each entry is `(not_before, units, hold)`; the next entry
/// fires at the first tick at or after `not_before` once the previous critical section is
/// over.  After the script is exhausted the node stays idle.
#[derive(Clone, Debug)]
pub struct Scripted {
    script: Vec<(u64, usize, u64)>,
    next: usize,
    current_hold: u64,
}

impl Scripted {
    /// Creates a scripted driver from `(not_before, units, hold)` entries (must be sorted by
    /// `not_before`).
    pub fn new(script: Vec<(u64, usize, u64)>) -> Self {
        Scripted { script, next: 0, current_hold: 0 }
    }
}

impl AppDriver for Scripted {
    fn next_request(&mut self, _node: NodeId, now: u64) -> Option<usize> {
        if let Some(&(at, units, hold)) = self.script.get(self.next) {
            if now >= at {
                self.next += 1;
                self.current_hold = hold;
                return Some(units);
            }
        }
        None
    }
    fn release_cs(&mut self, _node: NodeId, now: u64, entered_at: u64) -> bool {
        now.saturating_sub(entered_at) >= self.current_hold
    }
}

/// Requests `units` once and never releases the critical section.
///
/// Used by the (k,ℓ)-liveness experiment: the paper's efficiency property considers a set `I`
/// of processes that execute their critical sections forever.
#[derive(Clone, Debug)]
pub struct PinnedInCs {
    /// Units requested (and then held forever).
    pub units: usize,
    fired: bool,
}

impl PinnedInCs {
    /// Creates the driver.
    pub fn new(units: usize) -> Self {
        PinnedInCs { units, fired: false }
    }
}

impl AppDriver for PinnedInCs {
    fn next_request(&mut self, _node: NodeId, _now: u64) -> Option<usize> {
        if self.fired {
            None
        } else {
            self.fired = true;
            Some(self.units)
        }
    }
    fn release_cs(&mut self, _node: NodeId, _now: u64, _entered_at: u64) -> bool {
        false
    }
}

/// Heterogeneous request sizes skewed toward small requests: a request of `1 + g` units where
/// `g` is geometrically distributed (`P[g = i] ∝ (1 − bias)^i`), truncated at `max_units`.
///
/// This models the paper's motivating workload — most requests are small (one IP address, an
/// audio stream) with an occasional large one (a video stream asking for several bandwidth
/// units) — without saturating the network: the node requests with probability `p_request`
/// per tick, like [`UniformRandom`].
#[derive(Clone, Debug)]
pub struct SkewedNeeds {
    rng: StdRng,
    /// Per-tick probability of issuing a request while idle.
    pub p_request: f64,
    /// Largest request size drawn.
    pub max_units: usize,
    /// Skew parameter in `(0, 1)`: larger values concentrate the distribution on 1 unit.
    pub bias: f64,
    /// Critical-section duration.
    pub hold: u64,
}

impl SkewedNeeds {
    /// Creates a driver seeded by `seed`.
    pub fn new(seed: u64, p_request: f64, max_units: usize, bias: f64, hold: u64) -> Self {
        SkewedNeeds {
            rng: StdRng::seed_from_u64(seed),
            p_request: p_request.clamp(0.0, 1.0),
            max_units: max_units.max(1),
            bias: bias.clamp(0.05, 0.95),
            hold: hold.max(1),
        }
    }

    fn draw_units(&mut self) -> usize {
        let mut units = 1;
        while units < self.max_units && !self.rng.gen_bool(self.bias) {
            units += 1;
        }
        units
    }
}

impl AppDriver for SkewedNeeds {
    fn next_request(&mut self, _node: NodeId, _now: u64) -> Option<usize> {
        if self.rng.gen_bool(self.p_request) {
            Some(self.draw_units())
        } else {
            None
        }
    }
    fn release_cs(&mut self, _node: NodeId, now: u64, entered_at: u64) -> bool {
        now.saturating_sub(entered_at) >= self.hold
    }
}

/// Closed-loop workload with think time: request `units`, hold the critical section for
/// `hold` activations, then stay idle for a uniformly random think time in
/// `[min_think, max_think]` before the next request.
///
/// Unlike [`Saturated`] (which re-requests immediately), this keeps a bounded, tunable load on
/// the system and is the natural steady-state workload for throughput measurements.
#[derive(Clone, Debug)]
pub struct ThinkTime {
    rng: StdRng,
    /// Units requested every time.
    pub units: usize,
    /// Critical-section duration.
    pub hold: u64,
    /// Shortest think time.
    pub min_think: u64,
    /// Longest think time.
    pub max_think: u64,
    /// Tick at which the current think period ends.
    next_request_at: u64,
}

impl ThinkTime {
    /// Creates a driver seeded by `seed`; the first request fires on the first tick.
    pub fn new(seed: u64, units: usize, hold: u64, min_think: u64, max_think: u64) -> Self {
        let max_think = max_think.max(min_think);
        ThinkTime {
            rng: StdRng::seed_from_u64(seed),
            units: units.max(1),
            hold,
            min_think,
            max_think,
            next_request_at: 0,
        }
    }
}

impl AppDriver for ThinkTime {
    fn next_request(&mut self, _node: NodeId, now: u64) -> Option<usize> {
        if now < self.next_request_at {
            return None;
        }
        Some(self.units)
    }
    fn release_cs(&mut self, _node: NodeId, now: u64, entered_at: u64) -> bool {
        if now.saturating_sub(entered_at) >= self.hold {
            let think = self.rng.gen_range(self.min_think..=self.max_think);
            self.next_request_at = now + think;
            true
        } else {
            false
        }
    }
}

/// Deterministic cycle over `(units, hold)` pairs: the i-th request asks for `pairs[i % len]`.
///
/// Useful for regression tests that need an exactly reproducible, non-uniform request
/// schedule without any randomness.
#[derive(Clone, Debug)]
pub struct Cyclic {
    pairs: Vec<(usize, u64)>,
    next: usize,
    current_hold: u64,
}

impl Cyclic {
    /// Creates the driver.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty.
    pub fn new(pairs: Vec<(usize, u64)>) -> Self {
        assert!(!pairs.is_empty(), "a cyclic workload needs at least one (units, hold) pair");
        Cyclic { pairs, next: 0, current_hold: 0 }
    }
}

impl AppDriver for Cyclic {
    fn next_request(&mut self, _node: NodeId, _now: u64) -> Option<usize> {
        let (units, hold) = self.pairs[self.next % self.pairs.len()];
        self.next += 1;
        self.current_hold = hold;
        Some(units)
    }
    fn release_cs(&mut self, _node: NodeId, now: u64, entered_at: u64) -> bool {
        now.saturating_sub(entered_at) >= self.current_hold
    }
}

/// Convenience: a driver factory assigning every node the same saturated workload.
pub fn all_saturated(units: usize, hold: u64) -> impl FnMut(NodeId) -> BoxedDriver {
    move |_| Box::new(Saturated { units, hold }) as BoxedDriver
}

/// Convenience: a driver factory assigning every node an independent [`UniformRandom`]
/// workload derived from `seed`.
pub fn all_uniform(
    seed: u64,
    p_request: f64,
    max_units: usize,
    max_hold: u64,
) -> impl FnMut(NodeId) -> BoxedDriver {
    move |node| {
        Box::new(UniformRandom::new(
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(node as u64),
            p_request,
            max_units,
            max_hold,
        )) as BoxedDriver
    }
}

/// Convenience: per-node request sizes from a table; nodes beyond the table stay idle.
pub fn from_needs(needs: &[usize], hold: u64) -> impl FnMut(NodeId) -> BoxedDriver + '_ {
    move |node| {
        let units = needs.get(node).copied().unwrap_or(0);
        Box::new(Heterogeneous { units, hold }) as BoxedDriver
    }
}

/// Convenience: a driver factory assigning every node an independent [`SkewedNeeds`] workload
/// derived from `seed`.
pub fn all_skewed(
    seed: u64,
    p_request: f64,
    max_units: usize,
    bias: f64,
    hold: u64,
) -> impl FnMut(NodeId) -> BoxedDriver {
    move |node| {
        Box::new(SkewedNeeds::new(
            seed.wrapping_mul(0xA24B_AED4_963E_E407).wrapping_add(node as u64),
            p_request,
            max_units,
            bias,
            hold,
        )) as BoxedDriver
    }
}

/// Convenience: a driver factory assigning every node an independent [`ThinkTime`] workload
/// derived from `seed`.
pub fn all_think_time(
    seed: u64,
    units: usize,
    hold: u64,
    min_think: u64,
    max_think: u64,
) -> impl FnMut(NodeId) -> BoxedDriver {
    move |node| {
        Box::new(ThinkTime::new(
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(node as u64),
            units,
            hold,
            min_think,
            max_think,
        )) as BoxedDriver
    }
}

/// Convenience: the hotspot assignment used by contention studies — nodes listed in `hot`
/// saturate with `hot_units`-unit requests, all others request a single unit rarely.
pub fn hotspot_assignment(
    seed: u64,
    hot: &[NodeId],
    hot_units: usize,
    hot_hold: u64,
) -> impl FnMut(NodeId) -> BoxedDriver + '_ {
    move |node| {
        let is_hot = hot.contains(&node);
        Box::new(Hotspot::new(
            seed.wrapping_mul(0xD6E8_FEB8_6659_FD93).wrapping_add(node as u64),
            is_hot,
            hot_units,
            hot_hold,
        )) as BoxedDriver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturated_always_requests() {
        let mut d = Saturated { units: 3, hold: 7 };
        assert_eq!(d.next_request(0, 0), Some(3));
        assert_eq!(d.next_request(0, 100), Some(3));
        assert!(!d.release_cs(0, 5, 0));
        assert!(d.release_cs(0, 7, 0));
    }

    #[test]
    fn uniform_random_is_deterministic_and_bounded() {
        let collect = |seed| {
            let mut d = UniformRandom::new(seed, 0.5, 4, 10);
            (0..100).map(|t| d.next_request(1, t)).collect::<Vec<_>>()
        };
        assert_eq!(collect(3), collect(3));
        assert_ne!(collect(3), collect(4));
        let mut d = UniformRandom::new(9, 1.0, 4, 10);
        for t in 0..200 {
            let units = d.next_request(0, t).unwrap();
            assert!((1..=4).contains(&units));
        }
    }

    #[test]
    fn uniform_random_zero_probability_never_requests() {
        let mut d = UniformRandom::new(1, 0.0, 3, 5);
        assert!((0..100).all(|t| d.next_request(0, t).is_none()));
    }

    #[test]
    fn hotspot_hot_node_saturates() {
        let mut hot = Hotspot::new(1, true, 3, 5);
        let mut cold = Hotspot::new(1, false, 3, 5);
        assert_eq!(hot.next_request(0, 0), Some(3));
        let cold_requests = (0..100).filter(|&t| cold.next_request(1, t).is_some()).count();
        assert!(cold_requests < 20, "cold nodes request rarely");
    }

    #[test]
    fn bursty_alternates_phases() {
        let mut d = Bursty { units: 2, hold: 1, active_len: 10, idle_len: 10, offset: 0 };
        assert!(d.next_request(0, 0).is_some());
        assert!(d.next_request(0, 9).is_some());
        assert!(d.next_request(0, 10).is_none());
        assert!(d.next_request(0, 19).is_none());
        assert!(d.next_request(0, 20).is_some());
    }

    #[test]
    fn heterogeneous_zero_units_is_idle() {
        let mut d = Heterogeneous { units: 0, hold: 1 };
        assert!(d.next_request(0, 0).is_none());
        let mut d2 = Heterogeneous { units: 2, hold: 1 };
        assert_eq!(d2.next_request(0, 0), Some(2));
    }

    #[test]
    fn scripted_fires_in_order_then_stops() {
        let mut d = Scripted::new(vec![(5, 1, 2), (10, 3, 4)]);
        assert!(d.next_request(0, 0).is_none());
        assert_eq!(d.next_request(0, 6), Some(1));
        assert!(d.release_cs(0, 8, 6));
        assert_eq!(d.next_request(0, 12), Some(3));
        assert!(!d.release_cs(0, 14, 12));
        assert!(d.next_request(0, 100).is_none(), "script exhausted");
    }

    #[test]
    fn pinned_requests_once_and_never_releases() {
        let mut d = PinnedInCs::new(2);
        assert_eq!(d.next_request(0, 0), Some(2));
        assert!(d.next_request(0, 1).is_none());
        assert!(!d.release_cs(0, 1_000_000, 0));
    }

    #[test]
    fn factories_produce_independent_streams() {
        let mut f = all_uniform(7, 0.5, 3, 5);
        let mut a = f(0);
        let mut b = f(1);
        let sa: Vec<_> = (0..50).map(|t| a.next_request(0, t)).collect();
        let sb: Vec<_> = (0..50).map(|t| b.next_request(1, t)).collect();
        assert_ne!(sa, sb, "different nodes get different random streams");
    }

    #[test]
    fn skewed_needs_is_bounded_deterministic_and_skewed() {
        let collect = |seed| {
            let mut d = SkewedNeeds::new(seed, 1.0, 4, 0.6, 3);
            (0..500).filter_map(|t| d.next_request(0, t)).collect::<Vec<_>>()
        };
        let a = collect(5);
        assert_eq!(a, collect(5), "deterministic per seed");
        assert!(a.iter().all(|&u| (1..=4).contains(&u)), "sizes stay in 1..=max_units");
        let ones = a.iter().filter(|&&u| u == 1).count();
        let fours = a.iter().filter(|&&u| u == 4).count();
        assert!(ones > fours, "the distribution is skewed toward small requests");
        // Hold time behaves like the other drivers.
        let mut d = SkewedNeeds::new(1, 1.0, 4, 0.6, 3);
        assert!(!d.release_cs(0, 2, 0));
        assert!(d.release_cs(0, 3, 0));
    }

    #[test]
    fn skewed_needs_zero_probability_never_requests() {
        let mut d = SkewedNeeds::new(2, 0.0, 4, 0.5, 1);
        assert!((0..200).all(|t| d.next_request(0, t).is_none()));
    }

    #[test]
    fn think_time_inserts_idle_periods_between_requests() {
        let mut d = ThinkTime::new(7, 2, 5, 10, 20);
        // First request fires immediately.
        assert_eq!(d.next_request(0, 0), Some(2));
        // The critical section lasts 5 activations; release schedules a think period.
        assert!(!d.release_cs(0, 3, 0));
        assert!(d.release_cs(0, 5, 0));
        // During the think period the node stays idle; afterwards it requests again.
        assert!(d.next_request(0, 6).is_none());
        assert!(d.next_request(0, 14).is_none(), "still thinking (min_think = 10)");
        assert_eq!(d.next_request(0, 26), Some(2), "think time never exceeds max_think = 20");
    }

    #[test]
    fn think_time_clamps_degenerate_parameters() {
        // max_think < min_think is clamped; zero units become one.
        let mut d = ThinkTime::new(1, 0, 1, 9, 3);
        assert_eq!(d.next_request(0, 0), Some(1));
        assert!(d.release_cs(0, 1, 0));
        assert_eq!(d.next_request(0, 1 + 9), Some(1));
    }

    #[test]
    fn cyclic_repeats_its_schedule() {
        let mut d = Cyclic::new(vec![(1, 2), (3, 0)]);
        assert_eq!(d.next_request(0, 0), Some(1));
        assert!(!d.release_cs(0, 1, 0));
        assert!(d.release_cs(0, 2, 0));
        assert_eq!(d.next_request(0, 3), Some(3));
        assert!(d.release_cs(0, 3, 3), "hold 0 releases immediately");
        assert_eq!(d.next_request(0, 4), Some(1), "the cycle wraps around");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn cyclic_rejects_an_empty_schedule() {
        let _ = Cyclic::new(Vec::new());
    }

    #[test]
    fn skewed_and_think_time_factories_produce_independent_streams() {
        let mut f = all_skewed(3, 0.7, 4, 0.5, 2);
        let mut a = f(0);
        let mut b = f(1);
        let sa: Vec<_> = (0..80).map(|t| a.next_request(0, t)).collect();
        let sb: Vec<_> = (0..80).map(|t| b.next_request(1, t)).collect();
        assert_ne!(sa, sb);

        let mut f = all_think_time(3, 1, 2, 5, 15);
        let mut a = f(0);
        let mut b = f(1);
        assert_eq!(a.next_request(0, 0), Some(1));
        assert_eq!(b.next_request(1, 0), Some(1));
        // Different seeds give different think times after the first release.
        assert!(a.release_cs(0, 2, 0));
        assert!(b.release_cs(1, 2, 0));
    }

    #[test]
    fn hotspot_assignment_marks_listed_nodes_as_hot() {
        let hot = [2usize];
        let mut f = hotspot_assignment(9, &hot, 3, 5);
        let mut hot_driver = f(2);
        let mut cold_driver = f(0);
        assert_eq!(hot_driver.next_request(2, 0), Some(3), "hot nodes saturate");
        let cold_requests = (0..100).filter(|&t| cold_driver.next_request(0, t).is_some()).count();
        assert!(cold_requests < 20, "cold nodes request rarely");
    }

    #[test]
    fn from_needs_reads_the_table() {
        let needs = vec![0, 3, 2];
        let mut f = from_needs(&needs, 4);
        assert!(f(0).next_request(0, 0).is_none());
        assert_eq!(f(1).next_request(1, 0), Some(3));
        assert_eq!(f(2).next_request(2, 0), Some(2));
        assert!(f(9).next_request(9, 0).is_none(), "out-of-table nodes are idle");
    }
}
