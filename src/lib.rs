//! `kl-exclusion` — self-stabilizing k-out-of-ℓ exclusion on tree networks.
//!
//! This is the facade crate of the workspace: it re-exports every public component so that a
//! downstream user (and the examples and integration tests in this repository) can depend on
//! a single crate.
//!
//! * [`topology`] — oriented trees, virtual rings, rings, complete graphs, rooted graphs.
//! * [`treenet`] — the asynchronous message-passing simulator (schedulers, fault injection,
//!   traces, metrics).
//! * [`protocol`] (`klex-core`) — the paper's protocol ladder, culminating in the
//!   self-stabilizing Algorithms 1 & 2, plus the binary wire format.
//! * [`workloads`] — application drivers.
//! * [`baselines`] — ring-based, centralized and permission-based comparators.
//! * [`analysis`] — waiting time, convergence, fairness, deadlock detection, histograms,
//!   timelines, experiment harness.
//! * [`checker`] — bounded-exhaustive state-space exploration (safety, closure, deadlock and
//!   livelock checking on small instances).
//! * [`stree`] — self-stabilizing spanning-tree construction and the composition that runs
//!   the protocol on arbitrary rooted networks.
//!
//! # Quickstart
//!
//! One declarative [`ScenarioSpec`](analysis::scenario::ScenarioSpec) describes the whole
//! regime — topology, protocol rung, (k, ℓ), workload, daemon, stop condition — and drives
//! the simulator, the sharded trial harness, and the bounded-exhaustive checker:
//!
//! ```
//! use kl_exclusion::prelude::*;
//!
//! // 3-out-of-5 exclusion on the paper's Figure-1 tree, every process requesting.
//! let scenario = Scenario::builder("quickstart")
//!     .topology(TopologySpec::Figure1)
//!     .kl(3, 5)
//!     .workload(WorkloadSpec::Saturated { units: 2, hold: 10 })
//!     .daemon(DaemonSpec::RandomFair { seed: 42 })
//!     .stop(StopSpec::CsEntries { entries: 20, max_steps: 2_000_000 })
//!     .build()
//!     .expect("the scenario validates");
//!
//! // Run until the protocol has bootstrapped and serves requests.
//! let outcome = scenario.run();
//! assert!(outcome.outcome.is_satisfied());
//! assert!(outcome.metric("cs_entries").unwrap() >= 20.0);
//! ```
//!
//! The same spec value feeds `scenario.run_harness(shards)` (N seeded trials, sharded across
//! cores) and `scenario.check()` (exhaustive exploration of small instances), and the `klex`
//! CLI runs any spec from JSON: `klex run figure2 --backend all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use analysis;
pub use baselines;
pub use checker;
pub use klex_core as protocol;
pub use stree;
pub use topology;
pub use treenet;
pub use workloads;

/// The most common imports, bundled for examples and downstream users.
pub mod prelude {
    pub use crate::{analysis, baselines, checker, protocol, stree, topology, treenet, workloads};
    pub use analysis::scenario::{
        preset, CheckSpec, CompiledScenario, ConfigSpec, DaemonSpec, FaultPlanSpec, InitSpec,
        ProtocolSpec, Scenario, ScenarioError, ScenarioOutcome, ScenarioSpec, StopSpec,
        TopologySpec, WarmupSpec, WorkloadSpec,
    };
    pub use analysis::{
        measure_convergence, render_markdown_table, waiting_times, CensusRecorder, ExperimentRow,
        FairnessReport, Histogram, MonitorReport, SafetyMonitor, Summary, Verdict,
    };
    pub use klex_core::{
        count_tokens, is_legitimate, KlConfig, KlInspect, Message, SsNode, TokenCensus,
    };
    pub use topology::{OrientedTree, Ring, Topology, VirtualRing};
    pub use treenet::{
        engine, run_for, run_until, run_until_quiescent, Adversarial, AppDriver, CsState, Event,
        FaultInjector, FaultPlan, Network, RandomFair, Restartable, RoundRobin, Scheduler,
        Synchronous,
    };
}
