//! `kl-exclusion` — self-stabilizing k-out-of-ℓ exclusion on tree networks.
//!
//! This is the facade crate of the workspace: it re-exports every public component so that a
//! downstream user (and the examples and integration tests in this repository) can depend on
//! a single crate.
//!
//! * [`topology`] — oriented trees, virtual rings, rings, complete graphs, rooted graphs.
//! * [`treenet`] — the asynchronous message-passing simulator (schedulers, fault injection,
//!   traces, metrics).
//! * [`protocol`] (`klex-core`) — the paper's protocol ladder, culminating in the
//!   self-stabilizing Algorithms 1 & 2, plus the binary wire format.
//! * [`workloads`] — application drivers.
//! * [`baselines`] — ring-based, centralized and permission-based comparators.
//! * [`analysis`] — waiting time, convergence, fairness, deadlock detection, histograms,
//!   timelines, experiment harness.
//! * [`checker`] — bounded-exhaustive state-space exploration (safety, closure, deadlock and
//!   livelock checking on small instances).
//! * [`stree`] — self-stabilizing spanning-tree construction and the composition that runs
//!   the protocol on arbitrary rooted networks.
//!
//! # Quickstart
//!
//! ```
//! use kl_exclusion::prelude::*;
//!
//! // 3-out-of-5 exclusion on the paper's Figure-1 tree, every process requesting.
//! let tree = topology::builders::figure1_tree();
//! let cfg = KlConfig::new(3, 5, tree.len());
//! let mut net = protocol::ss::network(tree, cfg, workloads::all_saturated(2, 10));
//! let mut sched = RandomFair::new(42);
//!
//! // Run until the protocol has bootstrapped and serves requests.
//! let outcome = run_until(&mut net, &mut sched, 2_000_000, |n| n.trace().cs_entries(None) >= 20);
//! assert!(outcome.is_satisfied());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use analysis;
pub use baselines;
pub use checker;
pub use klex_core as protocol;
pub use stree;
pub use topology;
pub use treenet;
pub use workloads;

/// The most common imports, bundled for examples and downstream users.
pub mod prelude {
    pub use crate::{analysis, baselines, checker, protocol, stree, topology, treenet, workloads};
    pub use analysis::{
        measure_convergence, render_markdown_table, waiting_times, CensusRecorder, ExperimentRow,
        FairnessReport, Histogram, SafetyMonitor, Summary,
    };
    pub use klex_core::{
        count_tokens, is_legitimate, KlConfig, KlInspect, Message, SsNode, TokenCensus,
    };
    pub use topology::{OrientedTree, Ring, Topology, VirtualRing};
    pub use treenet::{
        engine, run_for, run_until, run_until_quiescent, Adversarial, AppDriver, CsState, Event,
        FaultInjector, FaultPlan, Network, RandomFair, Restartable, RoundRobin, Scheduler,
        Synchronous,
    };
}
