//! Integration tests for the bounded-exhaustive checker: the paper's figure-level claims are
//! verified over *every* scheduling of small instances, and the checker's verdicts are
//! cross-validated against the simulation-level analysis tools.

use kl_exclusion::prelude::*;

use checker::{cycles, drivers, properties, scenarios, Explorer, Limits};
use treenet::CsState;

fn wide_limits(max_configurations: usize) -> Limits {
    Limits { max_configurations, max_depth: usize::MAX }
}

#[test]
fn naive_deadlock_witness_replays_in_the_simulator() {
    // The checker finds a deadlock of the naive protocol; replaying its shortest trace in the
    // plain simulator must land in a configuration that the analysis crate's deadlock
    // detector also classifies as deadlocked.
    let tree = topology::builders::chain(3);
    let cfg = KlConfig::new(2, 2, 3);
    let needs = [0usize, 2, 2];
    let mut net = protocol::naive::network(tree.clone(), cfg, drivers::from_needs(&needs));
    let report = Explorer::new(&mut net).with_limits(wide_limits(500_000)).run();
    assert!(report.exhaustive());
    let witness = report.deadlocks.first().expect("the naive protocol deadlocks");

    // Replay on a fresh network.
    let mut fresh = protocol::naive::network(tree, cfg, drivers::from_needs(&needs));
    for act in &witness.trace {
        fresh.execute(*act);
    }
    let verdict = analysis::detect_deadlock(&mut fresh, &mut RoundRobin::new(), 5_000);
    assert!(verdict.is_deadlock(), "the simulator must agree the configuration is deadlocked");
}

#[test]
fn full_protocol_never_deadlocks_on_the_instance_that_kills_the_naive_one() {
    // Same instance, same needs, but the self-stabilizing protocol (which includes the
    // pusher): exhaustive exploration finds no deadlocked configuration.
    let tree = topology::builders::chain(3);
    let cfg = KlConfig::new(2, 2, 3).with_cmax(0);
    let needs = [0usize, 2, 2];
    let mut net = scenarios::stabilized_ss(tree, cfg, drivers::from_needs(&needs), 500_000);
    let report = Explorer::new(&mut net)
        .with_limits(wide_limits(400_000))
        .with_property(properties::safety(cfg))
        .run();
    assert!(report.exhaustive(), "explored {} configurations", report.configurations);
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert!(report.deadlock_free(), "deadlocks: {:?}", report.deadlocks.len());
}

#[test]
fn safety_holds_in_every_reachable_configuration_of_a_mixed_workload() {
    // 2-out-of-3 exclusion on the Figure-3 tree with one big and one small requester plus a
    // passive root; every reachable configuration satisfies the safety bounds.
    let tree = topology::builders::figure3_tree();
    let cfg = KlConfig::new(2, 3, 3).with_cmax(0);
    let needs = [0usize, 2, 1];
    let mut net = scenarios::stabilized_ss(tree, cfg, drivers::from_needs(&needs), 500_000);
    let report = Explorer::new(&mut net)
        .with_limits(wide_limits(400_000))
        .with_property(properties::safety(cfg))
        .with_property(properties::exact_census(cfg))
        .with_property(properties::no_garbage())
        .run();
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert!(report.exhaustive());
}

#[test]
fn starvation_cycle_exists_without_priority_and_not_with_it() {
    // The Figure-3 claim, end to end through the facade crate.
    let tree = topology::builders::figure3_tree();
    let cfg = KlConfig::new(2, 3, 3);
    let needs = [1usize, 2, 1];

    let mut pusher_net =
        protocol::pusher::network(tree.clone(), cfg, drivers::from_needs_holding(&needs));
    let mut explorer =
        Explorer::new(&mut pusher_net).with_limits(wide_limits(800_000)).record_graph(true);
    assert!(explorer.run().exhaustive());
    let cycle = cycles::find_progress_cycle(explorer.graph(), 1);
    assert!(cycle.is_some(), "pusher-only: process a can be starved forever");

    let mut prio_net =
        protocol::nonstab::network(tree, cfg, drivers::from_needs_holding(&needs));
    let mut explorer =
        Explorer::new(&mut prio_net).with_limits(wide_limits(2_000_000)).record_graph(true);
    assert!(explorer.run().exhaustive());
    assert!(
        cycles::find_progress_cycle(explorer.graph(), 1).is_none(),
        "with the priority token process a cannot be starved"
    );
}

#[test]
fn kl_liveness_boundary_is_exact_when_pinned_processes_hold_units_forever() {
    // The (k,ℓ)-liveness property's boundary on a small instance, exhaustively: with one
    // process pinned in its critical section holding 1 of the 2 units, a requester asking for
    // the remaining unit is eventually served on every fair path — operationally, there is no
    // reachable configuration from which the requester's service is unreachable.
    let tree = topology::builders::chain(3);
    let cfg = KlConfig::new(2, 2, 3).with_cmax(0);
    let mut net = scenarios::stabilized_ss(
        tree,
        cfg,
        |node| match node {
            1 => drivers::RequestAndHold::boxed(1),
            2 => drivers::AlwaysRequest::boxed(1),
            _ => drivers::NeverRequest::boxed(),
        },
        500_000,
    );
    let mut explorer = Explorer::new(&mut net)
        .with_limits(wide_limits(400_000))
        .with_property(properties::safety(cfg))
        .record_graph(true);
    let report = explorer.run();
    assert!(report.exhaustive() && report.ok());
    // No reachable cycle starves the 1-unit requester (node 2) while others progress, and no
    // deadlock blocks it: together these say its request is always eventually serviceable.
    assert!(cycles::find_progress_cycle(explorer.graph(), 2).is_none());
    assert!(report.deadlock_free());
    // The pinned process really is pinned: some reachable configuration has it In.
    let pinned_visible = (0..explorer.graph().len())
        .any(|id| explorer.graph().config(id).nodes[1].cs == CsState::In);
    assert!(pinned_visible);
}
