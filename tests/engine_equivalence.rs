//! Trace equivalence of the two execution engines.
//!
//! The event-driven engine (maintained enabled set, `treenet::engine`) must be a *pure
//! performance refactor* of the scan-based baseline (`treenet::scheduler::baseline`): for
//! every daemon, every topology and every seed, all three execution paths —
//!
//! 1. the scan-based baseline daemon through `Network::step`,
//! 2. the event-driven daemon through `Network::step` (dynamic dispatch, O(1) queries),
//! 3. the event-driven daemon through the fused loop `engine::run_observed`,
//!
//! — must produce **identical activation sequences, traces, and metrics**.  A proptest
//! additionally checks the enabled-set invariant itself against brute-force recomputation
//! after arbitrary execution, injection and channel-surgery histories.

use kl_exclusion::prelude::*;
use proptest::prelude::*;
use treenet::engine;
use treenet::scheduler::baseline;
use treenet::{Activation, EventScheduler, Synchronous};
use workloads::UniformRandom;

type SsNet = Network<SsNode, OrientedTree>;

/// The common scenario: a self-stabilizing k-out-of-ℓ network under a uniform-random
/// workload with a short root timeout (so controller traffic starts early) and a burst of
/// injected faults (so channels hold garbage from the start).
fn scenario(tree: OrientedTree, seed: u64) -> SsNet {
    let n = tree.len();
    let cfg = KlConfig::new(2, 3, n).with_timeout(40);
    let mut net = protocol::ss::network(tree, cfg, |id| {
        Box::new(UniformRandom::new(seed ^ (id as u64).wrapping_mul(0x9E37), 0.1, 2, 5))
            as Box<dyn AppDriver + Send>
    });
    let mut injector = FaultInjector::new(seed.wrapping_add(77));
    injector.inject(&mut net, &FaultPlan::moderate(cfg.cmax));
    net
}

fn shapes() -> Vec<(&'static str, OrientedTree)> {
    vec![
        ("chain", topology::builders::chain(9)),
        ("star", topology::builders::star(9)),
        ("binary", topology::builders::binary(15)),
        ("random", topology::builders::random_tree(12, 5)),
    ]
}

/// Runs `steps` activations through the dynamically dispatched path, recording the sequence.
fn run_dyn(net: &mut SsNet, sched: &mut impl Scheduler, steps: u64) -> Vec<Activation> {
    (0..steps).map(|_| net.step(sched)).collect()
}

/// Runs `steps` activations through the fused event loop, recording the sequence.
fn run_fused(net: &mut SsNet, sched: &mut impl EventScheduler, steps: u64) -> Vec<Activation> {
    let mut seq = Vec::with_capacity(steps as usize);
    engine::run_observed(net, sched, steps, |a| seq.push(a));
    seq
}

/// Serialized observable outcome of a run: metrics and the application-level trace.
fn observables(net: &SsNet) -> String {
    let metrics = serde_json::to_string(net.metrics()).expect("metrics serialize");
    let events = net.trace().events().len();
    format!("{metrics}|events={events}")
}

fn assert_equivalent(
    label: &str,
    tree: OrientedTree,
    seed: u64,
    steps: u64,
    mut make_baseline: impl FnMut() -> Box<dyn Scheduler>,
    mut make_event: impl FnMut() -> Box<dyn Scheduler>,
    fused: impl FnOnce(&mut SsNet, u64) -> Vec<Activation>,
) {
    let mut reference_net = scenario(tree.clone(), seed);
    let reference_seq = run_dyn(&mut reference_net, &mut make_baseline(), steps);

    let mut event_net = scenario(tree.clone(), seed);
    let event_seq = run_dyn(&mut event_net, &mut make_event(), steps);

    let mut fused_net = scenario(tree, seed);
    let fused_seq = fused(&mut fused_net, steps);

    assert_eq!(reference_seq, event_seq, "{label}: baseline vs event drop-in sequences differ");
    assert_eq!(reference_seq, fused_seq, "{label}: baseline vs fused sequences differ");
    assert_eq!(
        observables(&reference_net),
        observables(&event_net),
        "{label}: baseline vs event drop-in metrics differ"
    );
    assert_eq!(
        observables(&reference_net),
        observables(&fused_net),
        "{label}: baseline vs fused metrics differ"
    );
}

#[test]
fn round_robin_is_trace_equivalent_across_shapes() {
    for (name, tree) in shapes() {
        assert_equivalent(
            &format!("round-robin/{name}"),
            tree,
            11,
            40_000,
            || Box::new(baseline::RoundRobin::new()),
            || Box::new(RoundRobin::new()),
            |net, steps| run_fused(net, &mut RoundRobin::new(), steps),
        );
    }
}

#[test]
fn random_fair_is_trace_equivalent_across_shapes_and_seeds() {
    for (name, tree) in shapes() {
        for seed in [3u64, 1077, 424242] {
            assert_equivalent(
                &format!("random-fair/{name}/seed{seed}"),
                tree.clone(),
                seed,
                40_000,
                move || Box::new(baseline::RandomFair::new(seed)),
                move || Box::new(RandomFair::new(seed)),
                move |net, steps| run_fused(net, &mut RandomFair::new(seed), steps),
            );
        }
    }
}

#[test]
fn random_fair_bias_extremes_are_trace_equivalent() {
    let tree = topology::builders::random_tree(10, 8);
    for bias in [0.0, 0.5, 1.0] {
        assert_equivalent(
            &format!("random-fair/bias{bias}"),
            tree.clone(),
            19,
            30_000,
            move || Box::new(baseline::RandomFair::new(7).with_deliver_bias(bias)),
            move || Box::new(RandomFair::new(7).with_deliver_bias(bias)),
            move |net, steps| {
                run_fused(net, &mut RandomFair::new(7).with_deliver_bias(bias), steps)
            },
        );
    }
}

#[test]
fn synchronous_is_trace_equivalent_across_shapes() {
    for (name, tree) in shapes() {
        assert_equivalent(
            &format!("synchronous/{name}"),
            tree,
            23,
            40_000,
            || Box::new(baseline::Synchronous::new()),
            || Box::new(Synchronous::new()),
            |net, steps| run_fused(net, &mut Synchronous::new(), steps),
        );
    }
}

#[test]
fn adversarial_is_trace_equivalent_across_shapes() {
    for (name, tree) in shapes() {
        let victims = vec![1, tree.len() - 1];
        assert_equivalent(
            &format!("adversarial/{name}"),
            tree,
            31,
            40_000,
            {
                let victims = victims.clone();
                move || Box::new(baseline::Adversarial::new(victims.clone(), 7))
            },
            {
                let victims = victims.clone();
                move || Box::new(Adversarial::new(victims.clone(), 7))
            },
            |net, steps| run_fused(net, &mut Adversarial::new(victims.clone(), 7), steps),
        );
    }
}

// ------------------------------------------------------------- enabled-set invariant checks

/// Brute-force recomputation of everything the enabled set claims to know, compared entry
/// by entry against the maintained structure.
fn assert_enabled_invariant(net: &SsNet) {
    let es = net.enabled_set();
    let mut total_in_flight = 0usize;
    let mut expected_enabled = std::collections::BTreeSet::new();
    for v in 0..net.len() {
        let degree = net.topology().degree(v);
        assert_eq!(es.degree(v), degree, "node {v}: degree mismatch");
        let non_empty: Vec<usize> =
            (0..degree).filter(|&c| !net.channel(v, c).is_empty()).collect();
        total_in_flight += (0..degree).map(|c| net.channel(v, c).len()).sum::<usize>();
        assert_eq!(
            es.deliverable_count(v),
            non_empty.len(),
            "node {v}: deliverable_count mismatch"
        );
        for (i, &c) in non_empty.iter().enumerate() {
            assert_eq!(es.nth_deliverable(v, i), Some(c), "node {v}: nth_deliverable({i})");
        }
        assert_eq!(es.nth_deliverable(v, non_empty.len()), None, "node {v}: nth past end");
        for start in 0..degree {
            let expected = (0..degree)
                .map(|off| (start + off) % degree)
                .find(|&c| !net.channel(v, c).is_empty());
            assert_eq!(
                es.next_deliverable_from(v, start),
                expected,
                "node {v}: next_deliverable_from({start})"
            );
        }
        if !non_empty.is_empty() {
            expected_enabled.insert(v);
        }
    }
    assert_eq!(es.in_flight() as usize, total_in_flight, "in-flight total mismatch");
    assert_eq!(es.enabled_len(), expected_enabled.len(), "enabled list length mismatch");
    let listed: std::collections::BTreeSet<usize> =
        (0..es.enabled_len()).map(|i| es.enabled_node(i)).collect();
    assert_eq!(listed, expected_enabled, "enabled list contents mismatch");
    assert_eq!(net.in_flight(), total_in_flight, "Network::in_flight mismatch");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// After an arbitrary history of scheduled steps, fault injections and direct channel
    /// surgery, the maintained enabled set equals the brute-force recomputed guard set.
    #[test]
    fn enabled_set_always_equals_brute_force(
        n in 3usize..=14,
        tree_seed in any::<u64>(),
        run_seed in any::<u64>(),
    ) {
        let tree = topology::builders::random_tree(n, tree_seed);
        let mut net = scenario(tree, run_seed);
        assert_enabled_invariant(&net);

        let mut sched = RandomFair::new(run_seed ^ 0xABCD);
        for phase in 0..6u64 {
            for _ in 0..500 {
                net.step(&mut sched);
            }
            // Direct surgery through every mutation path the network exposes.
            let v = (run_seed.wrapping_mul(phase + 1) % n as u64) as usize;
            let degree = net.topology().degree(v);
            if degree > 0 {
                let l = (phase as usize) % degree;
                net.inject_into(v, l, Message::Garbage(7));
                net.inject_from(v, l, Message::ResT);
                let mut ch = net.channel_mut(v, l);
                if ch.len() > 1 {
                    ch.remove(0);
                }
                if phase.is_multiple_of(3) {
                    ch.clear();
                }
                drop(ch);
            }
            if phase == 4 {
                let mut injector = FaultInjector::new(run_seed.wrapping_add(phase));
                injector.inject(&mut net, &FaultPlan::catastrophic(2));
            }
            assert_enabled_invariant(&net);
        }
    }
}
