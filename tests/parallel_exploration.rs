//! Work-stealing parallel engine: full-report parity against the sequential delta engine.
//!
//! The parallel engine (`Explorer::run_parallel`, `CompiledScenario::check_parallel`)
//! discovers the reachable set with N delta workers over a sharded arena and then replays
//! the logged transitions through the same sequential `Engine` in canonical BFS order, so
//! its `ExplorationReport` is *defined* to be identical to `run_delta`'s — not just in the
//! counters but in every witness: violation traces, deadlock configurations, and fair-cycle
//! lasso witnesses field for field.  This file pins that contract:
//!
//! 1. as a property over random ≤7-node scenarios on all four protocol rungs, with safety
//!    and liveness checking enabled, at 1, 2 and 4 worker threads (1 is the sequential
//!    fallback; 2 and 4 oversubscribe a small instance enough to force stealing and
//!    cross-worker duplicate discovery);
//! 2. on every preset of the delta-parity suite, at every tested thread count.

use analysis::coverage::CoverageSignature;
use analysis::scenario::{
    preset, CheckSpec, ProtocolSpec, ScenarioSpec, StopSpec, TopologySpec, WorkloadSpec,
};
use checker::ExplorationReport;
use proptest::prelude::*;

/// Tested worker counts: the sequential fallback and two genuinely concurrent widths.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Field-for-field report identity, including the liveness lassos (which the delta-parity
/// suite's comparison omits because the interned oracle predates lasso search).
fn assert_reports_identical(
    name: &str,
    delta: &ExplorationReport,
    parallel: &ExplorationReport,
) {
    assert_eq!(delta.configurations, parallel.configurations, "{name}: reachable-set size");
    assert_eq!(delta.transitions, parallel.transitions, "{name}: transitions");
    assert_eq!(delta.max_depth, parallel.max_depth, "{name}: max depth");
    assert_eq!(delta.frontier_sizes, parallel.frontier_sizes, "{name}: frontiers per level");
    assert_eq!(delta.truncated, parallel.truncated, "{name}: truncation");
    assert_eq!(delta.violations.len(), parallel.violations.len(), "{name}: violation count");
    for (d, p) in delta.violations.iter().zip(&parallel.violations) {
        assert_eq!(d.property, p.property, "{name}: violated property");
        assert_eq!(d.detail, p.detail, "{name}: violation detail");
        assert_eq!(d.depth, p.depth, "{name}: violation depth");
        assert_eq!(d.trace, p.trace, "{name}: violation trace");
        assert_eq!(d.config, p.config, "{name}: violating configuration");
    }
    assert_eq!(delta.deadlocks.len(), parallel.deadlocks.len(), "{name}: deadlock count");
    for (d, p) in delta.deadlocks.iter().zip(&parallel.deadlocks) {
        assert_eq!(d.blocked, p.blocked, "{name}: blocked set");
        assert_eq!(d.depth, p.depth, "{name}: deadlock depth");
        assert_eq!(d.trace, p.trace, "{name}: deadlock trace");
        assert_eq!(d.config, p.config, "{name}: deadlocked configuration");
    }
    assert_eq!(delta.graph_summary, parallel.graph_summary, "{name}: graph summary");
    assert_eq!(delta.liveness.len(), parallel.liveness.len(), "{name}: lasso count");
    for (d, p) in delta.liveness.iter().zip(&parallel.liveness) {
        assert_eq!(d.victim, p.victim, "{name}: lasso victim");
        assert_eq!(d.stem, p.stem, "{name}: lasso stem activations");
        assert_eq!(d.stem_states, p.stem_states, "{name}: lasso stem states");
        assert_eq!(d.cycle, p.cycle, "{name}: lasso cycle activations");
        assert_eq!(d.cycle_states, p.cycle_states, "{name}: lasso cycle states");
        assert_eq!(d.progress_nodes, p.progress_nodes, "{name}: lasso progress nodes");
        assert_eq!(d.stem_configs, p.stem_configs, "{name}: lasso stem configurations");
        assert_eq!(d.cycle_configs, p.cycle_configs, "{name}: lasso cycle configurations");
        assert_eq!(d.stem_cs, p.stem_cs, "{name}: lasso stem CS entries");
        assert_eq!(d.cycle_cs, p.cycle_cs, "{name}: lasso cycle CS entries");
    }
}

/// One random checkable scenario: a seeded random tree on one of the four protocol rungs,
/// heterogeneous holding requesters, safety + liveness checking, and a budget small enough
/// that a slice of the generated instances truncates (truncation parity is part of the
/// contract, not an excluded case).
fn random_scenario(
    rung: usize,
    n: usize,
    seed: u64,
    l: usize,
    k: usize,
    needs: Vec<usize>,
    hold: u64,
) -> ScenarioSpec {
    let protocol = match rung {
        0 => ProtocolSpec::Naive,
        1 => ProtocolSpec::Pusher,
        2 => ProtocolSpec::NonStab,
        _ => ProtocolSpec::Ss,
    };
    ScenarioSpec::builder(format!("parallel-parity n={n} rung={rung} seed={seed:#x}"))
        .topology(TopologySpec::Random { n, seed })
        .protocol(protocol)
        .kl(k, l)
        .workload(WorkloadSpec::Needs { needs, hold })
        .stop(StopSpec::Steps { steps: 100 })
        .check(CheckSpec {
            max_configurations: 3_000,
            max_depth: 0,
            properties: vec!["safety".into(), "liveness".into()],
            ..CheckSpec::default()
        })
        .spec()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Tentpole: the work-stealing engine's report is identical to the sequential delta
    /// engine's — counters, witnesses, and lassos — on random small scenarios at every
    /// tested thread count.
    #[test]
    fn parallel_engine_matches_delta_on_random_scenarios(
        rung in 0usize..4,
        n in 2usize..=7,
        seed in 0u64..1_000_000,
        l in 1usize..=3,
        k_pick in 0usize..3,
        needs_seed in proptest::collection::vec(0usize..=2, 7),
        hold in 0u64..=1,
    ) {
        let k = 1 + k_pick % l;
        let needs: Vec<usize> = needs_seed.iter().take(n).map(|u| u.min(&k)).copied().collect();
        let spec = random_scenario(rung, n, seed, l, k, needs, hold);
        let scenario = spec.compile().expect("generated scenario validates");
        let delta = scenario
            .check_with(checker::ExploreEngine::Delta)
            .expect("tree rungs lower into the checker");
        for threads in THREAD_COUNTS {
            let parallel = scenario.check_parallel(threads).expect("same lowering");
            assert_reports_identical(&format!("{} @{threads}", scenario.spec().name), &delta, &parallel);
        }
    }
}

/// Satellite: the coverage signature the fuzzer keys its corpus on is deterministic and
/// engine-independent — the delta, interned and parallel engines (at every tested width)
/// fingerprint a scenario identically, with the monitor verdicts from the same seeded
/// simulator run folded in.
#[test]
fn coverage_signatures_are_engine_independent() {
    for (rung, n, seed) in [(0, 4, 11), (1, 5, 23), (2, 5, 37), (3, 4, 53), (3, 6, 71)] {
        let mut spec = random_scenario(rung, n, seed, 2, 1, vec![1; n], 1);
        spec.properties =
            vec!["request-eventually-cs".into(), "at-most-k-in-cs".into(), "l-availability".into()];
        let scenario = spec.compile().expect("scenario validates");
        let name = &scenario.spec().name;
        let (_, monitors) = scenario.run_monitored();
        let delta = scenario
            .check_with(checker::ExploreEngine::Delta)
            .expect("tree rungs lower into the checker");
        let key = CoverageSignature::of(&delta, &monitors).key();
        let interned =
            scenario.check_with(checker::ExploreEngine::Interned).expect("same lowering");
        assert_eq!(key, CoverageSignature::of(&interned, &monitors).key(), "{name}: interned");
        for threads in THREAD_COUNTS {
            let parallel = scenario.check_parallel(threads).expect("same lowering");
            assert_eq!(
                key,
                CoverageSignature::of(&parallel, &monitors).key(),
                "{name}: parallel @{threads}"
            );
        }
    }
}

/// Satellite: the acceptance contract verbatim — `check_parallel` matches
/// `check_with(Delta)` on every preset of the parity suite at every tested thread count.
#[test]
fn parallel_engine_matches_delta_on_every_parity_preset() {
    for name in ["checker-safety", "figure2", "figure2-pusher", "figure3-pusher", "figure3-nonstab"]
    {
        let scenario = preset(name).expect("known preset").compile().expect("valid preset");
        let delta =
            scenario.check_with(checker::ExploreEngine::Delta).expect("checkable preset");
        for threads in THREAD_COUNTS {
            let parallel = scenario.check_parallel(threads).expect("checkable preset");
            assert_reports_identical(&format!("{name} @{threads}"), &delta, &parallel);
        }
    }
}
