//! Loopback integration tests for the `klex serve` daemon: concurrent submissions over
//! real sockets, JSONL progress streaming, mid-run cancellation, the Prometheus scrape,
//! and the byte-identity contract — a served job's result is exactly what a direct
//! `klex run <spec> --format jsonl` of the same spec renders, at any worker count.

use analysis::harness::render_jsonl;
use analysis::scenario::preset;
use bench::runner::{run_rows, Backend, RunRequest};
use bench::serve::{client, ServeOptions, Server};
use serde_json::Value;
use std::time::{Duration, Instant};

/// Starts a daemon on an ephemeral loopback port and returns it with its dial address.
fn start(workers: usize) -> (Server, String) {
    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_cap: 64,
        seed: 7,
    };
    let server = Server::start(&opts).expect("bind an ephemeral loopback port");
    let addr = server.addr().to_string();
    (server, addr)
}

/// Polls `GET /jobs/<id>` until the job's state satisfies `accept`, failing after
/// `deadline`.
fn wait_for_state(addr: &str, id: u64, accept: &[&str], deadline: Duration) -> Value {
    let start = Instant::now();
    loop {
        let doc = client::status(addr, id).expect("status");
        let state = doc.get("state").and_then(Value::as_str).unwrap_or("unknown").to_string();
        if accept.contains(&state.as_str()) {
            return doc;
        }
        assert!(
            start.elapsed() < deadline,
            "job {id} stuck in state `{state}` (wanted one of {accept:?})"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn concurrent_submissions_all_stream_to_completion() {
    let (server, addr) = start(2);
    // Four presets submitted from four client threads at once; every stream must run to
    // a terminal `state` event even though only two workers execute them.
    let presets = ["figure2", "figure2-pusher", "figure2-ss", "checker-safety"];
    let handles: Vec<_> = presets
        .iter()
        .map(|name| {
            let addr = addr.clone();
            let body = format!("{{\"preset\": {name:?}}}");
            std::thread::spawn(move || {
                let id = client::submit(&addr, &body).expect("submit");
                let mut lines = Vec::new();
                let doc = client::watch(&addr, id, &mut |line: &str| lines.push(line.to_string()))
                    .expect("watch");
                (id, lines, doc)
            })
        })
        .collect();
    let mut ids = Vec::new();
    for handle in handles {
        let (id, lines, doc) = handle.join().expect("client thread");
        ids.push(id);
        assert_eq!(doc.get("state").and_then(Value::as_str), Some("done"), "job {id}");
        // The stream carries lifecycle events and finishes with the result rows (one JSON
        // object per line, no `event` key).
        assert!(
            lines.iter().any(|l| l.contains("\"event\": \"state\"")
                || l.contains("\"event\":\"state\"")),
            "job {id} streamed no state event: {lines:?}"
        );
        let rows: Vec<&String> =
            lines.iter().filter(|l| !l.contains("\"event\"")).collect();
        assert!(!rows.is_empty(), "job {id} streamed no result rows");
        for row in rows {
            serde_json::from_str(row).expect("result rows are JSONL");
        }
    }
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 4, "four distinct job ids");

    let listing = client::jobs(&addr).expect("job listing");
    let Some(Value::Array(jobs)) = listing.get("jobs") else { panic!("no jobs array") };
    assert_eq!(jobs.len(), 4);

    client::shutdown(&addr).expect("shutdown");
    server.wait();
}

#[test]
fn job_results_are_byte_identical_to_direct_runs_at_any_worker_count() {
    // The contract under test: serve executes jobs through bench::runner::run_rows, the
    // same function `klex run` calls, so the JSONL payload matches byte for byte.
    let scenario = preset("checker-safety").expect("preset").compile().expect("compile");
    let request = RunRequest { backend: Backend::All, shards: 2, threads: None, bench: false };
    let direct = run_rows(&scenario, &request, None).expect("direct run");
    let expected = render_jsonl(&direct.rows);

    for workers in [1usize, 3] {
        let (server, addr) = start(workers);
        let body = r#"{"preset": "checker-safety", "backend": "all", "shards": 2}"#;
        let id = client::submit(&addr, body).expect("submit");
        let doc = wait_for_state(&addr, id, &["done", "failed"], Duration::from_secs(120));
        assert_eq!(doc.get("state").and_then(Value::as_str), Some("done"));
        let result = doc.get("result").and_then(Value::as_str).expect("done job has a result");
        assert_eq!(
            result, expected,
            "served result differs from the direct run at {workers} worker(s)"
        );
        client::shutdown(&addr).expect("shutdown");
        server.wait();
    }
}

#[test]
fn running_jobs_cancel_mid_flight() {
    let (server, addr) = start(1);
    // A fuzz campaign far too large to finish: the single worker claims it, then the
    // cancel flag stops it at the next batch boundary and the result is discarded.
    let id = client::submit(&addr, r#"{"fuzz": {"scenarios": 100000}}"#).expect("submit");
    wait_for_state(&addr, id, &["running"], Duration::from_secs(30));
    let state = client::cancel(&addr, id).expect("cancel");
    assert!(
        state == "running" || state == "cancelled",
        "cancel of a running job reported `{state}`"
    );
    let doc = wait_for_state(&addr, id, &["cancelled"], Duration::from_secs(60));
    assert!(doc.get("result").is_none(), "a cancelled job keeps no result");

    // Cancelling a queued job is immediate: block the worker with a second big campaign,
    // queue a third job behind it, cancel the queued one.
    let blocker = client::submit(&addr, r#"{"fuzz": {"scenarios": 100000}}"#).expect("submit");
    let queued = client::submit(&addr, r#"{"preset": "figure2"}"#).expect("submit");
    wait_for_state(&addr, blocker, &["running"], Duration::from_secs(30));
    assert_eq!(client::cancel(&addr, queued).expect("cancel queued"), "cancelled");
    client::cancel(&addr, blocker).expect("cancel blocker");

    client::shutdown(&addr).expect("shutdown");
    server.wait();
}

#[test]
fn snapshot_jobs_stream_per_cut_events_and_verdict_metrics() {
    use analysis::scenario::{InitiatorSpec, SnapshotSpec};

    let (server, addr) = start(1);
    // A spec with a snapshot block: the stream must carry per-cut progress events and
    // the result rows must report the cut census verdicts as metrics.
    let mut spec = preset("quickstart").expect("preset");
    spec.snapshots = Some(SnapshotSpec { interval: 512, initiator: InitiatorSpec::Rotate });
    let body = format!("{{\"spec\": {}, \"backend\": \"sim\"}}", spec.to_json());
    let id = client::submit(&addr, &body).expect("submit");
    let mut lines = Vec::new();
    let doc = client::watch(&addr, id, &mut |line: &str| lines.push(line.to_string()))
        .expect("watch");
    assert_eq!(doc.get("state").and_then(Value::as_str), Some("done"));
    assert!(
        lines.iter().any(|l| l.contains("\"phase\":\"snapshot\"")),
        "no per-snapshot progress event in the stream: {lines:?}"
    );
    let row = lines.iter().find(|l| l.contains("snapshots_taken")).expect("result row");
    let row: Value = serde_json::from_str(row).expect("result row is JSON");
    let metric = |name: &str| {
        row.get("metrics").and_then(|m| m.get(name)).and_then(Value::as_f64).unwrap_or(-1.0)
    };
    assert!(metric("snapshots_taken") >= 1.0, "at least one cut completed");
    assert_eq!(
        metric("snapshots_clean"),
        metric("snapshots_taken"),
        "every cut of a legitimate execution is clean"
    );

    client::shutdown(&addr).expect("shutdown");
    server.wait();
}

/// What one scripted connection of the fake daemon does (see
/// [`watch_survives_a_daemon_bounce_without_dropping_or_duplicating_events`]).
enum Script {
    /// Serve `GET /jobs/<id>/stream` as chunked JSONL; `complete` decides between a clean
    /// terminating chunk and an abrupt mid-stream connection drop.
    Stream { lines: Vec<String>, complete: bool },
    /// Serve `GET /jobs/<id>` with the given job state.
    Status { state: &'static str },
}

/// Runs a scripted daemon: each accepted connection consumes the next [`Script`] entry.
fn scripted_daemon(
    listener: std::net::TcpListener,
    script: Vec<Script>,
) -> std::thread::JoinHandle<()> {
    use std::io::{BufRead, BufReader, Write};
    std::thread::spawn(move || {
        for action in script {
            let (mut stream, _) = listener.accept().expect("accept");
            // Drain the request head so the client's write never sees a reset.
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            loop {
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) == 0 || line.trim_end().is_empty() {
                    break;
                }
            }
            match action {
                Script::Stream { lines, complete } => {
                    write!(
                        stream,
                        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
                         Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
                    )
                    .expect("stream head");
                    for line in lines {
                        let data = format!("{line}\n");
                        write!(stream, "{:x}\r\n{data}\r\n", data.len()).expect("chunk");
                    }
                    if complete {
                        write!(stream, "0\r\n\r\n").expect("final chunk");
                    }
                    // Dropping the stream without the zero chunk is the "bounce": the
                    // client sees the connection die mid-stream.
                }
                Script::Status { state } => {
                    let body = format!("{{\"id\": 1, \"state\": \"{state}\"}}");
                    write!(
                        stream,
                        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                        body.len()
                    )
                    .expect("status response");
                }
            }
        }
    })
}

fn stamped(boot: u64, seq: u64) -> String {
    format!("{{\"event\":\"progress\",\"phase\":\"trials\",\"done\":{seq},\"total\":0,\"boot\":{boot},\"seq\":{seq}}}")
}

#[test]
fn watch_survives_a_daemon_bounce_without_dropping_or_duplicating_events() {
    // The reconnect-dedup contract: `client::watch` keys replay suppression on the
    // `(boot, seq)` stamp of each event line, not on how many lines were delivered.  A
    // scripted daemon drives the exact failure the count-based cursor had: after a
    // bounce, a *new daemon incarnation* replays its own buffer from seq 0 under a fresh
    // boot id — every one of those lines is new information, but a count cursor would
    // silently swallow the first `delivered` of them.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let old_boot = 11u64;
    let new_boot = 22u64;
    let daemon = scripted_daemon(
        listener,
        vec![
            // Incarnation A streams five events, then dies mid-stream.
            Script::Stream { lines: (0..5).map(|s| stamped(old_boot, s)).collect(), complete: false },
            Script::Status { state: "running" }, // the watcher's terminal-drop check
            // Still incarnation A: full replay plus two new events, then dies again.
            Script::Stream { lines: (0..7).map(|s| stamped(old_boot, s)).collect(), complete: false },
            Script::Status { state: "running" },
            // Incarnation B — the bounced daemon: same job id, fresh buffer, fresh boot
            // id, seq numbers overlapping A's, then the unstamped result row.
            Script::Stream {
                lines: (0..3)
                    .map(|s| stamped(new_boot, s))
                    .chain(std::iter::once("{\"label\":\"row\",\"metrics\":{}}".to_string()))
                    .collect(),
                complete: true,
            },
            Script::Status { state: "done" }, // the final status fetch
        ],
    );

    let mut lines = Vec::new();
    let doc = client::watch(&addr, 1, &mut |line: &str| lines.push(line.to_string()))
        .expect("watch across two bounces");
    daemon.join().expect("scripted daemon");
    assert_eq!(doc.get("state").and_then(Value::as_str), Some("done"));

    // Exactly once, in order: A's seven events (five + the two that arrived after the
    // first drop), B's three, then the result row.  No duplicates from the replays, no
    // swallowed lines from the bounce.
    let expected: Vec<String> = (0..7)
        .map(|s| stamped(old_boot, s))
        .chain((0..3).map(|s| stamped(new_boot, s)))
        .chain(std::iter::once("{\"label\":\"row\",\"metrics\":{}}".to_string()))
        .collect();
    assert_eq!(lines, expected);
}

#[test]
fn malformed_and_oversized_submissions_get_a_400_json_error() {
    use std::io::{Read, Write};

    let (server, addr) = start(1);

    // Unparsable JSON: the client helper surfaces the daemon's 400 with its error detail.
    let err = client::submit(&addr, "{not json").expect_err("malformed body must be rejected");
    assert!(err.contains("submit rejected (400)"), "unexpected error: {err}");

    // An oversized body (over the daemon's 1 MiB limit) must also come back as a 400 with
    // a JSON error body — not a dropped connection.  Raw socket: the client helper never
    // generates such a request.
    let body = vec![b'x'; 2 * (1 << 20)];
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    write!(
        stream,
        "POST /jobs HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .expect("request head");
    stream.write_all(&body).expect("the daemon drains the oversized body");
    stream.flush().expect("flush");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read the 400 response");
    assert!(response.starts_with("HTTP/1.1 400 "), "unexpected response: {response}");
    let json = response.split("\r\n\r\n").nth(1).expect("response has a body");
    let doc = serde_json::from_str(json).expect("the 400 body is JSON");
    let detail = doc.get("error").and_then(Value::as_str).expect("error detail");
    assert!(detail.contains("exceeds"), "unexpected detail: {detail}");

    // The daemon is still healthy afterwards.
    let health = client::healthz(&addr).expect("healthz after bad submissions");
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));

    client::shutdown(&addr).expect("shutdown");
    server.wait();
}

#[test]
fn metrics_scrape_exposes_the_daemon_counters() {
    let (server, addr) = start(1);
    let health = client::healthz(&addr).expect("healthz");
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));

    let id = client::submit(&addr, r#"{"preset": "figure2"}"#).expect("submit");
    wait_for_state(&addr, id, &["done"], Duration::from_secs(120));

    let text = client::metrics(&addr).expect("metrics");
    for name in [
        "klex_http_requests_total",
        "klex_jobs_submitted_total",
        "klex_jobs_done_total",
        "klex_jobs_failed_total",
        "klex_jobs_cancelled_total",
        "klex_states_explored_total",
        "klex_trials_completed_total",
        "klex_fuzz_scenarios_total",
        "klex_jobs_queued",
        "klex_jobs_running",
        "klex_queue_depth",
        "klex_workers_total",
        "klex_workers_busy",
        "klex_uptime_seconds",
        "klex_states_per_sec",
        "klex_scenarios_per_sec",
    ] {
        assert!(
            text.contains(&format!("# TYPE {name} ")),
            "metrics scrape is missing {name}:\n{text}"
        );
    }
    assert!(text.contains("klex_jobs_done_total 1"), "done counter should be 1:\n{text}");
    assert!(text.contains("klex_jobs_submitted_total 1"));

    client::shutdown(&addr).expect("shutdown");
    server.wait();
}
