//! Integration tests of the baseline protocols through the facade crate, mirroring the
//! comparisons of experiments E8/E9.

use kl_exclusion::prelude::*;

#[test]
fn all_protocols_serve_the_same_workload() {
    // Same number of processes, same saturated single-unit workload; every protocol must
    // serve every requester.  (Throughput differs — that is what E8 measures — but liveness
    // must hold across the board.)
    let n = 6usize;
    let cfg = KlConfig::new(1, 2, n);

    // Tree (this paper).
    {
        let tree = topology::builders::random_tree(n, 1);
        let mut net = protocol::ss::network(tree, cfg, workloads::all_saturated(1, 4));
        let mut sched = RandomFair::new(1);
        let out = run_until(&mut net, &mut sched, 4_000_000, |net| {
            (0..n).all(|v| net.trace().cs_entries(Some(v)) >= 2)
        });
        assert!(out.is_satisfied(), "tree protocol must serve everyone");
    }

    // Ring baseline.
    {
        let mut net = baselines::ring::network(n, cfg, workloads::all_saturated(1, 4));
        let mut sched = RandomFair::new(2);
        let out = run_until(&mut net, &mut sched, 4_000_000, |net| {
            (0..n).all(|v| net.trace().cs_entries(Some(v)) >= 2)
        });
        assert!(out.is_satisfied(), "ring baseline must serve everyone");
    }

    // Centralized coordinator (node 0 is the coordinator and never requests).
    {
        let mut net = baselines::centralized::network(n, cfg, |id| {
            if id == 0 {
                Box::new(workloads::Heterogeneous { units: 0, hold: 1 })
                    as Box<dyn AppDriver + Send>
            } else {
                Box::new(workloads::Saturated { units: 1, hold: 4 }) as Box<dyn AppDriver + Send>
            }
        });
        let mut sched = RandomFair::new(3);
        let out = run_until(&mut net, &mut sched, 1_000_000, |net| {
            (1..n).all(|v| net.trace().cs_entries(Some(v)) >= 2)
        });
        assert!(out.is_satisfied(), "centralized coordinator must serve everyone");
    }

    // Per-unit arbiters.
    {
        let mut net = baselines::permission::network(n, cfg, workloads::all_saturated(1, 4));
        let mut sched = RandomFair::new(4);
        let out = run_until(&mut net, &mut sched, 2_000_000, |net| {
            (0..n).all(|v| net.trace().cs_entries(Some(v)) >= 2)
        });
        assert!(out.is_satisfied(), "arbiter baseline must serve everyone");
    }
}

#[test]
fn safety_holds_for_every_baseline_under_heterogeneous_load() {
    let n = 7usize;
    let cfg = KlConfig::new(2, 3, n);
    let driver = |id: usize| {
        Box::new(workloads::Saturated { units: (id % 2) + 1, hold: 5 })
            as Box<dyn AppDriver + Send>
    };

    {
        let mut net = baselines::ring::network(n, cfg, driver);
        let mut sched = RandomFair::new(11);
        run_for(&mut net, &mut sched, 150_000);
        for _ in 0..50_000u64 {
            net.step(&mut sched);
            let used: usize = net.nodes().map(|nd| nd.units_in_use()).sum();
            assert!(used <= cfg.l, "ring over-allocated");
        }
    }
    {
        let mut net = baselines::centralized::network(n, cfg, |id| {
            if id == 0 {
                Box::new(workloads::Heterogeneous { units: 0, hold: 1 })
                    as Box<dyn AppDriver + Send>
            } else {
                driver(id)
            }
        });
        let mut sched = RandomFair::new(12);
        for _ in 0..120_000u64 {
            net.step(&mut sched);
            assert!(baselines::centralized::units_in_use(&net) <= cfg.l);
        }
    }
    {
        let mut net = baselines::permission::network(n, cfg, driver);
        let mut sched = RandomFair::new(13);
        for _ in 0..120_000u64 {
            net.step(&mut sched);
            assert!(baselines::permission::units_in_use(&net) <= cfg.l);
        }
    }
}

#[test]
fn tree_protocol_survives_faults_that_break_the_non_stabilizing_baselines() {
    // The headline property separating this paper from the permission-based family: after a
    // catastrophic transient fault the tree protocol recovers, while the non-stabilizing
    // arbiter baseline (message loss variant) stays broken.
    let n = 6usize;
    let cfg = KlConfig::new(1, 2, n);

    // Tree: recovers.
    let tree = topology::builders::random_tree(n, 8);
    let mut net = protocol::ss::network(tree, cfg, workloads::all_saturated(1, 4));
    let mut sched = RandomFair::new(21);
    let boot = measure_convergence(&mut net, &mut sched, &cfg, 3_000_000, 2_000);
    assert!(boot.converged());
    let mut injector = FaultInjector::new(5);
    injector.inject(&mut net, &FaultPlan::catastrophic(cfg.cmax));
    let rec = measure_convergence(&mut net, &mut sched, &cfg, 6_000_000, 2_000);
    assert!(rec.converged());

    // Arbiter baseline: drop every in-flight message mid-run; at least one requester ends up
    // blocked forever because lost grants are never retransmitted.
    let mut net = baselines::permission::network(n, cfg, workloads::all_saturated(1, 4));
    let mut sched = RandomFair::new(22);
    // Wait until at least one Acquire or Grant is in flight so that wiping the channels is
    // guaranteed to strand somebody (the baseline never retransmits).
    let armed = run_until(&mut net, &mut sched, 200_000, |net| {
        net.iter_messages().any(|(_, _, m)| {
            matches!(
                m,
                baselines::ArbiterMessage::Acquire { .. } | baselines::ArbiterMessage::Grant { .. }
            )
        })
    });
    assert!(armed.is_satisfied());
    for v in 0..n {
        for label in 0..(n - 1) {
            net.channel_mut(v, label).clear();
        }
    }
    let before: Vec<usize> = (0..n).map(|v| net.trace().cs_entries(Some(v))).collect();
    run_for(&mut net, &mut sched, 400_000);
    let after: Vec<usize> = (0..n).map(|v| net.trace().cs_entries(Some(v))).collect();
    let stuck = (0..n).filter(|&v| after[v] == before[v]).count();
    assert!(
        stuck > 0,
        "expected at least one permanently blocked requester in the non-stabilizing baseline"
    );
}
