//! Integration tests for Theorem 1: convergence from arbitrary configurations across a
//! matrix of topologies, fault severities and protocol parameters — every regime expressed
//! as a declarative [`ScenarioSpec`] and run through the unified scenario API.

use kl_exclusion::prelude::*;

/// The bootstrap-fault-reconverge regime as a scenario: stabilize (warmup), inject the
/// fault, run until legitimacy is sustained again; the reported metric is the post-fault
/// convergence time in activations.
fn convergence_scenario(
    topology: TopologySpec,
    k: usize,
    l: usize,
    plan: FaultPlanSpec,
    seed: u64,
) -> CompiledScenario {
    ScenarioSpec::builder("convergence matrix")
        .topology(topology)
        .protocol(ProtocolSpec::Ss)
        .kl(k, l)
        .workload(WorkloadSpec::Uniform { seed, p_request: 0.01, max_units: k, max_hold: 10 })
        .daemon(DaemonSpec::RandomFair { seed })
        .warmup_spec(WarmupSpec { max_steps: 4_000_000, window: Some(2_000), daemon: None })
        .fault(seed.wrapping_add(1), plan)
        .stop(StopSpec::Predicate {
            name: "legitimate".into(),
            max_steps: 6_000_000,
            sustained_for: 2_000,
        })
        .metrics(&["converged", "convergence_activations", "warmup_activations"])
        .build()
        .expect("the convergence scenario validates")
}

fn convergence_after(
    topology: TopologySpec,
    k: usize,
    l: usize,
    plan: FaultPlanSpec,
    seed: u64,
) -> Option<f64> {
    let outcome = convergence_scenario(topology, k, l, plan, seed).run();
    assert!(outcome.warmup_activations.is_some(), "bootstrap failed");
    outcome.metric("convergence_activations")
}

#[test]
fn recovers_from_catastrophic_faults_on_all_shapes() {
    let shapes: Vec<(&str, TopologySpec)> = vec![
        ("chain", TopologySpec::Chain { n: 7 }),
        ("star", TopologySpec::Star { n: 7 }),
        ("binary", TopologySpec::Binary { n: 7 }),
        ("random", TopologySpec::Random { n: 10, seed: 9 }),
    ];
    for (name, topology) in shapes {
        let time = convergence_after(topology, 2, 3, FaultPlanSpec::Catastrophic, 100);
        assert!(time.is_some(), "{name}: did not recover from a catastrophic fault");
    }
}

#[test]
fn recovers_from_moderate_and_message_only_faults() {
    for (label, plan) in
        [("moderate", FaultPlanSpec::Moderate), ("message-only", FaultPlanSpec::MessageOnly)]
    {
        let time = convergence_after(TopologySpec::Figure1, 3, 5, plan, 7);
        assert!(time.is_some(), "{label}: did not recover");
    }
}

#[test]
fn recovers_across_seeds_and_reports_finite_times() {
    // The convergence matrix runs through the scenario harness backend: per-trial seeds are
    // a function of the trial index, so the measured times are identical at any shard count.
    let scenario = convergence_scenario(
        TopologySpec::Random { n: 6, seed: 0 },
        1,
        2,
        FaultPlanSpec::Catastrophic,
        0,
    );
    let report = scenario.run_harness(4);
    assert_eq!(report.per_trial.len(), 1, "trial plan defaults to 1");

    // Re-run with a 4-trial plan and check every trial reconverges with a finite time.
    let mut spec = scenario.spec().clone();
    spec.trials = 4;
    let report = spec.compile().unwrap().run_harness(4);
    assert_eq!(report.fraction("converged"), 1.0, "every trial must reconverge");
    let times = &report.summaries["convergence_activations"];
    assert!(times.min > 0.0);
    assert!(times.max < 6_000_000.0);
    assert_eq!(times.count, 4);
}

#[test]
fn harness_results_are_independent_of_shard_count() {
    let mut spec = convergence_scenario(
        TopologySpec::Random { n: 6, seed: 0 },
        1,
        2,
        FaultPlanSpec::Catastrophic,
        0,
    )
    .spec()
    .clone();
    spec.trials = 3;
    let scenario = spec.compile().unwrap();
    let sequential = scenario.run_harness(1);
    let sharded = scenario.run_harness(3);
    assert_eq!(sequential.per_trial, sharded.per_trial);
}

#[test]
fn recovers_from_forged_token_surplus_and_total_loss() {
    let tree = topology::builders::binary(9);
    let n = tree.len();
    let cfg = KlConfig::new(2, 4, n);
    let mut net = protocol::ss::network(tree, cfg, workloads::all_saturated(1, 5));
    let mut sched = RandomFair::new(55);
    let boot = measure_convergence(&mut net, &mut sched, &cfg, 4_000_000, 2_000);
    assert!(boot.converged());

    // Surplus: forge extra tokens of every kind.
    for i in 0..5usize {
        net.inject_into(i % n, 0, Message::ResT);
    }
    net.inject_into(1, 0, Message::PushT);
    net.inject_into(2, 0, Message::PrioT);
    assert!(!is_legitimate(&net, &cfg));
    let out = measure_convergence(&mut net, &mut sched, &cfg, 6_000_000, 2_000);
    assert!(out.converged(), "must recover from forged surplus tokens");

    // Loss: wipe every channel clean (all in-flight tokens disappear).
    for v in 0..n {
        for label in 0..net.topology().degree(v) {
            net.channel_mut(v, label).clear();
        }
    }
    let out = measure_convergence(&mut net, &mut sched, &cfg, 6_000_000, 2_000);
    assert!(out.converged(), "must recover from total in-flight token loss");
    assert_eq!(count_tokens(&net).resource, cfg.l);
}

#[test]
fn ring_baseline_also_recovers_but_is_a_different_protocol() {
    // Sanity cross-check used by experiment E8: the ring baseline stabilizes too (through
    // the same scenario API — the `Ring` protocol spec), so the tree-vs-ring comparison is
    // between two working self-stabilizing protocols.
    let scenario = ScenarioSpec::builder("ring recovery")
        .topology(TopologySpec::Chain { n: 8 }) // only the process count matters for a ring
        .protocol(ProtocolSpec::Ring)
        .kl(1, 2)
        .workload(WorkloadSpec::Saturated { units: 1, hold: 4 })
        .daemon(DaemonSpec::RandomFair { seed: 4 })
        .warmup_spec(WarmupSpec { max_steps: 3_000_000, window: Some(1), daemon: None })
        .fault(6, FaultPlanSpec::Catastrophic)
        .stop(StopSpec::Predicate {
            name: "legitimate".into(),
            max_steps: 4_000_000,
            sustained_for: 0,
        })
        .metrics(&["converged", "convergence_activations"])
        .build()
        .expect("the ring scenario validates");
    let outcome = scenario.run();
    assert!(outcome.warmup_activations.is_some(), "the ring baseline must stabilize");
    assert_eq!(outcome.metric("converged"), Some(1.0), "and recover from the fault");
}
