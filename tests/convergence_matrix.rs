//! Integration tests for Theorem 1: convergence from arbitrary configurations across a
//! matrix of topologies, fault severities and protocol parameters.

use kl_exclusion::prelude::*;

fn convergence_after(
    tree: OrientedTree,
    cfg: KlConfig,
    plan: FaultPlan,
    seed: u64,
) -> Option<u64> {
    let mut net = protocol::ss::network(tree, cfg, workloads::all_uniform(seed, 0.01, cfg.k, 10));
    let mut sched = RandomFair::new(seed);
    let boot = measure_convergence(&mut net, &mut sched, &cfg, 4_000_000, 2_000);
    assert!(boot.converged(), "bootstrap failed");
    let fault_at = net.now();
    let mut injector = FaultInjector::new(seed.wrapping_add(1));
    injector.inject(&mut net, &plan);
    let out = measure_convergence(&mut net, &mut sched, &cfg, 6_000_000, 2_000);
    out.stabilization_time().map(|t| t - fault_at)
}

#[test]
fn recovers_from_catastrophic_faults_on_all_shapes() {
    let shapes: Vec<(&str, OrientedTree)> = vec![
        ("chain", topology::builders::chain(7)),
        ("star", topology::builders::star(7)),
        ("binary", topology::builders::binary(7)),
        ("random", topology::builders::random_tree(10, 9)),
    ];
    for (name, tree) in shapes {
        let n = tree.len();
        let cfg = KlConfig::new(2, 3, n);
        let time = convergence_after(tree, cfg, FaultPlan::catastrophic(cfg.cmax), 100);
        assert!(time.is_some(), "{name}: did not recover from a catastrophic fault");
    }
}

#[test]
fn recovers_from_moderate_and_message_only_faults() {
    let tree = topology::builders::figure1_tree();
    let cfg = KlConfig::new(3, 5, 8);
    for (label, plan) in
        [("moderate", FaultPlan::moderate(cfg.cmax)), ("message-only", FaultPlan::message_only())]
    {
        let time = convergence_after(tree.clone(), cfg, plan, 7);
        assert!(time.is_some(), "{label}: did not recover");
    }
}

#[test]
fn recovers_across_seeds_and_reports_finite_times() {
    let cfg = KlConfig::new(1, 2, 6);
    // The convergence matrix runs through the sharded trial executor: per-trial seeds are a
    // function of the trial index, so the measured times are identical at any shard count.
    let times: Vec<f64> = analysis::harness::run_sharded(4, 0, 4, |seed, _stream| {
        let tree = topology::builders::random_tree(6, seed);
        let time = convergence_after(tree, cfg, FaultPlan::catastrophic(cfg.cmax), seed);
        time.expect("must converge") as f64
    });
    let summary = Summary::of(&times);
    assert!(summary.min > 0.0);
    assert!(summary.max < 6_000_000.0);
}

#[test]
fn recovers_from_forged_token_surplus_and_total_loss() {
    let tree = topology::builders::binary(9);
    let n = tree.len();
    let cfg = KlConfig::new(2, 4, n);
    let mut net = protocol::ss::network(tree, cfg, workloads::all_saturated(1, 5));
    let mut sched = RandomFair::new(55);
    let boot = measure_convergence(&mut net, &mut sched, &cfg, 4_000_000, 2_000);
    assert!(boot.converged());

    // Surplus: forge extra tokens of every kind.
    for i in 0..5usize {
        net.inject_into(i % n, 0, Message::ResT);
    }
    net.inject_into(1, 0, Message::PushT);
    net.inject_into(2, 0, Message::PrioT);
    assert!(!is_legitimate(&net, &cfg));
    let out = measure_convergence(&mut net, &mut sched, &cfg, 6_000_000, 2_000);
    assert!(out.converged(), "must recover from forged surplus tokens");

    // Loss: wipe every channel clean (all in-flight tokens disappear).
    for v in 0..n {
        for label in 0..net.topology().degree(v) {
            net.channel_mut(v, label).clear();
        }
    }
    let out = measure_convergence(&mut net, &mut sched, &cfg, 6_000_000, 2_000);
    assert!(out.converged(), "must recover from total in-flight token loss");
    assert_eq!(count_tokens(&net).resource, cfg.l);
}

#[test]
fn ring_baseline_also_recovers_but_is_a_different_protocol() {
    // Sanity cross-check used by experiment E8: the ring baseline stabilizes too, so the
    // tree-vs-ring comparison is between two working self-stabilizing protocols.
    let cfg = KlConfig::new(1, 2, 8);
    let mut net = baselines::ring::network(8, cfg, workloads::all_saturated(1, 4));
    let mut sched = RandomFair::new(4);
    let stable = run_until(&mut net, &mut sched, 3_000_000, |n| {
        baselines::ring::is_legitimate(n, &cfg)
    });
    assert!(stable.is_satisfied());
    let mut injector = FaultInjector::new(6);
    injector.inject(&mut net, &FaultPlan::catastrophic(cfg.cmax));
    let stable = run_until(&mut net, &mut sched, 4_000_000, |n| {
        baselines::ring::is_legitimate(n, &cfg)
    });
    assert!(stable.is_satisfied());
}
