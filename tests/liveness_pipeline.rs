//! Integration tests for the liveness verification subsystem: the declarative `"liveness"`
//! check property (state graph → SCC fair-cycle pass → lasso witness), the temporal
//! monitors on both backends, and the regression gate the CI job mirrors: the
//! non-stabilizing `checker-liveness` preset *must* report a fair starvation lasso, and
//! the `ss`-rung `checker-safety` preset must stay clean.

use kl_exclusion::prelude::*;

use analysis::monitor;
use analysis::scenario::preset;

/// The fair-cycle regression gate, positive half: the Figure-3 instance under the
/// pusher-only rung has a weakly fair lasso starving the 2-unit requester, found from the
/// preset alone.
#[test]
fn checker_liveness_preset_reports_a_fair_starvation_lasso() {
    let report = preset("checker-liveness")
        .expect("bundled preset")
        .compile()
        .expect("preset validates")
        .check()
        .expect("the pusher rung lowers into the checker");
    assert!(report.exhaustive(), "the Figure-3 liveness instance fits the preset budget");
    assert!(report.ok(), "safety holds along the livelock");
    assert!(!report.live(), "the pusher-only rung must starve a requester");
    let witness = report.liveness.iter().find(|w| w.victim == 1).expect("process a starves");
    assert!(!witness.cycle.is_empty());
    assert!(!witness.progress_nodes.is_empty(), "the cycle makes real progress");
    // The printed witness names the victim and the cycle.
    let rendered = witness.render();
    assert!(rendered.contains("process 1"), "{rendered}");
    assert!(rendered.contains("cycle"), "{rendered}");
}

/// The gate, negative halves: one rung up (priority token) the same instance is clean, and
/// the `ss` safety preset finds no lasso either.
#[test]
fn priority_and_ss_rungs_are_lasso_free() {
    let nonstab = preset("checker-liveness-nonstab")
        .expect("bundled preset")
        .compile()
        .expect("preset validates")
        .check()
        .expect("the nonstab rung lowers into the checker");
    assert!(nonstab.exhaustive());
    assert!(nonstab.live(), "the priority token removes the Figure-3 livelock");

    let ss = preset("checker-safety")
        .expect("bundled preset")
        .compile()
        .expect("preset validates")
        .check()
        .expect("the ss rung lowers into the checker");
    assert!(ss.ok(), "safety: {:?}", ss.violations);
    assert!(ss.live(), "no fair starvation lasso under the full protocol");
}

/// Replaying a checker lasso through the streaming monitors reproduces the checker's
/// verdict — the cross-backend agreement `klex fuzz` enforces campaign-wide.
#[test]
fn monitors_confirm_the_checker_lasso() {
    let spec = preset("checker-liveness").unwrap();
    let report = spec.clone().compile().unwrap().check().unwrap();
    let witness = report.liveness.first().expect("lasso found");
    let mut monitors: Vec<Box<dyn monitor::TemporalMonitor>> = monitor::MONITOR_NAMES
        .iter()
        .map(|name| monitor::monitor_for(name, spec.config.k, spec.config.l).unwrap())
        .collect();
    let verdicts = monitor::feed_lasso(&mut monitors, witness);
    let liveness = verdicts.iter().find(|r| r.name == "request-eventually-cs").unwrap();
    assert!(liveness.verdict.is_violated(), "{verdicts:?}");
    for safety in ["at-most-k-in-cs", "l-availability"] {
        let verdict = &verdicts.iter().find(|r| r.name == safety).unwrap().verdict;
        assert!(!verdict.is_violated(), "{safety}: {verdict:?}");
    }
}

/// The simulator-under-monitors backend: a stabilizing scenario satisfies its declared
/// safety monitors, and the declarative `properties` field drives which monitors run.
#[test]
fn simulator_monitors_certify_the_declared_properties() {
    let (outcome, monitors) = preset("figure3-ss")
        .expect("bundled preset")
        .compile()
        .expect("preset validates")
        .run_monitored();
    assert!(outcome.outcome.is_satisfied());
    let names: Vec<&str> = monitors.iter().map(|m| m.name.as_str()).collect();
    assert_eq!(names, ["request-eventually-cs", "at-most-k-in-cs", "l-availability"]);
    for report in &monitors {
        assert!(
            !report.verdict.is_violated(),
            "{}: {:?} — the self-stabilizing rung must not violate its certificates",
            report.name,
            report.verdict
        );
    }
}

/// Closure as data: `check.from_legitimate` stabilizes the ss instance before exploring,
/// and every reachable configuration stays legitimate.
#[test]
fn from_legitimate_check_verifies_closure() {
    let report = Scenario::builder("closure")
        .topology(TopologySpec::Figure3)
        .protocol(ProtocolSpec::Ss)
        .config(ConfigSpec::new(2, 2).with_cmax(0))
        .workload(WorkloadSpec::Saturated { units: 1, hold: 0 })
        .check(CheckSpec {
            max_configurations: 300_000,
            max_depth: 0,
            properties: vec!["legitimate".into(), "safety".into()],
            from_legitimate: true,
            ..CheckSpec::default()
        })
        .build()
        .expect("the closure scenario validates")
        .check()
        .expect("the ss rung lowers into the checker");
    assert!(report.exhaustive());
    assert!(report.ok(), "closure violated: {:?}", report.violations);
    assert!(report.deadlock_free());
}

/// `from_legitimate` is rejected where it is meaningless.
#[test]
fn from_legitimate_is_validated() {
    let bad = Scenario::builder("bad")
        .topology(TopologySpec::Figure3)
        .protocol(ProtocolSpec::Pusher)
        .kl(2, 3)
        .check(CheckSpec { from_legitimate: true, ..CheckSpec::default() })
        .build();
    assert!(matches!(bad, Err(ScenarioError::Invalid(_))));
}

/// Unknown monitor names are rejected at spec validation time.
#[test]
fn unknown_property_monitors_are_rejected() {
    let bad = Scenario::builder("bad")
        .topology(TopologySpec::Figure3)
        .kl(1, 2)
        .properties(&["no-such-monitor"])
        .build();
    assert!(matches!(bad, Err(ScenarioError::Invalid(_))));
}

/// A deterministic mini fuzz campaign stays disagreement-free — the in-tree shadow of the
/// CI `klex fuzz --smoke` job.
#[test]
fn mini_fuzz_campaign_is_clean() {
    let opts = bench::fuzz::FuzzOptions {
        scenarios: 12,
        max_configurations: 2_000,
        sim_steps: 400,
        out_dir: std::env::temp_dir(),
        ..bench::fuzz::FuzzOptions::new(bench::fuzz::CI_SEED)
    };
    let summary = bench::fuzz::run_campaign(&opts).unwrap();
    assert!(summary.clean(), "disagreements: {:?}", summary.disagreements);
    assert_eq!(summary.scenarios, 12);
}
