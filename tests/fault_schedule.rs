//! Integration tests for the adversarial fault-schedule engine (ISSUE 9 acceptance):
//! a multi-epoch campaign with topology churn runs through all three backends —
//! simulator, sharded harness, and bounded-exhaustive checker — with per-epoch
//! convergence times in the report, identical across engines and shard counts.

use checker::{ExplorationReport, ExploreEngine};
use kl_exclusion::prelude::*;

use analysis::scenario::{preset, FaultEventSpec, FaultScheduleSpec};

/// Backend 1+2 — the bundled `churn-campaign` preset (4 epochs, 2 of them churn) runs a
/// full campaign on the simulator, reports every epoch with its re-convergence time, and
/// produces shard-count-independent harness results.
#[test]
fn churn_campaign_reports_per_epoch_convergence_on_sim_and_harness() {
    let scenario = preset("churn-campaign").expect("bundled preset").compile().expect("compiles");
    let spec = scenario.spec();
    let schedule = spec.fault_schedule.as_ref().expect("the preset carries a schedule");
    assert!(schedule.epochs.len() >= 3, "acceptance asks for a ≥3-epoch schedule");
    assert!(
        schedule.epochs.iter().any(|e| e.is_churn()),
        "acceptance asks for at least one churn event"
    );

    let sim = scenario.run();
    assert_eq!(sim.epochs.len(), schedule.epochs.len(), "one outcome per epoch");
    for (epoch, event) in sim.epochs.iter().zip(&schedule.epochs) {
        assert_eq!(epoch.event, event.label(), "epochs report in schedule order");
    }
    // The campaign is the point: every epoch of this tuned preset re-converges, and the
    // times land in the metrics block alongside the aggregate campaign metrics.
    for (i, epoch) in sim.epochs.iter().enumerate() {
        let time = epoch.convergence.unwrap_or_else(|| {
            panic!("epoch {i} [{}] failed to re-converge", epoch.event)
        });
        assert_eq!(sim.metric(&format!("epoch{i}_convergence")), Some(time as f64));
    }
    assert_eq!(sim.metric("epochs_total"), Some(sim.epochs.len() as f64));
    assert_eq!(sim.metric("epochs_converged"), Some(sim.epochs.len() as f64));
    assert!(sim.metric("epoch_convergence_mean").unwrap() > 0.0);

    // Churn epochs record the network size *after* the event: the join grows the tree by
    // one node, the leave shrinks it back.
    let n = spec.topology.len();
    let sizes: Vec<usize> = sim.epochs.iter().map(|e| e.nodes).collect();
    assert_eq!(sizes, vec![n, n + 1, n + 1, n], "join-leaf then leave-leaf sizes");

    // The sharded harness reports the identical per-trial campaign metrics at any shard
    // count — trial decomposition must not perturb the per-trial schedule streams.
    let harness = scenario.run_harness(4);
    assert_eq!(harness.per_trial.len(), spec.trials as usize);
    for trial in &harness.per_trial {
        assert_eq!(trial.get("epochs_total"), Some(&(sim.epochs.len() as f64)));
    }
    assert_eq!(scenario.run_harness(1).per_trial, harness.per_trial);
}

/// The adversarial-by-construction gauntlet (targeted token-path corruption, double
/// crash, catastrophic transient) also runs end to end: the self-stabilizing rung
/// recovers from every epoch.
#[test]
fn fault_gauntlet_recovers_from_every_epoch() {
    let scenario = preset("fault-gauntlet").expect("bundled preset").compile().expect("compiles");
    let sim = scenario.run();
    assert_eq!(sim.epochs.len(), 3);
    assert_eq!(sim.metric("epochs_converged"), Some(3.0));
    assert!(sim.outcome.is_satisfied() || sim.metric("satisfied") == Some(1.0), "{:?}", sim.outcome);
}

/// A schedule-bearing spec survives the JSON round trip (the `klex run <file>` path) and
/// the round-tripped spec drives an identical campaign.
#[test]
fn schedule_bearing_specs_round_trip_through_json() {
    let spec = preset("churn-campaign").expect("bundled preset");
    let json = spec.to_json();
    let back = ScenarioSpec::from_json(&json).expect("schedule specs round-trip");
    assert_eq!(spec, back);

    let original = spec.compile().expect("compiles").run();
    let replayed = back.compile().expect("compiles").run();
    assert_eq!(original.epochs, replayed.epochs, "the round trip preserves the campaign");
    assert_eq!(original.metrics, replayed.metrics);
}

/// Field-for-field identity of two exploration reports (mirrors the parity suites).
fn assert_reports_identical(name: &str, a: &ExplorationReport, b: &ExplorationReport) {
    assert_eq!(a.configurations, b.configurations, "{name}: reachable-set size");
    assert_eq!(a.transitions, b.transitions, "{name}: transitions");
    assert_eq!(a.max_depth, b.max_depth, "{name}: max depth");
    assert_eq!(a.frontier_sizes, b.frontier_sizes, "{name}: frontiers per level");
    assert_eq!(a.truncated, b.truncated, "{name}: truncation");
    assert_eq!(a.violations.len(), b.violations.len(), "{name}: violation count");
    assert_eq!(a.deadlocks.len(), b.deadlocks.len(), "{name}: deadlock count");
}

/// Backend 3 — a churn schedule lowers into the checker: the prologue replays the
/// campaign (including the topology churn) to a settled configuration, and the delta,
/// interned, and parallel engines explore the identical reachable space from it.
#[test]
fn checker_engines_agree_on_a_churn_schedule() {
    let scenario = preset("checker-churn").expect("bundled preset").compile().expect("compiles");
    let schedule = scenario.spec().fault_schedule.as_ref().expect("schedule preset");
    assert!(schedule.epochs.len() >= 3);
    assert!(schedule.epochs.iter().any(|e| e.is_churn()));

    let delta = scenario.check_with(ExploreEngine::Delta).expect("schedules lower");
    let interned = scenario.check_with(ExploreEngine::Interned).expect("schedules lower");
    let parallel = scenario.check_parallel(2).expect("schedules lower");
    assert_reports_identical("delta vs interned", &delta, &interned);
    assert_reports_identical("delta vs parallel", &delta, &parallel);

    // The churn grew the chain by one leaf before exploration started, so the explored
    // space is non-trivial and safety holds throughout it.
    assert!(delta.configurations > 1, "the settled campaign state has successors");
    assert!(delta.ok(), "safety violations: {:?}", delta.violations);
}

/// Regression (found by the fuzzer): a per-node `Needs` workload combined with a
/// renumbering churn event must not desynchronize the parallel workers' driver
/// assignment.  Removing a leaf renumbers the survivors, and the campaign carries each
/// survivor's driver across under its *pre-churn* id; a worker net that re-indexed the
/// `needs` vector by post-churn ids explored a genuinely different protocol instance
/// (delta 6 vs parallel 11 configurations on this spec).
#[test]
fn parallel_workers_reproduce_carried_drivers_after_renumbering_churn() {
    let scenario = ScenarioSpec::builder("needs + leave-leaf driver carryover")
        .topology(TopologySpec::Figure3)
        .protocol(ProtocolSpec::Pusher)
        .kl(1, 1)
        .workload(WorkloadSpec::Needs { needs: vec![0, 1, 0], hold: 0 })
        .fault_schedule(FaultScheduleSpec {
            seed: 560_697_444_765_385_336,
            epochs: vec![FaultEventSpec::LeaveLeaf],
            max_steps: 300,
            window: None,
        })
        .check(CheckSpec {
            max_configurations: 1_000,
            max_depth: 0,
            properties: vec!["safety".into()],
            ..CheckSpec::default()
        })
        .build()
        .expect("valid spec");
    let delta = scenario.check_with(ExploreEngine::Delta).expect("lowers");
    for threads in [2, 4] {
        let parallel = scenario.check_parallel(threads).expect("lowers");
        assert_reports_identical(&format!("delta vs parallel({threads})"), &delta, &parallel);
    }
}
