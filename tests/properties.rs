//! Property-based tests (proptest) over the core data structures and protocol invariants.
//!
//! The expensive properties (whole-protocol runs) use a reduced number of cases; the cheap
//! structural ones use proptest's default.

use kl_exclusion::prelude::*;
use proptest::prelude::*;

/// Strategy: a random parent vector describing a tree of 2..=20 nodes (node 0 is the root and
/// node v > 0 attaches to a random earlier node).
fn tree_strategy() -> impl Strategy<Value = OrientedTree> {
    (2usize..=20, any::<u64>()).prop_map(|(n, seed)| topology::builders::random_tree(n, seed))
}

proptest! {
    // ------------------------------------------------------------------ structural properties

    #[test]
    fn virtual_ring_has_length_2n_minus_2(tree in tree_strategy()) {
        let ring = VirtualRing::of(&tree);
        prop_assert_eq!(ring.len(), 2 * (tree.len() - 1));
    }

    #[test]
    fn virtual_ring_first_visits_are_dfs_preorder(tree in tree_strategy()) {
        let ring = VirtualRing::of(&tree);
        prop_assert_eq!(ring.first_visit_order(), tree.dfs_preorder());
    }

    #[test]
    fn virtual_ring_visits_each_node_degree_times(tree in tree_strategy()) {
        let ring = VirtualRing::of(&tree);
        for v in 0..tree.len() {
            prop_assert_eq!(ring.visits(v), tree.degree(v));
        }
    }

    #[test]
    fn tree_channel_labels_are_involutive(tree in tree_strategy()) {
        for v in 0..tree.len() {
            for label in 0..tree.degree(v) {
                let (peer, peer_label) = tree.endpoint(v, label);
                let (back, back_label) = tree.endpoint(peer, peer_label);
                prop_assert_eq!((back, back_label), (v, label));
            }
        }
    }

    #[test]
    fn depths_are_consistent_with_parents(tree in tree_strategy()) {
        for v in 1..tree.len() {
            let p = tree.parent(v).unwrap();
            prop_assert_eq!(tree.depth(v), tree.depth(p) + 1);
        }
    }

    #[test]
    fn spanning_tree_preserves_node_count(
        n in 2usize..=16,
        extra in 0usize..=10,
        seed in any::<u64>(),
    ) {
        let graph = topology::RootedGraph::random_connected(n, extra, seed);
        let (tree, mapping) = graph.spanning_tree(topology::SpanningTreeMethod::Bfs);
        prop_assert_eq!(tree.len(), n);
        let mut seen = vec![false; n];
        for &m in &mapping {
            prop_assert!(!seen[m]);
            seen[m] = true;
        }
    }

    #[test]
    fn summary_is_order_invariant(mut xs in proptest::collection::vec(0.0f64..1e6, 1..50)) {
        let a = Summary::of(&xs);
        xs.reverse();
        let b = Summary::of(&xs);
        prop_assert!((a.mean - b.mean).abs() < 1e-6);
        prop_assert_eq!(a.min, b.min);
        prop_assert_eq!(a.max, b.max);
        prop_assert_eq!(a.median, b.median);
    }

    #[test]
    fn theorem2_bound_is_monotone_in_n_and_l(l in 1usize..8, n in 2usize..60) {
        let b = topology::euler::theorem2_waiting_bound(l, n);
        prop_assert!(topology::euler::theorem2_waiting_bound(l + 1, n) >= b);
        prop_assert!(topology::euler::theorem2_waiting_bound(l, n + 1) >= b);
    }
}

// --------------------------------------------------------------- wire-format and graph properties

/// Strategy: any protocol message, including controller messages with extreme field values.
fn message_strategy() -> impl Strategy<Value = protocol::Message> {
    prop_oneof![
        Just(protocol::Message::ResT),
        Just(protocol::Message::PushT),
        Just(protocol::Message::PrioT),
        (any::<u64>(), any::<bool>(), any::<u64>(), 0u8..=2)
            .prop_map(|(c, r, pt, ppr)| protocol::Message::Ctrl { c, r, pt, ppr }),
        any::<u16>().prop_map(protocol::Message::Garbage),
    ]
}

proptest! {
    #[test]
    fn wire_roundtrip_is_identity(msg in message_strategy()) {
        let frame = protocol::wire::encode(&msg);
        prop_assert_eq!(frame.len(), protocol::wire::encoded_len(&msg));
        prop_assert_eq!(protocol::wire::decode(&frame), Ok(msg));
        prop_assert_eq!(protocol::wire::decode_lossy(&frame), msg);
    }

    #[test]
    fn lossy_decode_never_panics_and_is_deterministic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let a = protocol::wire::decode_lossy(&bytes);
        let b = protocol::wire::decode_lossy(&bytes);
        prop_assert_eq!(a, b);
        // Strict decoding either agrees with the lossy result or reports an error.
        match protocol::wire::decode(&bytes) {
            Ok(msg) => prop_assert_eq!(msg, a),
            Err(_) => prop_assert!(matches!(a, protocol::Message::Garbage(_))),
        }
    }

    #[test]
    fn rooted_graph_channel_labels_are_involutive(
        n in 2usize..=24,
        extra in 0usize..=20,
        seed in any::<u64>(),
    ) {
        let graph = topology::RootedGraph::random_connected(n, extra, seed);
        for v in 0..graph.len() {
            for label in 0..graph.degree(v) {
                let (peer, peer_label) = graph.endpoint(v, label);
                prop_assert_eq!(graph.endpoint(peer, peer_label), (v, label));
            }
        }
    }

    #[test]
    fn histogram_preserves_sample_counts(
        samples in proptest::collection::vec(0u64..5_000, 1..200),
        buckets in 1usize..40,
    ) {
        let h = analysis::Histogram::of(&samples, buckets);
        prop_assert_eq!(h.total as usize, samples.len());
        prop_assert_eq!(h.counts.iter().sum::<u64>() + h.overflow + h.exhausted, h.total);
        let max = *samples.iter().max().unwrap();
        prop_assert!(h.quantile(1.0) >= max.min(h.high));
    }

    /// `Histogram::merge` is commutative and associative, and merging per-shard histograms
    /// is independent of how the samples were split into shards — the property the sharded
    /// harness relies on when combining per-worker distributions.  Exhausted trials (no
    /// measurement) survive every split as a separate count.
    #[test]
    fn histogram_merge_is_shard_independent(
        samples in proptest::collection::vec(0u64..200, 0..120),
        exhausted_every in 2usize..7,
        shards in 1usize..9,
    ) {
        let make = || analysis::Histogram::with_range(160, 8);
        let record = |h: &mut analysis::Histogram, idx: usize, sample: u64| {
            if idx.is_multiple_of(exhausted_every) {
                h.record_exhausted();
            } else {
                h.record(sample);
            }
        };
        // Reference: everything recorded into one histogram.
        let mut reference = make();
        for (idx, &s) in samples.iter().enumerate() {
            record(&mut reference, idx, s);
        }
        // Sharded: contiguous chunks recorded separately, then merged in order.
        let chunk = samples.len().div_ceil(shards).max(1);
        let mut merged = make();
        let mut per_shard: Vec<analysis::Histogram> = Vec::new();
        for (shard_idx, shard) in samples.chunks(chunk).enumerate() {
            let mut h = make();
            for (offset, &s) in shard.iter().enumerate() {
                record(&mut h, shard_idx * chunk + offset, s);
            }
            merged.merge(&h);
            per_shard.push(h);
        }
        prop_assert_eq!(&merged.counts, &reference.counts);
        prop_assert_eq!(merged.overflow, reference.overflow);
        prop_assert_eq!(merged.exhausted, reference.exhausted);
        prop_assert_eq!(merged.total, reference.total);
        // Commutativity: merging the shards in reverse gives the same result.
        let mut reversed = make();
        for h in per_shard.iter().rev() {
            reversed.merge(h);
        }
        prop_assert_eq!(&reversed.counts, &reference.counts);
        prop_assert_eq!(reversed.total, reference.total);
        // Associativity: (a + b) + c == a + (b + c) on the first three shards.
        if per_shard.len() >= 3 {
            let (a, b, c) = (&per_shard[0], &per_shard[1], &per_shard[2]);
            let mut left = make();
            left.merge(a);
            left.merge(b);
            left.merge(c);
            let mut bc = make();
            bc.merge(b);
            bc.merge(c);
            let mut right = make();
            right.merge(a);
            right.merge(&bc);
            prop_assert_eq!(&left.counts, &right.counts);
            prop_assert_eq!(left.overflow, right.overflow);
            prop_assert_eq!(left.exhausted, right.exhausted);
            prop_assert_eq!(left.total, right.total);
        }
    }

    /// Channel stress across the inline-ring → spill boundary: arbitrary interleavings of
    /// push / pop / unpush / unpop (seeded with enough pushes to guarantee spilling past
    /// the 4-slot inline ring) keep the queue equivalent to a reference `VecDeque` and
    /// maintain the `enqueued == delivered + lost + len` conservation law after every
    /// single operation; unpush/unpop remain exact inverses at every fill level.
    #[test]
    fn channel_conservation_law_holds_across_the_spill_boundary(
        preload in (treenet::channel::INLINE_CAPACITY + 1)..4 * treenet::channel::INLINE_CAPACITY,
        ops in proptest::collection::vec((0u8..4, 0u32..1_000), 1..120),
    ) {
        use std::collections::VecDeque;
        let mut ch: treenet::channel::Channel<u32> = treenet::channel::Channel::new();
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut delivered_model: u64 = 0;

        let law = |ch: &treenet::channel::Channel<u32>| {
            ch.enqueued() == ch.delivered() + ch.lost() + ch.len() as u64
        };
        let same = |ch: &treenet::channel::Channel<u32>, model: &VecDeque<u32>| {
            ch.iter().copied().eq(model.iter().copied())
        };

        // Push past the inline capacity so the interleaving genuinely crosses the spill
        // boundary in both directions.
        for i in 0..preload {
            let value = 10_000 + i as u32;
            ch.push(value);
            model.push_back(value);
        }
        prop_assert!(law(&ch) && same(&ch, &model));

        for (op, value) in ops {
            match op {
                // push: tail append.
                0 => {
                    ch.push(value);
                    model.push_back(value);
                }
                // pop: head removal, counted as a delivery.
                1 => {
                    let got = ch.pop();
                    prop_assert_eq!(got, model.pop_front());
                    if got.is_some() {
                        delivered_model += 1;
                    }
                }
                // unpush: exact inverse of the most recent push.
                2 => {
                    prop_assert_eq!(ch.unpush(), model.pop_back());
                }
                // unpop: exact inverse of a pop (needs a prior delivery to reverse).
                _ => {
                    if delivered_model > 0 {
                        ch.unpop(value);
                        model.push_front(value);
                        delivered_model -= 1;
                    }
                }
            }
            prop_assert!(law(&ch), "conservation law broken after op {}", op);
            prop_assert!(same(&ch, &model), "contents diverged after op {}", op);
            prop_assert_eq!(ch.delivered(), delivered_model);
        }

        // Drain through unpush all the way back across the boundary.
        while let Some(got) = ch.unpush() {
            prop_assert_eq!(Some(got), model.pop_back());
            prop_assert!(law(&ch));
        }
        prop_assert!(model.is_empty());
        prop_assert_eq!(ch.len(), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// The distributed spanning-tree protocol converges to the exact BFS distances on random
    /// connected graphs under the deterministic fair scheduler.
    #[test]
    fn spanning_tree_protocol_converges_to_bfs_distances(
        n in 3usize..=14,
        extra in 0usize..=10,
        seed in any::<u64>(),
    ) {
        let graph = topology::RootedGraph::random_connected(n, extra, seed);
        let expected = graph.bfs_distances();
        let mut net = stree::network_with_defaults(graph);
        let mut sched = RoundRobin::new();
        let mut converged = false;
        for _ in 0..200_000u64 {
            net.step(&mut sched);
            if stree::distances_are_exact(&net) && stree::parents_form_tree(&net) {
                converged = true;
                break;
            }
        }
        prop_assert!(converged, "no convergence for n={n}, extra={extra}, seed={seed}");
        let extracted = stree::extract_tree(&net).expect("stabilized network yields a tree");
        for v in 0..expected.len() {
            prop_assert_eq!(extracted.depths[v], expected[v]);
        }
    }
}

/// Brute-force re-derivation of the enabled-set bookkeeping plus the per-channel
/// conservation law — the invariants every fault-schedule event must preserve.
fn assert_net_consistent<P: treenet::Process>(net: &treenet::Network<P, OrientedTree>) {
    let enabled = net.enabled_set();
    let mut in_flight = 0usize;
    for v in 0..net.len() {
        let degree = net.topology().degree(v);
        assert_eq!(enabled.degree(v), degree, "node {v} degree");
        let nonempty: Vec<usize> =
            (0..degree).filter(|&l| !net.channel(v, l).is_empty()).collect();
        assert_eq!(enabled.deliverable_count(v), nonempty.len(), "node {v} deliverable count");
        for (i, &l) in nonempty.iter().enumerate() {
            assert_eq!(enabled.nth_deliverable(v, i), Some(l), "node {v} slot {i}");
        }
        for l in 0..degree {
            let ch = net.channel(v, l);
            assert_eq!(
                ch.enqueued(),
                ch.delivered() + ch.lost() + ch.len() as u64,
                "conservation law at node {v} channel {l}"
            );
        }
        in_flight += (0..degree).map(|l| net.channel(v, l).len()).sum::<usize>();
    }
    assert_eq!(net.in_flight(), in_flight, "in-flight census");
}

// ------------------------------------------------------------------- protocol-level properties

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// Safety invariant: however the (clean-start) protocol is scheduled and loaded, no more
    /// than ℓ units are in use and no process exceeds k.
    #[test]
    fn ss_protocol_is_always_safe_after_stabilization(
        seed in any::<u64>(),
        n in 4usize..=10,
        hold in 2u64..12,
    ) {
        let l = (n / 2).clamp(2, 5);
        let k = (l / 2).max(1);
        let cfg = KlConfig::new(k, l, n);
        let tree = topology::builders::random_tree(n, seed);
        let mut net = protocol::ss::network(tree, cfg, workloads::all_saturated(k, hold));
        let mut sched = RandomFair::new(seed ^ 0xABCD);
        let boot = measure_convergence(&mut net, &mut sched, &cfg, 3_000_000, 2_000);
        prop_assert!(boot.converged());
        for _ in 0..30_000u64 {
            net.step(&mut sched);
            let used: usize = net.nodes().map(|nd| nd.units_in_use()).sum();
            prop_assert!(used <= cfg.l);
            for nd in net.nodes() {
                prop_assert!(nd.units_in_use() <= cfg.k);
            }
        }
    }

    /// Convergence invariant (Theorem 1): from an arbitrary fault-injected configuration the
    /// protocol returns to a legitimate configuration.
    #[test]
    fn ss_protocol_recovers_from_random_faults(
        seed in any::<u64>(),
        n in 4usize..=9,
        corrupt in 0.0f64..=1.0,
        garbage in 0usize..=2,
    ) {
        let cfg = KlConfig::new(1, 2, n);
        let tree = topology::builders::random_tree(n, seed);
        let mut net = protocol::ss::network(tree, cfg, workloads::all_uniform(seed, 0.01, 1, 8));
        let mut sched = RandomFair::new(seed ^ 0x1234);
        let boot = measure_convergence(&mut net, &mut sched, &cfg, 3_000_000, 2_000);
        prop_assert!(boot.converged());
        let plan = FaultPlan {
            corrupt_node_prob: corrupt,
            channel_garbage_max: garbage,
            drop_prob: 0.4,
            duplicate_prob: 0.3,
            clear_channel_prob: 0.2,
        };
        let mut injector = FaultInjector::new(seed ^ 0x5555);
        injector.inject(&mut net, &plan);
        let out = measure_convergence(&mut net, &mut sched, &cfg, 6_000_000, 2_000);
        prop_assert!(out.converged());
    }

    /// Every event of the fault-schedule engine — transient corruption, message bursts,
    /// crash-restarts, and topology churn with state carryover — preserves the per-channel
    /// conservation law (`enqueued == delivered + lost + len`) and leaves the enabled-set
    /// bookkeeping exactly re-derivable from the channels, after the event and after the
    /// protocol keeps running on the (possibly reshaped) network.
    #[test]
    fn fault_and_churn_events_preserve_conservation_and_the_enabled_set(
        seed in any::<u64>(),
        n in 3usize..=9,
        events in proptest::collection::vec((0u8..6, any::<u64>()), 1..8),
    ) {
        let cfg = KlConfig::new(1, 2, n);
        let tree = topology::builders::random_tree(n, seed);
        let mut net = protocol::ss::network(tree, cfg, workloads::all_saturated(1, 4));
        let mut sched = RoundRobin::new();
        let mut injector = FaultInjector::new(seed ^ 0xFA17);
        let donor_net =
            |tree: OrientedTree| protocol::ss::network(tree, cfg, workloads::all_saturated(1, 4));

        // Let traffic build up before the campaign starts.
        for _ in 0..200u32 {
            net.step(&mut sched);
        }
        assert_net_consistent(&net);

        for (op, draw) in events {
            let draw = draw as usize;
            match op {
                // A transient fault touching state and channels alike.
                0 => {
                    injector.inject(&mut net, &FaultPlan {
                        corrupt_node_prob: 0.5,
                        channel_garbage_max: 2,
                        drop_prob: 0.3,
                        duplicate_prob: 0.3,
                        clear_channel_prob: 0.2,
                    });
                }
                // A message-only burst.
                1 => {
                    injector.inject(&mut net, &FaultPlan {
                        corrupt_node_prob: 0.0,
                        channel_garbage_max: 1,
                        drop_prob: 0.5,
                        duplicate_prob: 0.5,
                        clear_channel_prob: 0.0,
                    });
                }
                // A crash-restart, alternately losing the victim's incoming channels.
                2 => {
                    injector.crash_random(&mut net, 1, draw.is_multiple_of(2));
                }
                // Churn: a leaf joins under an arbitrary parent…
                3 => {
                    let parent = draw % net.len();
                    let new_tree = net.topology().with_leaf_added(parent);
                    let map: Vec<Option<usize>> =
                        (0..net.len()).map(Some).chain([None]).collect();
                    net.rebuild_from(donor_net(new_tree), &map);
                }
                // …a non-root leaf leaves (skipped at the 2-process minimum)…
                4 => {
                    if net.len() > 2 {
                        let leaves: Vec<usize> =
                            (1..net.len()).filter(|&v| net.topology().is_leaf(v)).collect();
                        let (new_tree, old_of_new) =
                            net.topology().with_leaf_removed(leaves[draw % leaves.len()]);
                        let map: Vec<Option<usize>> =
                            old_of_new.into_iter().map(Some).collect();
                        net.rebuild_from(donor_net(new_tree), &map);
                    }
                }
                // …or an edge is rewired (skipped when the tree admits no rewiring).
                _ => {
                    let tree = net.topology().clone();
                    let m = tree.len();
                    let pairs: Vec<(usize, usize)> = (1..m)
                        .flat_map(|v| (0..m).map(move |u| (v, u)))
                        .filter(|&(v, u)| {
                            u != v && tree.parent(v) != Some(u) && !tree.in_subtree(u, v)
                        })
                        .collect();
                    if !pairs.is_empty() {
                        let (v, u) = pairs[draw % pairs.len()];
                        let map: Vec<Option<usize>> = (0..m).map(Some).collect();
                        net.rebuild_from(donor_net(tree.with_edge_rewired(v, u)), &map);
                    }
                }
            }
            assert_net_consistent(&net);
            // The network keeps running correctly after every event.
            for _ in 0..100u32 {
                net.step(&mut sched);
            }
            assert_net_consistent(&net);
        }
    }

    /// Token conservation for the non-stabilizing rung: without faults the ℓ resource tokens
    /// are conserved exactly, whatever the workload and scheduling.
    #[test]
    fn nonstab_protocol_conserves_tokens(
        seed in any::<u64>(),
        n in 3usize..=10,
        p_req in 0.0f64..0.2,
    ) {
        let cfg = KlConfig::new(2, 3, n);
        let tree = topology::builders::random_tree(n, seed);
        let mut net = protocol::nonstab::network(
            tree,
            cfg,
            workloads::all_uniform(seed, p_req, 2, 10),
        );
        let mut sched = RandomFair::new(seed ^ 0x77);
        // Wait for the root's first activation, which creates the initial tokens all at once.
        let booted = run_until(&mut net, &mut sched, 50_000, |net| {
            count_tokens(net).resource == cfg.l
        });
        prop_assert!(booted.is_satisfied());
        for _ in 0..15_000u64 {
            net.step(&mut sched);
            let census = count_tokens(&net);
            prop_assert_eq!(census.resource, cfg.l);
            prop_assert_eq!(census.pusher + census.priority, 2);
        }
    }
}
