//! Cross-crate integration tests for the two conclusion-driven extensions:
//!
//! * crash-restart failures (`treenet::Restartable` + `FaultInjector::crash`) — the
//!   self-stabilizing protocol treats a crash as a transient fault and recovers;
//! * the unbounded-memory adaptation (`KlConfig::unbounded_counter`) — the protocol works
//!   without the CMAX assumption on initial channel garbage.
//!
//! Everything is exercised through the public facade crate only.

use kl_exclusion::prelude::*;
use proptest::prelude::*;

/// Stabilize a network and clear its counters, panicking if it never stabilizes.
fn stabilize(
    net: &mut Network<protocol::SsNode, OrientedTree>,
    sched: &mut impl Scheduler,
    cfg: &KlConfig,
) {
    let out = measure_convergence(net, sched, cfg, 4_000_000, 2_000);
    assert!(out.converged(), "network failed to stabilize");
    net.trace_mut().clear();
    net.metrics_mut().reset();
}

#[test]
fn crash_of_any_single_process_is_absorbed() {
    let tree = topology::builders::figure1_tree();
    let n = tree.len();
    let cfg = KlConfig::new(2, 4, n);
    for victim in 0..n {
        let mut net = protocol::ss::network(tree.clone(), cfg, workloads::all_saturated(2, 6));
        let mut sched = RandomFair::new(31 + victim as u64);
        stabilize(&mut net, &mut sched, &cfg);

        let mut injector = FaultInjector::new(victim as u64);
        let report = injector.crash(&mut net, &[victim], true);
        assert_eq!(report.nodes_crashed, 1);

        let out = measure_convergence(&mut net, &mut sched, &cfg, 4_000_000, 2_000);
        assert!(out.converged(), "crash of process {victim} was not absorbed");
        // The crashed process itself is served again afterwards.
        let served = run_until(&mut net, &mut sched, 2_000_000, |net| {
            net.trace().cs_entries(Some(victim)) >= 2
        });
        assert!(served.is_satisfied(), "process {victim} starved after its crash");
    }
}

#[test]
fn repeated_crash_waves_do_not_break_safety_or_service() {
    let tree = topology::builders::binary(9);
    let n = tree.len();
    let cfg = KlConfig::new(2, 4, n);
    let mut net = protocol::ss::network(tree, cfg, workloads::all_think_time(7, 2, 5, 10, 40));
    let mut sched = RandomFair::new(91);
    stabilize(&mut net, &mut sched, &cfg);

    let mut injector = FaultInjector::new(404);
    let mut monitor = SafetyMonitor::new(cfg);
    for wave in 0..5u64 {
        // Crash a third of the processes, losing their incoming messages.
        let (_victims, report) = injector.crash_random(&mut net, n / 3, true);
        assert_eq!(report.nodes_crashed, n / 3);
        // Let the system recover, checking the safety bounds along the way: a crash may lose
        // tokens but must never manufacture extra in-use units.
        let out = measure_convergence(&mut net, &mut sched, &cfg, 4_000_000, 2_000);
        assert!(out.converged(), "wave {wave}: no re-convergence");
        monitor.check(&net);
    }
    assert!(monitor.clean(), "safety violated across crash waves: {:?}", monitor.violations());
    // After the last wave the protocol still serves everybody.
    net.trace_mut().clear();
    let served = run_until(&mut net, &mut sched, 3_000_000, |net| {
        (0..n).all(|v| net.trace().cs_entries(Some(v)) >= 1)
    });
    assert!(served.is_satisfied(), "some process starved after the crash waves");
}

#[test]
fn crash_of_the_root_restarts_the_controller() {
    let tree = topology::builders::chain(6);
    let cfg = KlConfig::new(1, 2, 6);
    let mut net = protocol::ss::network(tree, cfg, workloads::all_saturated(1, 4));
    let mut sched = RoundRobin::new();
    stabilize(&mut net, &mut sched, &cfg);

    let mut injector = FaultInjector::new(8);
    injector.crash(&mut net, &[0], true);
    // The restarted root has a fresh counter and successor pointer; its timeout relaunches the
    // controller and the census is repaired.
    let out = measure_convergence(&mut net, &mut sched, &cfg, 4_000_000, 2_000);
    assert!(out.converged());
    let census = protocol::count_tokens(&net);
    assert_eq!((census.resource, census.pusher, census.priority), (cfg.l, 1, 1));
}

#[test]
fn unbounded_counter_variant_works_through_the_facade() {
    let tree = topology::builders::star(8);
    let cfg = KlConfig::new(2, 4, 8).with_cmax(0).with_unbounded_counter(true);
    let mut net = protocol::ss::network(tree, cfg, workloads::all_skewed(3, 0.2, 2, 0.6, 5));
    let mut sched = RandomFair::new(44);
    stabilize(&mut net, &mut sched, &cfg);

    // Violate the (here: zero) CMAX assumption with a burst of forged controllers and tokens.
    for v in 0..8usize {
        for l in 0..net.topology().degree(v) {
            for stamp in 0..15u64 {
                net.inject_into(v, l, protocol::Message::Ctrl { c: stamp, r: false, pt: 1, ppr: 1 });
            }
            net.inject_into(v, l, protocol::Message::ResT);
            net.inject_into(v, l, protocol::Message::PrioT);
        }
    }
    let out = measure_convergence(&mut net, &mut sched, &cfg, 6_000_000, 2_000);
    assert!(out.converged(), "the unbounded-counter variant must flush unbounded garbage");

    // And it still serves the skewed workload afterwards.
    net.trace_mut().clear();
    let served = run_until(&mut net, &mut sched, 2_000_000, |net| net.trace().cs_entries(None) >= 20);
    assert!(served.is_satisfied());
}

#[test]
fn new_workload_drivers_are_served_and_starvation_free() {
    // Mix the three new drivers on one tree: skewed sizes, think-time closed loop, and a
    // deterministic cycle; every process must be served.
    let tree = topology::builders::caterpillar(4, 2);
    let n = tree.len();
    let cfg = KlConfig::new(3, 5, n);
    let mut net = protocol::ss::network(tree, cfg, |id| match id % 3 {
        0 => Box::new(workloads::SkewedNeeds::new(id as u64, 0.3, 3, 0.5, 4))
            as Box<dyn AppDriver + Send>,
        1 => Box::new(workloads::ThinkTime::new(id as u64, 2, 5, 5, 25))
            as Box<dyn AppDriver + Send>,
        _ => Box::new(workloads::Cyclic::new(vec![(1, 3), (3, 6), (2, 2)]))
            as Box<dyn AppDriver + Send>,
    });
    let mut sched = RandomFair::new(123);
    stabilize(&mut net, &mut sched, &cfg);
    run_for(&mut net, &mut sched, 250_000);
    let fairness = FairnessReport::from_trace(net.trace(), n);
    assert!(fairness.starvation_free(), "starved nodes: {:?}", fairness.starved);
    // Safety held throughout (spot-check the final configuration).
    let used: usize = net.nodes().map(|nd| nd.units_in_use()).sum();
    assert!(used <= cfg.l);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// Crash-recovery property: from a stabilized configuration, crash-restarting any random
    /// subset of processes (with message loss) always leads back to a legitimate
    /// configuration.
    #[test]
    fn crash_of_random_subsets_always_reconverges(
        seed in any::<u64>(),
        n in 4usize..=10,
        crash_count in 1usize..=10,
    ) {
        let cfg = KlConfig::new(1, 2, n);
        let tree = topology::builders::random_tree(n, seed);
        let mut net = protocol::ss::network(tree, cfg, workloads::all_uniform(seed, 0.02, 1, 6));
        let mut sched = RandomFair::new(seed ^ 0xC0FFEE);
        let boot = measure_convergence(&mut net, &mut sched, &cfg, 3_000_000, 2_000);
        prop_assert!(boot.converged());

        let mut injector = FaultInjector::new(seed ^ 0xBEEF);
        let (victims, report) = injector.crash_random(&mut net, crash_count.min(n), true);
        prop_assert_eq!(report.nodes_crashed, victims.len());

        let out = measure_convergence(&mut net, &mut sched, &cfg, 6_000_000, 2_000);
        prop_assert!(out.converged(), "no recovery after crashing {:?}", victims);
    }
}
