//! Integration tests for the extension to arbitrary rooted networks: the distributed
//! spanning-tree construction composed with the k-out-of-ℓ exclusion protocol.

use kl_exclusion::prelude::*;

use stree::composed::{compose, compose_with_defaults, CompositionBudget};
use stree::StConfig;
use topology::{RootedGraph, SpanningTreeMethod};

#[test]
fn composition_matches_the_offline_bfs_tree_depths() {
    // The distributed construction and the offline extraction must agree on BFS depths
    // (parents may differ among equal-depth candidates, depths may not).
    for seed in [3u64, 17, 40] {
        let graph = RootedGraph::random_connected(15, 9, seed);
        let (offline_tree, offline_map) = graph.spanning_tree(SpanningTreeMethod::Bfs);
        let kl = KlConfig::new(1, 2, 15);
        let mut sched = RandomFair::new(seed);
        let composition = compose_with_defaults(
            graph.clone(),
            kl,
            |_| Box::new(treenet::app::Idle) as treenet::app::BoxedDriver,
            &mut sched,
        )
        .expect("composition stabilizes");
        for v in 0..graph.len() {
            assert_eq!(
                composition.extracted.depths[v],
                offline_tree.depth(offline_map[v]),
                "depth of graph node {v}, seed {seed}"
            );
        }
    }
}

#[test]
fn composed_system_is_safe_fair_and_live_on_a_mesh() {
    let graph = RootedGraph::random_connected(14, 10, 77);
    let n = graph.len();
    let kl = KlConfig::new(2, 4, n);
    let mut sched = RandomFair::new(5);
    let mut composition =
        compose_with_defaults(graph, kl, workloads::all_saturated(2, 6), &mut sched)
            .expect("composition stabilizes");

    // Drive the composed system and monitor safety continuously.
    let mut monitor = SafetyMonitor::new(kl).with_conservation();
    composition.network.trace_mut().clear();
    for _ in 0..120_000u64 {
        composition.network.step(&mut sched);
        if composition.network.now().is_multiple_of(64) {
            monitor.check(&composition.network);
        }
    }
    assert!(monitor.clean(), "violations: {:?}", monitor.violations());

    let fairness = FairnessReport::from_trace(composition.network.trace(), n);
    assert!(fairness.starvation_free(), "entries: {:?}", fairness.entries_per_node);
    assert!(fairness.total_entries() > 100);
}

#[test]
fn waiting_time_bound_holds_on_the_constructed_tree() {
    // Theorem 2 is stated for the tree the protocol runs on; after composition that tree has
    // n nodes, so the ℓ(2n−3)² bound applies unchanged.
    let graph = RootedGraph::random_connected(10, 6, 13);
    let n = graph.len();
    let kl = KlConfig::new(1, 3, n);
    let mut sched = RandomFair::new(23);
    let mut composition =
        compose_with_defaults(graph, kl, workloads::all_saturated(1, 4), &mut sched)
            .expect("composition stabilizes");
    composition.network.trace_mut().clear();
    for _ in 0..150_000u64 {
        composition.network.step(&mut sched);
    }
    let bound = topology::euler::theorem2_waiting_bound(kl.l, n);
    let worst = waiting_times(composition.network.trace())
        .iter()
        .map(|w| w.cs_entries_waited)
        .max()
        .unwrap_or(0);
    assert!(worst <= bound, "worst waiting {worst} exceeds the Theorem-2 bound {bound}");
}

#[test]
fn denser_graphs_yield_shallower_trees_and_shorter_rings() {
    // Structural sanity of the construction: adding chords can only shorten (or keep) BFS
    // depths, which keeps the virtual ring length fixed at 2(n-1) but reduces its eccentricity.
    let sparse = RootedGraph::random_connected(16, 0, 9);
    let dense = RootedGraph::random_connected(16, 40, 9);
    let kl = KlConfig::new(1, 2, 16);
    let mut sched = RandomFair::new(1);
    let sparse_comp = compose_with_defaults(
        sparse,
        kl,
        |_| Box::new(treenet::app::Idle) as treenet::app::BoxedDriver,
        &mut sched,
    )
    .expect("sparse composition stabilizes");
    let dense_comp = compose_with_defaults(
        dense,
        kl,
        |_| Box::new(treenet::app::Idle) as treenet::app::BoxedDriver,
        &mut sched,
    )
    .expect("dense composition stabilizes");
    assert!(dense_comp.extracted.tree.height() <= sparse_comp.extracted.tree.height());
    assert_eq!(VirtualRing::of(&dense_comp.extracted.tree).len(), 2 * (16 - 1));
}

#[test]
fn composition_reports_budget_exhaustion_instead_of_panicking() {
    let graph = RootedGraph::random_connected(12, 6, 3);
    let st = StConfig::for_graph(&graph);
    let kl = KlConfig::new(1, 2, 12);
    let mut sched = RoundRobin::new();
    let budget = CompositionBudget { st_max_steps: 10, st_window: 5, kl_max_steps: 10, kl_window: 5 };
    let result = compose(
        graph,
        st,
        kl,
        |_| Box::new(treenet::app::Idle) as treenet::app::BoxedDriver,
        &mut sched,
        budget,
    );
    assert!(result.is_err());
}
