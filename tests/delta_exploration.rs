//! Delta successor engine: undo-log correctness and engine parity.
//!
//! The delta engine (`checker::ExploreEngine::Delta`, the default behind `Explorer::run`)
//! derives every successor by executing **in place** and reverting through an undo log,
//! re-packing and re-hashing only the segments a transition dirtied.  Its soundness rests on
//! two claims, each pinned here against the retained interned oracle:
//!
//! 1. **Apply-then-revert is the identity** on the packed configuration (bit-for-bit) and on
//!    the segmented hash — checked as a property over all four protocol rungs, random trees,
//!    and fault-corrupted starting configurations.
//! 2. **Report parity** — the delta and interned engines produce identical reachable-set
//!    sizes, per-level frontier sizes, violation reports and deadlock witnesses on the
//!    paper-anchored scenario presets (`checker-safety`, the `figure2` family, the `figure3`
//!    family).
//!
//! The same file pins the harness trial-reuse path: resetting one network in place across
//! trials must be observationally identical to rebuilding it per trial.

use analysis::harness::trial_seed;
use analysis::scenario::{
    preset, CompiledScenario, DaemonSpec, ProtocolSpec, StopSpec, TopologySpec, WorkloadSpec,
};
use checker::snapshot::{
    capture_packed, restore_packed_mapped, segmented_hash, CheckableNode, SegmentMap,
};
use checker::{drivers, ExplorationReport, ExploreEngine, Explorer, Limits};
use klex_core::KlConfig;
use proptest::prelude::*;
use topology::{OrientedTree, Topology};
use treenet::{Activation, Corruptible, FaultInjector, FaultPlan, Network, StepUndo};

/// Applies every enabled activation of `net`'s current configuration through the delta
/// engine's apply/revert discipline and asserts that each one returns the network to a
/// bit-identical packed configuration with an identical segmented hash.
fn assert_apply_revert_is_identity<P>(net: &mut Network<P, OrientedTree>)
where
    P: CheckableNode,
{
    // Canonicalize the starting point exactly like the explorer does when it pops a state:
    // capture, then restore (which normalizes non-abstracted run-time fields such as
    // `entered_at`), then treat the capture as the parent.
    let mut parent = Vec::new();
    capture_packed(net, &mut parent);
    let mut map = SegmentMap::default();
    restore_packed_mapped(net, &parent, &mut map);
    let h_parent = segmented_hash(&parent, &map);

    let n = net.len();
    let mut activations = Vec::new();
    for v in 0..n {
        for l in 0..net.topology().degree(v) {
            if !net.channel(v, l).is_empty() {
                activations.push(Activation::Deliver { node: v, channel: l });
            }
        }
    }
    for v in 0..n {
        activations.push(Activation::Tick { node: v });
    }

    let mut undo = StepUndo::new();
    let mut recaptured = Vec::new();
    let mut remap = SegmentMap::default();
    for act in activations {
        let node = match act {
            Activation::Deliver { node, .. } | Activation::Tick { node } => node,
        };
        net.trace_mut().clear();
        let saved = net.node(node).capture_state();
        net.execute_undoable(act, &mut undo);
        net.revert(&mut undo);
        net.node_mut(node).restore_state(&saved);

        capture_packed(net, &mut recaptured);
        assert_eq!(
            recaptured, parent,
            "apply+revert of {act:?} must restore the packed configuration bit-identically"
        );
        restore_packed_mapped(net, &recaptured, &mut remap);
        assert_eq!(
            segmented_hash(&recaptured, &remap),
            h_parent,
            "apply+revert of {act:?} must restore the segmented hash"
        );
    }
}

/// Builds one rung of the protocol ladder on a seeded random tree with heterogeneous
/// holding requesters, optionally fault-corrupted into an arbitrary configuration.
fn rung_roundtrip(rung: usize, n: usize, seed: u64, corrupt: bool) {
    let tree = topology::builders::random_tree(n, seed | 1);
    let cfg = KlConfig::new(2, 3, n);
    let needs: Vec<usize> = (0..n).map(|v| v % 3).collect();
    let plan = FaultPlan::catastrophic(2);

    fn prepare<P>(net: &mut Network<P, OrientedTree>, corrupt: bool, seed: u64, plan: &FaultPlan)
    where
        P: CheckableNode + Corruptible,
    {
        if corrupt {
            let mut injector = FaultInjector::new(seed ^ 0xC0FFEE);
            injector.inject(net, plan);
        }
        assert_apply_revert_is_identity(net);
    }

    match rung {
        0 => {
            let mut net =
                klex_core::naive::network(tree, cfg, drivers::from_needs_holding(&needs));
            prepare(&mut net, corrupt, seed, &plan);
        }
        1 => {
            let mut net =
                klex_core::pusher::network(tree, cfg, drivers::from_needs_holding(&needs));
            prepare(&mut net, corrupt, seed, &plan);
        }
        2 => {
            let mut net =
                klex_core::nonstab::network(tree, cfg, drivers::from_needs_holding(&needs));
            prepare(&mut net, corrupt, seed, &plan);
        }
        _ => {
            let mut net = checker::scenarios::ss_for_checking(
                tree,
                cfg,
                drivers::from_needs_holding(&needs),
            );
            prepare(&mut net, corrupt, seed, &plan);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Satellite: apply-transition-then-revert restores a bit-identical packed configuration
    /// and identical incremental hash, across all four protocol rungs and random
    /// fault-corrupted starts.
    #[test]
    fn apply_then_revert_is_identity_on_every_rung(
        rung in 0usize..4,
        n in 3usize..8,
        seed in 0u64..1_000_000,
        corrupt in any::<bool>(),
    ) {
        rung_roundtrip(rung, n, seed, corrupt);
    }
}

fn assert_reports_identical(name: &str, delta: &ExplorationReport, interned: &ExplorationReport) {
    assert_eq!(delta.configurations, interned.configurations, "{name}: reachable-set size");
    assert_eq!(delta.transitions, interned.transitions, "{name}: transitions");
    assert_eq!(delta.max_depth, interned.max_depth, "{name}: max depth");
    assert_eq!(delta.frontier_sizes, interned.frontier_sizes, "{name}: frontiers per level");
    assert_eq!(delta.truncated, interned.truncated, "{name}: truncation");
    assert_eq!(delta.violations.len(), interned.violations.len(), "{name}: violation count");
    for (d, i) in delta.violations.iter().zip(&interned.violations) {
        assert_eq!(d.property, i.property, "{name}: violated property");
        assert_eq!(d.detail, i.detail, "{name}: violation detail");
        assert_eq!(d.depth, i.depth, "{name}: violation depth");
        assert_eq!(d.trace, i.trace, "{name}: violation trace");
        assert_eq!(d.config, i.config, "{name}: violating configuration");
    }
    assert_eq!(delta.deadlocks.len(), interned.deadlocks.len(), "{name}: deadlock count");
    for (d, i) in delta.deadlocks.iter().zip(&interned.deadlocks) {
        assert_eq!(d.blocked, i.blocked, "{name}: blocked set");
        assert_eq!(d.depth, i.depth, "{name}: deadlock depth");
        assert_eq!(d.trace, i.trace, "{name}: deadlock trace");
        assert_eq!(d.config, i.config, "{name}: deadlocked configuration");
    }
}

/// Satellite: the delta engine and the retained interned engine produce identical
/// reachable-set sizes, frontiers-per-level, and violation reports on the checker-safety
/// and figure2/figure3 presets.
#[test]
fn delta_and_interned_engines_agree_on_the_paper_presets() {
    for name in ["checker-safety", "figure2", "figure2-pusher", "figure3-pusher", "figure3-nonstab"] {
        let scenario = preset(name).expect("known preset").compile().expect("valid preset");
        let interned = scenario.check_with(ExploreEngine::Interned).expect("checkable preset");
        let delta = scenario.check_with(ExploreEngine::Delta).expect("checkable preset");
        assert_reports_identical(name, &delta, &interned);
        // `check()` is the delta engine.
        let default_engine = scenario.check().expect("checkable preset");
        assert_reports_identical(name, &default_engine, &delta);
    }
}

/// The delta engine is also what `run_parallel` must agree with (it level-expands with the
/// interned primitives but merges into the same report) — cross-engine, cross-mode parity
/// on a seeded random instance.
#[test]
fn delta_interned_and_parallel_agree_on_a_random_tree() {
    let needs = [0usize, 2, 0, 2, 1];
    let cfg = KlConfig::new(2, 2, 5);
    let make = || {
        let tree = topology::builders::random_tree(5, 0xFEED);
        klex_core::pusher::network(tree, cfg, drivers::from_needs_holding(&needs))
    };
    let limits = Limits { max_configurations: 2_000_000, max_depth: usize::MAX };

    let mut net = make();
    let delta = Explorer::new(&mut net).with_limits(limits).run_with(ExploreEngine::Delta);
    assert!(delta.exhaustive());

    let mut net = make();
    let interned = Explorer::new(&mut net).with_limits(limits).run_with(ExploreEngine::Interned);

    let mut net = make();
    let parallel = Explorer::new(&mut net).with_limits(limits).run_parallel(make, 3);

    assert_reports_identical("delta-vs-interned", &delta, &interned);
    assert_reports_identical("delta-vs-parallel", &delta, &parallel);
}

/// Satellite (trial reuse): a harness run that reuses one network per worker must be
/// bit-identical, trial for trial, to rebuilding the network from scratch per trial — and
/// stay independent of the shard count.
#[test]
fn harness_network_reuse_is_invisible_in_results() {
    let scenario = CompiledScenario::builder("reuse — ss uniform on a binary tree")
        .topology(TopologySpec::Binary { n: 15 })
        .protocol(ProtocolSpec::Ss)
        .kl(2, 3)
        .workload(WorkloadSpec::Uniform { seed: 11, p_request: 0.2, max_units: 2, max_hold: 5 })
        .daemon(DaemonSpec::RandomFair { seed: 5 })
        .stop(StopSpec::Steps { steps: 15_000 })
        .metrics(&["steps", "cs_entries", "messages_sent", "in_flight"])
        .trials(6)
        .base_seed(77)
        .build()
        .expect("valid scenario");

    // The oracle: every trial on a freshly built network (`run_trial` never reuses).
    let base_seed = scenario.spec().base_seed;
    let fresh: Vec<_> =
        (0..6).map(|i| scenario.run_trial(i, trial_seed(base_seed, i)).metrics).collect();

    // One worker serving all six trials exercises the reset path five times.
    assert_eq!(scenario.run_harness(1).per_trial, fresh);
    // And the reuse must not perturb shard-count independence.
    assert_eq!(scenario.run_harness(3).per_trial, fresh);
}

/// Trial reuse under the full phase machinery: warmup, fault injection, and a predicate
/// stop — the phases that leave the most residue in a reused network.
#[test]
fn harness_reuse_is_invisible_with_warmup_and_faults() {
    let scenario = CompiledScenario::builder("reuse — convergence after faults")
        .topology(TopologySpec::Star { n: 7 })
        .protocol(ProtocolSpec::Ss)
        .kl(2, 3)
        .workload(WorkloadSpec::Saturated { units: 1, hold: 3 })
        .daemon(DaemonSpec::RandomFair { seed: 9 })
        .warmup(400_000)
        .fault(123, analysis::scenario::FaultPlanSpec::Moderate)
        .stop(StopSpec::Predicate {
            name: "legitimate".into(),
            max_steps: 400_000,
            sustained_for: 64,
        })
        .metrics(&["converged", "steps", "messages_sent"])
        .trials(4)
        .base_seed(31)
        .build()
        .expect("valid scenario");

    let base_seed = scenario.spec().base_seed;
    let fresh: Vec<_> =
        (0..4).map(|i| scenario.run_trial(i, trial_seed(base_seed, i)).metrics).collect();
    assert_eq!(scenario.run_harness(1).per_trial, fresh);
    assert_eq!(scenario.run_harness(2).per_trial, fresh);
}
