//! The coverage-guided fuzzing regression suite: the committed corpus under `tests/corpus/`
//! replays green through every engine, coverage guidance demonstrably beats blind
//! generation, corpus entries are shrink-minimal, and the mutation operators never produce
//! an invalid spec.
//!
//! `tests/corpus/` is the persistent artifact of a fixed-seed guided campaign
//! (`klex fuzz --seed $((0x5EEDC0DE)) --scenarios 48 --max-configs 2000 --steps 400
//! --campaign --corpus tests/corpus`): `MANIFEST.json` maps each coverage-signature key to
//! a shrink-minimized `ScenarioSpec` JSON file that reaches it.  Regenerating with the same
//! command is a no-op; a diff means signature extraction or an engine changed behaviour.

use std::path::Path;

use analysis::scenario::{mutate_spec, random_spec, GenLimits, ScenarioSpec};
use bench::fuzz::{self, Corpus, FuzzOptions};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Worker count of the parallel arm during replay: the smallest width at which the
/// work-stealing engine actually runs.
const REPLAY_THREADS: usize = 2;

fn committed_corpus() -> Corpus {
    let dir = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus"));
    Corpus::load(dir).expect("tests/corpus/MANIFEST.json parses")
}

/// Tentpole: every committed corpus entry replays cleanly through the delta, interned and
/// parallel engines (plus the simulator-under-monitors arm) and still reaches exactly the
/// coverage signature its manifest key records.
#[test]
fn committed_corpus_replays_green_through_all_engines() {
    let corpus = committed_corpus();
    assert!(!corpus.is_empty(), "the committed regression corpus must not be empty");
    for entry in corpus.entries() {
        let eval = fuzz::evaluate(&entry.spec, REPLAY_THREADS)
            .unwrap_or_else(|err| panic!("{} ({}): {err}", entry.key, entry.file));
        assert_eq!(
            eval.signature.key(),
            entry.key,
            "{}: the spec no longer reaches its recorded signature",
            entry.file
        );
    }
}

/// Acceptance criterion: at a fixed seed, the coverage-guided campaign discovers strictly
/// more distinct coverage signatures per 1000 scenarios than the blind generator.  Guidance
/// needs room to compound — the corpus and the stratum statistics both start empty — so the
/// comparison runs at full campaign scale with small per-scenario budgets.
#[test]
fn guided_campaign_beats_blind_generation() {
    let blind_opts = FuzzOptions {
        scenarios: 1_000,
        max_configurations: 1_000,
        sim_steps: 300,
        out_dir: std::env::temp_dir(),
        ..FuzzOptions::new(42)
    };
    let guided_opts = FuzzOptions { guided: true, ..blind_opts.clone() };
    let blind = fuzz::run_campaign(&blind_opts).expect("in-memory campaign cannot fail to save");
    let guided = fuzz::run_campaign(&guided_opts).expect("in-memory campaign cannot fail to save");
    assert!(blind.clean(), "blind campaign disagreements: {:?}", blind.disagreements);
    assert!(guided.clean(), "guided campaign disagreements: {:?}", guided.disagreements);
    assert!(
        guided.distinct_signatures > blind.distinct_signatures,
        "coverage guidance must beat blind generation: guided {} vs blind {}",
        guided.distinct_signatures,
        blind.distinct_signatures
    );
}

/// Shrinking runs to a fixpoint, so committed corpus entries are *minimal*: re-shrinking
/// any of them is a no-op (no candidate in the shrinking menu preserves the signature), and
/// the entry therefore still reproduces the verdict encoded in its key.
#[test]
fn committed_corpus_entries_are_shrink_minimal() {
    let corpus = committed_corpus();
    for entry in corpus.entries() {
        let reshrunk = fuzz::shrink_to_signature(entry.spec.clone(), &entry.key, REPLAY_THREADS);
        assert_eq!(
            reshrunk, entry.spec,
            "{}: re-shrinking a committed entry must be a no-op",
            entry.file
        );
    }
}

/// Shrinking with an arbitrary predicate is idempotent: a second greedy pass over the
/// result of the first finds nothing left to remove.
#[test]
fn shrinking_is_idempotent_under_arbitrary_predicates() {
    let limits = GenLimits::default();
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for index in 0..8 {
        let spec = random_spec(&mut rng, &limits, format!("idem-{index}"));
        // A predicate decoupled from the verdict machinery: keep the protocol rung.
        let rung = spec.protocol;
        let keep = move |candidate: &ScenarioSpec| candidate.protocol == rung;
        let once = fuzz::shrink_with(spec, &keep);
        let twice = fuzz::shrink_with(once.clone(), &keep);
        assert_eq!(twice, once, "idem-{index}: second shrink pass must be a no-op");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Satellite: mutation chains of any length only ever produce valid specs — every
    /// mutant compiles, and its JSON serialization round-trips losslessly.  48 cases ×
    /// up to 60 mutations ≈ thousands of operator applications per run.
    #[test]
    fn mutation_chains_stay_valid_and_roundtrip(
        seed in 0u64..1_000_000_000,
        chain in 1usize..=60,
    ) {
        let limits = GenLimits::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut spec = random_spec(&mut rng, &limits, "chain");
        for step in 0..chain {
            spec = mutate_spec(&spec, &mut rng, &limits);
            prop_assert!(
                spec.clone().compile().is_ok(),
                "seed {seed} step {step}: mutant fails validation: {spec:?}"
            );
            let json = spec.to_json();
            let back = ScenarioSpec::from_json(&json);
            prop_assert!(back.is_ok(), "seed {seed} step {step}: round-trip parse failed");
            prop_assert_eq!(
                back.unwrap(),
                spec.clone(),
                "seed {} step {}: lossy JSON round-trip",
                seed,
                step
            );
        }
    }

    /// The coverage signature of a spec is deterministic: two evaluations of the same spec
    /// (including the seeded simulator run feeding the monitor verdicts) produce the same
    /// key, at different parallel-arm widths.
    #[test]
    fn signatures_are_deterministic_across_evaluations(seed in 0u64..1_000_000_000) {
        let limits = GenLimits { max_nodes: 6, ..GenLimits::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut spec = random_spec(&mut rng, &limits, "deterministic");
        spec.check.max_configurations = 1_000;
        let first = fuzz::evaluate(&spec, 2).expect("clean evaluation");
        let second = fuzz::evaluate(&spec, 4).expect("clean evaluation");
        prop_assert_eq!(first.signature.key(), second.signature.key());
    }
}

/// A guided campaign seeded from the committed corpus treats every committed key as
/// already-covered: replayed signatures are not "novel", so the corpus only grows.
#[test]
fn campaigns_extend_rather_than_rediscover_the_committed_corpus() {
    let mut corpus = committed_corpus();
    let initial = corpus.len();
    let opts = FuzzOptions {
        scenarios: 32,
        max_configurations: 1_000,
        sim_steps: 300,
        guided: true,
        out_dir: std::env::temp_dir(),
        ..FuzzOptions::new(7)
    };
    let summary = fuzz::run_campaign_with(&opts, &mut corpus);
    assert!(summary.clean(), "disagreements: {:?}", summary.disagreements);
    assert_eq!(summary.initial_corpus_size, initial);
    assert_eq!(corpus.len(), initial + summary.novel_signatures as usize);
}
