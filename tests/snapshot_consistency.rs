//! Property test for the in-simulation Chandy–Lamport snapshots: on small (≤9-node)
//! scenarios, across all four protocol rungs and under token-injection faults, every
//! completed cut's census must equal the instantaneous global census — whenever that
//! census was constant across the cut's window.
//!
//! The guard is what makes the oracle sound: a consistent cut of a window in which every
//! event conserves the token count carries exactly that count (the stable-property
//! argument snapshots were invented for).  When an event in the window *changes* the
//! census — a fault injection, or the self-stabilizing rung destroying a surplus token —
//! the cut may legitimately report either side of the change, so those windows assert
//! nothing.  The instantaneous census is sampled from the same execution the runner
//! drives, one observation per activation, so constancy is checked at every step the
//! window spans.

use analysis::SnapshotMonitor;
use klex_core::{count_tokens, naive, nonstab, pusher, ss, KlConfig, KlInspect, Message};
use proptest::prelude::*;
use topology::OrientedTree;
use treenet::app::{BoxedDriver, Idle};
use treenet::{InitiatorPolicy, Network, Process, RoundRobin, SnapshotPlan, SnapshotRunner};

/// One randomized snapshot campaign: drive `net` step by step, sampling the instantaneous
/// census around every activation, and check each completed cut whose window had a
/// constant census against it.  Returns the number of cuts that were actually checked.
fn check_cut_census<P>(
    mut net: Network<P, OrientedTree>,
    cfg: &KlConfig,
    interval: u64,
    rotate: bool,
    fault: Option<(u64, usize, bool)>,
    steps: u64,
) -> u64
where
    P: Process<Msg = Message> + KlInspect,
{
    let mut daemon = RoundRobin::new();
    treenet::run_for(&mut net, &mut daemon, 500);

    let initiator = if rotate { InitiatorPolicy::Rotate } else { InitiatorPolicy::Root };
    let mut runner = SnapshotRunner::new(SnapshotPlan { interval, initiator });
    let mut monitor = SnapshotMonitor::new(cfg);
    let n = net.len();

    let mut window: Option<(klex_core::TokenCensus, bool)> = None; // (census at initiation, still constant)
    let mut cuts_seen = 0u64;
    let mut checked = 0u64;
    for step in 0..steps {
        if runner.initiation_due(net.now()) {
            window = Some((count_tokens(&net), true));
        }
        runner.step(&mut net, &mut daemon, &mut monitor);
        if let Some((c0, constant)) = &mut window {
            if *constant && count_tokens(&net) != *c0 {
                *constant = false;
            }
        }
        if runner.cuts_completed() > cuts_seen {
            cuts_seen = runner.cuts_completed();
            let (c0, constant) = window.take().expect("a completed cut had a window");
            if constant {
                let verdict = monitor.verdicts().last().expect("monitor saw the cut");
                prop_assert_eq!(
                    verdict.census,
                    c0,
                    "cut census must equal the (constant) instantaneous census: {:?}",
                    verdict
                );
                checked += 1;
            }
        }
        if let Some((at, node, pusher_token)) = fault {
            if at == step {
                // A transient fault mid-campaign: a surplus token materializes on a
                // channel.  The census changes, so any window spanning this step is
                // exempted — and every later constant window must report the *new* count.
                let msg = if pusher_token { Message::PushT } else { Message::ResT };
                net.inject_into(node % n, 0, msg);
            }
        }
    }
    checked
}

proptest! {
    // Whole-protocol runs: a reduced case count keeps the suite fast while still
    // covering every rung × initiator × fault-timing combination across runs.
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn cut_census_equals_instantaneous_census_when_constant(
        n in 2usize..=9,
        seed in any::<u64>(),
        rung in 0usize..4,
        k in 1usize..=2,
        extra_l in 0usize..=2,
        interval in 8u64..=64,
        rotate in any::<bool>(),
        fault_on in any::<bool>(),
        fault_shape in (0u64..3_000, 0usize..9, any::<bool>()),
    ) {
        let tree = topology::builders::random_tree(n, seed);
        let cfg = KlConfig::new(k, k + extra_l, n);
        // The pusher token only exists from rung 2 up; injecting one into the naive rung
        // would fault a message kind the protocol cannot carry.
        let fault = fault_on
            .then_some(fault_shape)
            .map(|(at, node, push)| (at, node, push && rung >= 1));
        let steps = 4_000;
        let driver = |_| Box::new(Idle) as BoxedDriver;
        let checked = match rung {
            0 => check_cut_census(naive::network(tree, cfg, driver), &cfg, interval, rotate, fault, steps),
            1 => check_cut_census(pusher::network(tree, cfg, driver), &cfg, interval, rotate, fault, steps),
            2 => check_cut_census(nonstab::network(tree, cfg, driver), &cfg, interval, rotate, fault, steps),
            _ => check_cut_census(ss::network(tree, cfg, driver), &cfg, interval, rotate, fault, steps),
        };
        // The budget dwarfs the interval: cuts must both complete and (faults change the
        // census at most once) overwhelmingly have constant windows.
        prop_assert!(checked >= 1, "no cut had a constant-census window in {steps} steps");
    }
}
