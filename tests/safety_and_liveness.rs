//! Cross-crate integration tests: the self-stabilizing protocol satisfies the k-out-of-ℓ
//! exclusion specification (safety + fairness) on a variety of topologies and workloads,
//! measured through the public facade crate only.

use kl_exclusion::prelude::*;

/// Stabilize a network and clear its counters, panicking if it never stabilizes.
fn stabilize(
    net: &mut Network<protocol::SsNode, OrientedTree>,
    sched: &mut impl Scheduler,
    cfg: &KlConfig,
) {
    let out = measure_convergence(net, sched, cfg, 4_000_000, 2_000);
    assert!(out.converged(), "network failed to stabilize");
    net.trace_mut().clear();
    net.metrics_mut().reset();
}

#[test]
fn safety_and_fairness_on_varied_topologies() {
    let topologies: Vec<(&str, OrientedTree)> = vec![
        ("figure1", topology::builders::figure1_tree()),
        ("chain-9", topology::builders::chain(9)),
        ("star-9", topology::builders::star(9)),
        ("binary-15", topology::builders::binary(15)),
        ("caterpillar", topology::builders::caterpillar(4, 2)),
        ("random-12", topology::builders::random_tree(12, 3)),
    ];
    for (name, tree) in topologies {
        let n = tree.len();
        let l = (n / 2).clamp(2, 6);
        let k = (l / 2).max(1);
        let cfg = KlConfig::new(k, l, n);
        let mut net = protocol::ss::network(tree, cfg, workloads::all_saturated(k, 5));
        let mut sched = RandomFair::new(17);
        stabilize(&mut net, &mut sched, &cfg);

        let mut monitor = SafetyMonitor::new(cfg).with_conservation();
        for _ in 0..80_000u64 {
            net.step(&mut sched);
            if net.now() % 32 == 0 {
                monitor.check(&net);
            }
        }
        assert!(monitor.clean(), "{name}: safety violations {:?}", monitor.violations());

        let fairness = FairnessReport::from_trace(net.trace(), n);
        assert!(fairness.starvation_free(), "{name}: starved nodes {:?}", fairness.starved);
        assert!(fairness.total_entries() > 0, "{name}: no critical section entered");
    }
}

#[test]
fn every_request_size_up_to_k_is_served() {
    let tree = topology::builders::binary(10);
    let n = tree.len();
    let cfg = KlConfig::new(4, 6, n);
    // Node i requests (i mod 4) + 1 units: all sizes 1..=k are exercised.
    let mut net = protocol::ss::network(tree, cfg, |id| {
        Box::new(workloads::Saturated { units: (id % 4) + 1, hold: 6 })
            as Box<dyn AppDriver + Send>
    });
    let mut sched = RandomFair::new(5);
    stabilize(&mut net, &mut sched, &cfg);
    run_for(&mut net, &mut sched, 300_000);
    let fairness = FairnessReport::from_trace(net.trace(), n);
    for (node, entries) in fairness.entries_per_node.iter().enumerate() {
        assert!(*entries > 0, "node {node} (requesting {}) never served", (node % 4) + 1);
    }
}

#[test]
fn waiting_time_respects_theorem2_bound_after_stabilization() {
    for (n, tree) in [(7usize, topology::builders::chain(7)), (9, topology::builders::star(9))] {
        let cfg = KlConfig::new(1, 3, n);
        let mut net = protocol::ss::network(tree, cfg, workloads::all_saturated(1, 3));
        let mut sched = RandomFair::new(23);
        stabilize(&mut net, &mut sched, &cfg);
        run_for(&mut net, &mut sched, 200_000);
        let records = waiting_times(net.trace());
        assert!(!records.is_empty());
        let worst = records.iter().map(|r| r.cs_entries_waited).max().unwrap();
        let bound = topology::euler::theorem2_waiting_bound(cfg.l, n);
        assert!(
            worst <= bound,
            "n={n}: observed waiting time {worst} exceeds the Theorem-2 bound {bound}"
        );
    }
}

#[test]
fn kl_liveness_with_pinned_processes() {
    // Two processes hold 3 of the 5 units forever; the others request at most 2 and must
    // still be served (the paper's (k,ℓ)-liveness).
    let tree = topology::builders::figure1_tree();
    let cfg = KlConfig::new(3, 5, 8);
    let mut net = protocol::ss::network(tree, cfg, |id| match id {
        2 => Box::new(workloads::PinnedInCs::new(2)) as Box<dyn AppDriver + Send>,
        5 => Box::new(workloads::PinnedInCs::new(1)) as Box<dyn AppDriver + Send>,
        1 | 4 | 7 => {
            Box::new(workloads::Saturated { units: 2, hold: 4 }) as Box<dyn AppDriver + Send>
        }
        _ => Box::new(workloads::Heterogeneous { units: 0, hold: 1 }) as Box<dyn AppDriver + Send>,
    });
    let mut sched = RandomFair::new(3);
    let out = run_until(&mut net, &mut sched, 4_000_000, |n| {
        [1usize, 4, 7].iter().all(|&v| n.trace().cs_entries(Some(v)) >= 3)
            && n.trace().cs_entries(Some(2)) >= 1
            && n.trace().cs_entries(Some(5)) >= 1
    });
    assert!(out.is_satisfied(), "requesters must be served despite the pinned processes");
}

#[test]
fn protocol_ladder_comparison_on_figure2() {
    // The constructed Figure-2 configuration: naive deadlocks, self-stabilizing recovers.
    let mut naive_net = analysis::scenarios::figure2_deadlock_config();
    let mut sched = RoundRobin::new();
    let verdict = analysis::detect_deadlock(&mut naive_net, &mut sched, 200_000);
    assert!(verdict.is_deadlock());

    let mut ss_net = analysis::scenarios::figure2_deadlock_config_ss();
    let mut sched = RoundRobin::new();
    let out = run_until(&mut ss_net, &mut sched, 3_000_000, |n| {
        (1..=4).all(|v| n.trace().cs_entries(Some(v)) >= 1)
    });
    assert!(out.is_satisfied(), "the self-stabilizing protocol recovers from the deadlock state");
}
