//! Integration tests for the unified scenario API.
//!
//! * **Serde round-trip** (proptest): `spec → JSON → spec` is the identity for randomly
//!   generated specs — the manual JSON decoder in `analysis::scenario` exactly inverts the
//!   derive-generated serializer.
//! * **Cross-backend consistency**: a small preset produces the *identical trace* via
//!   `Scenario::run` and via a hand-wired `protocol::ss::network` + `run_for` execution.
//! * **Acceptance**: one `ScenarioSpec` value — the `figure2` preset — demonstrably drives
//!   all three backends (simulator, sharded harness, bounded-exhaustive checker), including
//!   after a round trip through its JSON representation (the `klex` CLI path).

use kl_exclusion::prelude::*;
use proptest::prelude::*;

use analysis::scenario::{preset, CsStateSpec, InjectSpec, MessageSpec, NodeInit};

// ---------------------------------------------------------------- serde round-trip proptest

fn topology_strategy() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        Just(TopologySpec::Figure1),
        Just(TopologySpec::Figure3),
        (2usize..40).prop_map(|n| TopologySpec::Chain { n }),
        (2usize..40).prop_map(|n| TopologySpec::Star { n }),
        ((2usize..40), any::<u64>()).prop_map(|(n, seed)| TopologySpec::Random { n, seed }),
        ((3usize..30), (1usize..4), any::<u64>())
            .prop_map(|(n, max_children, seed)| TopologySpec::BoundedDegree {
                n,
                max_children,
                seed
            }),
        ((4usize..20), (0usize..8), any::<u64>())
            .prop_map(|(n, extra_edges, seed)| TopologySpec::SpanningTree { n, extra_edges, seed }),
    ]
}

fn protocol_strategy() -> impl Strategy<Value = ProtocolSpec> {
    prop_oneof![
        Just(ProtocolSpec::Naive),
        Just(ProtocolSpec::Pusher),
        Just(ProtocolSpec::NonStab),
        Just(ProtocolSpec::Ss),
        Just(ProtocolSpec::Ring),
    ]
}

fn workload_strategy() -> impl Strategy<Value = WorkloadSpec> {
    prop_oneof![
        Just(WorkloadSpec::Idle),
        ((1usize..4), (0u64..30)).prop_map(|(units, hold)| WorkloadSpec::Saturated { units, hold }),
        (any::<u64>(), (1usize..4), (1u64..40)).prop_map(|(seed, max_units, max_hold)| {
            WorkloadSpec::Uniform { seed, p_request: 0.25, max_units, max_hold }
        }),
        (proptest::collection::vec(0usize..4, 0..8), (0u64..20))
            .prop_map(|(needs, hold)| WorkloadSpec::Needs { needs, hold }),
        (any::<u64>(), (1usize..4), (1u64..40)).prop_map(|(seed, max_units, max_hold)| {
            WorkloadSpec::LeafUniform { seed, p_request: 0.5, max_units, max_hold }
        }),
    ]
}

fn daemon_strategy() -> impl Strategy<Value = DaemonSpec> {
    prop_oneof![
        Just(DaemonSpec::RoundRobin),
        Just(DaemonSpec::Synchronous),
        any::<u64>().prop_map(|seed| DaemonSpec::RandomFair { seed }),
        (proptest::collection::vec(0usize..8, 0..3), (1u64..20))
            .prop_map(|(victims, patience)| DaemonSpec::Adversarial { victims, patience }),
    ]
}

fn stop_strategy() -> impl Strategy<Value = StopSpec> {
    prop_oneof![
        (1u64..1_000_000).prop_map(|steps| StopSpec::Steps { steps }),
        ((1u64..1_000_000), (1u64..200))
            .prop_map(|(max_steps, grace)| StopSpec::Quiescent { max_steps, grace }),
        ((1u64..500), (1u64..1_000_000))
            .prop_map(|(entries, max_steps)| StopSpec::CsEntries { entries, max_steps }),
        ((0usize..3), (1u64..1_000_000), (0u64..5_000)).prop_map(
            |(name, max_steps, sustained_for)| StopSpec::Predicate {
                name: StopSpec::PREDICATES[name].to_string(),
                max_steps,
                sustained_for,
            }
        ),
    ]
}

fn init_strategy() -> impl Strategy<Value = Option<InitSpec>> {
    prop_oneof![
        Just(None),
        (
            any::<bool>(),
            proptest::collection::vec(
                ((0usize..8), (0usize..4), proptest::collection::vec(0usize..3, 0..3)).prop_map(
                    |(node, need, rset)| NodeInit {
                        node,
                        state: if need > 0 { CsStateSpec::Req } else { CsStateSpec::Out },
                        need,
                        rset,
                    }
                ),
                0..3
            ),
            proptest::collection::vec(
                ((0usize..8), (0usize..3), (0u64..10)).prop_map(|(from, channel, c)| InjectSpec {
                    from,
                    channel,
                    message: if c == 0 {
                        MessageSpec::ResT
                    } else if c == 1 {
                        MessageSpec::PushT
                    } else {
                        MessageSpec::Ctrl { c, r: c % 2 == 0, pt: c / 2, ppr: (c % 3) as u8 }
                    },
                }),
                0..3
            ),
        )
            .prop_map(|(bootstrapped_root, nodes, inject)| Some(InitSpec {
                bootstrapped_root,
                nodes,
                inject
            })),
    ]
}

fn spec_strategy() -> impl Strategy<Value = ScenarioSpec> {
    // Note: these specs are arbitrary *data* — many will not pass `compile()` validation
    // (out-of-range nodes, ring + leaf workloads, …).  Round-tripping must be lossless for
    // all of them regardless.
    (
        (topology_strategy(), protocol_strategy(), workload_strategy(), daemon_strategy()),
        (stop_strategy(), init_strategy()),
        ((1usize..4), (1usize..6), any::<bool>(), (0u64..100)),
        ((1u64..20), any::<u64>()),
    )
        .prop_map(|(core, run, cfg, plan)| {
            let (topology, protocol, workload, daemon) = core;
            let (stop, init) = run;
            let (k, l_extra, unbounded, timeout) = cfg;
            let (trials, base_seed) = plan;
            let mut config = ConfigSpec::new(k, k + l_extra).with_unbounded_counter(unbounded);
            if timeout > 0 {
                config = config.with_timeout(timeout);
            }
            let mut spec = ScenarioSpec::builder("roundtrip \"probe\" — ℓ units\n")
                .topology(topology)
                .protocol(protocol)
                .config(config)
                .workload(workload)
                .daemon(daemon)
                .stop(stop)
                .metrics(&["steps", "satisfied"])
                .trials(trials)
                .base_seed(base_seed)
                .spec();
            spec.init = init;
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// spec → JSON → spec is the identity (including tricky characters in the name and
    /// every enum variant the strategies can reach).
    #[test]
    fn spec_json_roundtrip_is_identity(spec in spec_strategy()) {
        let json = spec.to_json();
        let parsed = ScenarioSpec::from_json(&json).expect("own JSON must parse");
        prop_assert_eq!(parsed, spec);
    }
}

#[test]
fn roundtrip_covers_warmup_fault_and_check_fields() {
    // The strategy above leaves warmup/fault/check at defaults; pin them here.
    let mut spec = preset("theorem1").expect("bundled preset");
    spec.warmup = Some(WarmupSpec {
        max_steps: 123,
        window: Some(7),
        daemon: Some(DaemonSpec::Adversarial { victims: vec![1, 2], patience: 3 }),
    });
    spec.check = CheckSpec {
        max_configurations: 42,
        max_depth: 9,
        properties: vec!["safety".into(), "no-garbage".into(), "liveness".into()],
        from_legitimate: true,
        threads: 3,
    };
    spec.properties = vec!["request-eventually-cs".into(), "l-availability".into()];
    let parsed = ScenarioSpec::from_json(&spec.to_json()).unwrap();
    assert_eq!(parsed, spec);
}

#[test]
fn malformed_specs_are_rejected_with_context() {
    assert!(ScenarioSpec::from_json("{").is_err());
    assert!(ScenarioSpec::from_json("{}").is_err());
    let err = ScenarioSpec::from_json(r#"{"name":"x"}"#).unwrap_err();
    assert!(err.to_string().contains("topology"), "{err}");
}

#[test]
fn out_of_range_victims_are_rejected_for_main_and_warmup_daemons() {
    let base = || {
        ScenarioSpec::builder("bad victims")
            .topology(TopologySpec::Chain { n: 4 })
            .kl(1, 2)
    };
    let main = base()
        .daemon(DaemonSpec::Adversarial { victims: vec![99], patience: 2 })
        .build();
    assert!(matches!(main, Err(ScenarioError::Invalid(_))));
    let warmup = base()
        .warmup_spec(WarmupSpec {
            max_steps: 1_000,
            window: None,
            daemon: Some(DaemonSpec::Adversarial { victims: vec![99], patience: 2 }),
        })
        .build();
    assert!(matches!(warmup, Err(ScenarioError::Invalid(_))));
}

// ---------------------------------------------------------------- cross-backend consistency

/// A small preset produces the identical trace via `Scenario::run` and via hand-wired
/// `protocol::ss::network` + the classic run loop: the declarative layer adds nothing and
/// loses nothing.
#[test]
fn scenario_run_equals_hand_wired_execution() {
    let scenario = Scenario::builder("figure3 cross-check")
        .topology(TopologySpec::Figure3)
        .protocol(ProtocolSpec::Ss)
        .kl(2, 3)
        .workload(WorkloadSpec::Needs { needs: vec![1, 2, 1], hold: 6 })
        .daemon(DaemonSpec::RoundRobin)
        .stop(StopSpec::Steps { steps: 20_000 })
        .build()
        .expect("validates");
    let outcome = scenario.run();

    // The same regime, wired by hand exactly as pre-scenario code did.
    let tree = topology::builders::figure3_tree();
    let cfg = KlConfig::new(2, 3, 3);
    let mut net = protocol::ss::network(tree, cfg, analysis::scenarios::figure3_drivers(6));
    let mut sched = RoundRobin::new();
    treenet::run_for(&mut net, &mut sched, 20_000);

    assert_eq!(outcome.trace.events(), net.trace().events(), "traces must be identical");
    assert_eq!(outcome.ended_at, net.now());
    assert_eq!(
        outcome.metric("cs_entries").unwrap() as usize,
        net.trace().cs_entries(None),
    );
}

/// The same consistency through the dynamically-dispatched predicate path (run_until).
#[test]
fn scenario_predicate_run_equals_hand_wired_run_until() {
    let scenario = Scenario::builder("cs-entries cross-check")
        .topology(TopologySpec::Chain { n: 4 })
        .protocol(ProtocolSpec::Ss)
        .kl(1, 2)
        .workload(WorkloadSpec::Saturated { units: 1, hold: 3 })
        .daemon(DaemonSpec::RoundRobin)
        .stop(StopSpec::CsEntries { entries: 8, max_steps: 2_000_000 })
        .build()
        .expect("validates");
    let outcome = scenario.run();
    assert!(outcome.outcome.is_satisfied());

    let tree = topology::builders::chain(4);
    let cfg = KlConfig::new(1, 2, 4);
    let mut net = protocol::ss::network(tree, cfg, workloads::all_saturated(1, 3));
    let mut sched = RoundRobin::new();
    let hand = treenet::run_until(&mut net, &mut sched, 2_000_000, |n| {
        n.trace().cs_entries(None) >= 8
    });
    assert_eq!(outcome.outcome, hand);
    assert_eq!(outcome.trace.events(), net.trace().events());
}

// ---------------------------------------------------------------- three-backend acceptance

/// One `ScenarioSpec` value — the `figure2` preset, after a round trip through its JSON
/// form — drives the simulator, the sharded harness, and the exhaustive checker.
#[test]
fn figure2_preset_drives_all_three_backends_from_one_spec() {
    // The spec travels as JSON (what `klex run <file>` does) and comes back identical.
    let spec = preset("figure2").expect("bundled preset");
    let json = spec.to_json();
    let spec = ScenarioSpec::from_json(&json).expect("bundled presets round-trip");
    let scenario = spec.compile().expect("bundled presets validate");

    // Backend 1 — simulator: the naive protocol goes quiescent with all four requesters
    // blocked forever and zero critical sections: Figure 2's deadlock.
    let sim = scenario.run();
    assert!(matches!(sim.outcome, treenet::RunOutcome::Quiescent(_)), "{:?}", sim.outcome);
    assert_eq!(sim.metric("blocked_requesters"), Some(4.0));
    assert_eq!(sim.metric("cs_entries"), Some(0.0));
    assert_eq!(sim.metric("in_flight"), Some(0.0));

    // Backend 2 — sharded multi-trial harness: every trial agrees, at any shard count.
    let harness = scenario.run_harness(4);
    assert_eq!(harness.per_trial.len(), scenario.spec().trials as usize);
    assert_eq!(harness.fraction("satisfied"), 1.0);
    assert_eq!(harness.summaries["blocked_requesters"].max, 4.0);
    assert_eq!(harness.summaries["blocked_requesters"].min, 4.0);
    assert_eq!(scenario.run_harness(1).per_trial, harness.per_trial);

    // Backend 3 — bounded-exhaustive checker: from the figure's configuration the deadlock
    // is not merely observed on one schedule, it is *every* schedule: the configuration has
    // no outgoing transition that changes it, and exploration is exhaustive.
    let report = scenario.check().expect("the naive rung lowers into the checker");
    assert!(report.exhaustive(), "the deadlocked instance must be fully explored");
    assert!(!report.deadlock_free(), "the checker must find the Figure-2 deadlock");
    assert!(report.ok(), "safety still holds in the deadlocked configuration");
}

/// The pusher variant of the same scenario family shows the deadlock resolving — and the
/// checker confirms no deadlock is reachable once the pusher token is in flight.
#[test]
fn figure2_pusher_preset_resolves_the_deadlock_on_all_backends() {
    let scenario = preset("figure2-pusher").unwrap().compile().unwrap();
    let sim = scenario.run();
    assert!(sim.outcome.is_satisfied(), "{:?}", sim.outcome);
    assert!(sim.metric("cs_entries").unwrap() >= 20.0);

    let report = scenario.check().expect("the pusher rung lowers into the checker");
    assert!(report.deadlock_free(), "with the pusher the deadlock must be unreachable");
}

#[test]
fn uniform_workloads_do_not_lower_into_the_checker() {
    let scenario = Scenario::builder("not checkable")
        .topology(TopologySpec::Figure3)
        .kl(1, 2)
        .workload(WorkloadSpec::Uniform { seed: 1, p_request: 0.1, max_units: 1, max_hold: 5 })
        .build()
        .unwrap();
    assert!(matches!(scenario.check(), Err(ScenarioError::NotCheckable(_))));
}
