//! IP-address-pool allocation — the "ℓ units of a shared resource" scenario from the paper's
//! introduction (a pool of IP addresses handed out to hosts).
//!
//! ```text
//! cargo run --release --example ip_address_pool
//! ```
//!
//! **Paper scenario:** the introduction's resource-allocation framing — ℓ identical units
//! of a shared resource (an address pool) with per-request demands up to k.
//!
//! A small campus network is organised as a tree (routers with hosts hanging off them).  A
//! pool of 6 addresses is shared; a host may lease up to 2 addresses at a time (e.g. one per
//! interface).  Hosts issue leases at random times and keep them for random durations.  The
//! example prints per-host service statistics and verifies the safety property (no address
//! double-booked, pool never over-committed) throughout the run.

use kl_exclusion::prelude::*;

fn main() {
    // A two-level "campus" tree: a core router (root), 3 distribution routers, 8 hosts.
    let tree = topology::builders::caterpillar(4, 2); // 4 spine routers, 2 hosts each = 12 nodes
    let n = tree.len();
    let pool_size = 6; // ℓ: addresses in the pool
    let max_lease = 2; // k: addresses a single host may hold
    let cfg = KlConfig::new(max_lease, pool_size, n);

    // Hosts (leaf nodes) request leases at random; routers never do.
    let leaves: Vec<bool> = (0..n).map(|v| tree.is_leaf(v)).collect();
    let mut net = protocol::ss::network(tree, cfg, move |id| {
        if leaves[id] {
            Box::new(workloads::UniformRandom::new(7_000 + id as u64, 0.01, max_lease, 60))
                as Box<dyn AppDriver + Send>
        } else {
            Box::new(workloads::Heterogeneous { units: 0, hold: 1 })
                as Box<dyn AppDriver + Send>
        }
    });
    let mut sched = RandomFair::new(31);

    // Bootstrap the pool.
    let boot = measure_convergence(&mut net, &mut sched, &cfg, 3_000_000, 2_000);
    assert!(boot.converged(), "the address pool must come up");
    net.trace_mut().clear();

    // Lease traffic with continuous safety checking.
    let mut monitor = SafetyMonitor::new(cfg).with_conservation();
    for _ in 0..400_000u64 {
        net.step(&mut sched);
        if net.now() % 64 == 0 {
            monitor.check(&net);
        }
    }
    assert!(monitor.clean(), "safety violations: {:?}", monitor.violations());

    let fairness = FairnessReport::from_trace(net.trace(), net.len());
    println!("address pool of {pool_size}, max {max_lease} per host, {} processes", net.len());
    println!("leases granted per node: {:?}", fairness.entries_per_node);
    println!("requests issued per node: {:?}", fairness.requests_per_node);
    println!("starved hosts: {:?}", fairness.starved);
    println!("safety checks performed: {} (all clean)", monitor.checks());

    let waits = waiting_times(net.trace());
    if !waits.is_empty() {
        let mean =
            waits.iter().map(|w| w.activations_waited as f64).sum::<f64>() / waits.len() as f64;
        println!("mean lease latency: {mean:.0} activations over {} leases", waits.len());
    }
}
