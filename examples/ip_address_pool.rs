//! IP-address-pool allocation — the "ℓ units of a shared resource" scenario from the paper's
//! introduction (a pool of IP addresses handed out to hosts).
//!
//! ```text
//! cargo run --release --example ip_address_pool
//! ```
//!
//! **Paper scenario:** the introduction's resource-allocation framing — ℓ identical units
//! of a shared resource (an address pool) with per-request demands up to k.
//!
//! A small campus network is organised as a tree (routers with hosts hanging off them).  A
//! pool of 6 addresses is shared; a host may lease up to 2 addresses at a time (e.g. one per
//! interface).  The regime is one declarative [`ScenarioSpec`]: the
//! [`WorkloadSpec::LeafUniform`] workload makes exactly the *hosts* (leaf nodes) issue
//! leases at random times while the routers only forward.  The example replays the compiled
//! scenario by hand so a [`SafetyMonitor`] can verify the safety property continuously (no
//! address double-booked, pool never over-committed) while lease traffic runs.

use kl_exclusion::prelude::*;

fn main() {
    let pool_size = 6; // ℓ: addresses in the pool
    let max_lease = 2; // k: addresses a single host may hold

    // A two-level "campus" tree: 4 spine routers with 2 hosts each = 12 nodes.
    let scenario = Scenario::builder("ip address pool")
        .topology(TopologySpec::Caterpillar { spine: 4, legs: 2 })
        .protocol(ProtocolSpec::Ss)
        .kl(max_lease, pool_size)
        .workload(WorkloadSpec::LeafUniform {
            seed: 7_000,
            p_request: 0.01,
            max_units: max_lease,
            max_hold: 60,
        })
        .daemon(DaemonSpec::RandomFair { seed: 31 })
        .build()
        .expect("the address-pool scenario validates");

    let cfg = scenario.spec().config.to_kl(scenario.spec().topology.len());
    let mut net = scenario.build_ss().expect("ss scenario");
    let mut sched = scenario.make_daemon();
    let n = net.len();

    // Bootstrap the pool.
    let boot = measure_convergence(&mut net, &mut sched, &cfg, 3_000_000, 2_000);
    assert!(boot.converged(), "the address pool must come up");
    net.trace_mut().clear();

    // Lease traffic with continuous safety checking (the reason this example drives the
    // compiled network by hand instead of calling `scenario.run()`).
    let mut monitor = SafetyMonitor::new(cfg).with_conservation();
    for _ in 0..400_000u64 {
        net.step(&mut sched);
        if net.now().is_multiple_of(64) {
            monitor.check(&net);
        }
    }
    assert!(monitor.clean(), "safety violations: {:?}", monitor.violations());

    let fairness = FairnessReport::from_trace(net.trace(), net.len());
    println!("address pool of {pool_size}, max {max_lease} per host, {} processes", net.len());
    println!("leases granted per node: {:?}", fairness.entries_per_node);
    println!("requests issued per node: {:?}", fairness.requests_per_node);
    println!("starved hosts: {:?}", fairness.starved);
    println!("safety checks performed: {} (all clean)", monitor.checks());

    // Routers (interior nodes) never lease: the LeafUniform workload keeps them passive.
    let tree = scenario.spec().topology.build(0);
    for v in 0..n {
        if !tree.is_leaf(v) {
            assert_eq!(fairness.requests_per_node[v], 0, "router {v} must not lease");
        }
    }

    let waits = waiting_times(net.trace());
    if !waits.is_empty() {
        let mean =
            waits.iter().map(|w| w.activations_waited as f64).sum::<f64>() / waits.len() as f64;
        println!("mean lease latency: {mean:.0} activations over {} leases", waits.len());
    }
}
