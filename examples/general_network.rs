//! Running the tree protocol on an arbitrary rooted network — the extension sketched in the
//! paper's conclusion: "solutions on the oriented tree can be directly mapped to solutions
//! for arbitrary rooted networks by composing the protocol with a spanning tree
//! construction".
//!
//! ```text
//! cargo run --release --example general_network
//! ```
//!
//! **Paper scenario:** the conclusion's extension to arbitrary rooted networks via
//! composition with a spanning-tree construction (offline extraction variant).
//!
//! A random connected graph (a mesh with redundant links) is reduced to a BFS spanning tree
//! rooted at the distinguished process; the k-out-of-ℓ exclusion protocol then runs on that
//! tree.  Links outside the spanning tree simply carry no protocol traffic.  The whole
//! composition is one declarative scenario: [`TopologySpec::SpanningTree`] builds the mesh
//! and extracts the BFS tree, and the rest of the spec describes the exclusion regime on
//! top of it.

use kl_exclusion::prelude::*;
use topology::{RootedGraph, SpanningTreeMethod};

fn main() {
    // A 24-node mesh: a random connected graph with 12 extra redundant links.  (Rebuilt here
    // only to print its shape and the graph→tree id mapping — the scenario below constructs
    // the identical tree from the same parameters.)
    let graph = RootedGraph::random_connected(24, 12, 42);
    println!(
        "mesh: {} nodes, {} links ({} redundant beyond a spanning tree)",
        graph.len(),
        graph.edge_count(),
        graph.edge_count() - (graph.len() - 1)
    );
    let (tree, mapping) = graph.spanning_tree(SpanningTreeMethod::Bfs);
    println!(
        "BFS spanning tree: height {}, virtual ring length {}",
        tree.height(),
        VirtualRing::of(&tree).len()
    );

    // Run 2-out-of-4 exclusion over the spanning tree of that mesh — the topology spec *is*
    // the offline composition of the paper's conclusion.
    let n = graph.len();
    let scenario = Scenario::builder("general network")
        .topology(TopologySpec::SpanningTree { n, extra_edges: 12, seed: 42 })
        .protocol(ProtocolSpec::Ss)
        .kl(2, 4)
        .workload(WorkloadSpec::Uniform { seed: 3, p_request: 0.015, max_units: 2, max_hold: 12 })
        .daemon(DaemonSpec::RandomFair { seed: 7 })
        .warmup_spec(WarmupSpec { max_steps: 4_000_000, window: Some(2_000), daemon: None })
        .stop(StopSpec::Steps { steps: 300_000 })
        .metrics(&["cs_entries", "jain_index", "resource_tokens", "census_matches"])
        .build()
        .expect("the composed scenario validates");

    let outcome = scenario.run();
    assert!(outcome.warmup_activations.is_some(), "the composed system must stabilize");

    let fairness = FairnessReport::from_trace(&outcome.trace, n);
    println!("critical sections per (tree-id) node: {:?}", fairness.entries_per_node);
    println!("Jain fairness index: {:.3}", outcome.metric("jain_index").unwrap());

    // Translate a few statistics back to the original graph ids for the operator.
    let graph_root = graph.root();
    println!(
        "graph node {} (the root) is tree node {} and entered its CS {} times",
        graph_root,
        mapping[graph_root],
        fairness.entries_per_node[mapping[graph_root]]
    );
    assert_eq!(outcome.metric("resource_tokens"), Some(4.0), "census must match l = 4");
    assert_eq!(outcome.metric("census_matches"), Some(1.0), "exactly (ℓ, 1, 1) tokens");
}
