//! Running the tree protocol on an arbitrary rooted network — the extension sketched in the
//! paper's conclusion: "solutions on the oriented tree can be directly mapped to solutions
//! for arbitrary rooted networks by composing the protocol with a spanning tree
//! construction".
//!
//! ```text
//! cargo run --release --example general_network
//! ```
//!
//! **Paper scenario:** the conclusion's extension to arbitrary rooted networks via
//! composition with a spanning-tree construction (offline extraction variant).
//!
//! A random connected graph (a mesh with redundant links) is reduced to a BFS spanning tree
//! rooted at the distinguished process; the k-out-of-ℓ exclusion protocol then runs on that
//! tree.  Links outside the spanning tree simply carry no protocol traffic.

use kl_exclusion::prelude::*;
use topology::{RootedGraph, SpanningTreeMethod};

fn main() {
    // A 24-node mesh: a random connected graph with 12 extra redundant links.
    let graph = RootedGraph::random_connected(24, 12, 42);
    println!(
        "mesh: {} nodes, {} links ({} redundant beyond a spanning tree)",
        graph.len(),
        graph.edge_count(),
        graph.edge_count() - (graph.len() - 1)
    );

    // Extract the spanning tree (BFS keeps the tree shallow, which keeps the virtual ring
    // short and the waiting-time bound small).
    let (tree, mapping) = graph.spanning_tree(SpanningTreeMethod::Bfs);
    println!(
        "BFS spanning tree: height {}, virtual ring length {}",
        tree.height(),
        VirtualRing::of(&tree).len()
    );

    // Run 2-out-of-4 exclusion over the spanning tree.
    let n = tree.len();
    let cfg = KlConfig::new(2, 4, n);
    let mut net = protocol::ss::network(tree, cfg, workloads::all_uniform(3, 0.015, 2, 12));
    let mut sched = RandomFair::new(7);

    let boot = measure_convergence(&mut net, &mut sched, &cfg, 4_000_000, 2_000);
    assert!(boot.converged(), "the composed system must stabilize");
    net.trace_mut().clear();
    run_for(&mut net, &mut sched, 300_000);

    let fairness = FairnessReport::from_trace(net.trace(), n);
    println!("critical sections per (tree-id) node: {:?}", fairness.entries_per_node);
    println!("Jain fairness index: {:.3}", fairness.jain_index);

    // Translate a few statistics back to the original graph ids for the operator.
    let graph_root = graph.root();
    println!(
        "graph node {} (the root) is tree node {} and entered its CS {} times",
        graph_root,
        mapping[graph_root],
        fairness.entries_per_node[mapping[graph_root]]
    );
    assert!(count_tokens(&net).matches(cfg.l));
}
