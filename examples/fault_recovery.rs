//! Fault recovery — the self-stabilization property in action (Theorem 1).
//!
//! ```text
//! cargo run --release --example fault_recovery
//! ```
//!
//! **Paper scenario:** Theorem 1 — convergence to a legitimate configuration from an
//! arbitrary (catastrophically corrupted) configuration.
//!
//! The network is stabilized, then hit with a catastrophic transient fault: every process's
//! local state is overwritten with arbitrary values and every channel is refilled with up to
//! CMAX arbitrary messages (forged tokens, forged controllers, garbage).  The example prints
//! the token census before the fault, right after it, and after recovery, together with the
//! measured convergence time — no human intervention, no restart.

use kl_exclusion::prelude::*;

fn print_census(when: &str, census: &TokenCensus) {
    println!(
        "{when:<18} resource={} pusher={} priority={} ctrl={} garbage={}",
        census.resource, census.pusher, census.priority, census.ctrl, census.garbage
    );
}

fn main() {
    let tree = topology::builders::random_tree(20, 5);
    let n = tree.len();
    let cfg = KlConfig::new(2, 4, n);
    let mut net = protocol::ss::network(tree, cfg, workloads::all_uniform(11, 0.02, 2, 15));
    let mut sched = RandomFair::new(77);

    // Phase 1: bootstrap.
    let boot = measure_convergence(&mut net, &mut sched, &cfg, 4_000_000, 2_000);
    println!("bootstrap: {boot:?}");
    print_census("after bootstrap:", &count_tokens(&net));

    // Phase 2: catastrophe.
    let mut injector = FaultInjector::new(13);
    let report = injector.inject(&mut net, &FaultPlan::catastrophic(cfg.cmax));
    println!(
        "fault injected: {} nodes corrupted, {} garbage messages, {} messages dropped",
        report.nodes_corrupted, report.garbage_inserted, report.messages_dropped
    );
    print_census("after fault:", &count_tokens(&net));
    let fault_time = net.now();

    // Phase 3: recovery, unattended.
    let recovery = measure_convergence(&mut net, &mut sched, &cfg, 8_000_000, 2_000);
    match recovery {
        analysis::ConvergenceOutcome::Converged { stabilized_at, .. } => {
            println!(
                "recovered without intervention in {} activations",
                stabilized_at - fault_time
            );
        }
        analysis::ConvergenceOutcome::DidNotConverge => {
            panic!("the protocol must recover from any transient fault");
        }
    }
    print_census("after recovery:", &count_tokens(&net));

    // Phase 4: service continues as if nothing happened.
    net.trace_mut().clear();
    run_for(&mut net, &mut sched, 150_000);
    let fairness = FairnessReport::from_trace(net.trace(), n);
    println!("critical sections in the 150k activations after recovery: {}", fairness.total_entries());
    assert!(count_tokens(&net).matches(cfg.l));
}
