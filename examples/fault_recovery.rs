//! Fault recovery — the self-stabilization property in action (Theorem 1).
//!
//! ```text
//! cargo run --release --example fault_recovery
//! ```
//!
//! **Paper scenario:** Theorem 1 — convergence to a legitimate configuration from an
//! arbitrary (catastrophically corrupted) configuration.
//!
//! The whole regime is one declarative [`ScenarioSpec`]: stabilize (warmup), inject a
//! catastrophic transient fault — every process's local state overwritten with arbitrary
//! values, every channel refilled with up to CMAX arbitrary messages — and run until
//! legitimacy is sustained again.  The first act runs the scenario end-to-end; the second
//! act replays the same spec by hand (the compiled scenario hands out its network, daemon
//! and fault plan) to print the token census before the fault, right after it, and after
//! recovery — no human intervention, no restart.

use kl_exclusion::prelude::*;

fn print_census(when: &str, census: &TokenCensus) {
    println!(
        "{when:<18} resource={} pusher={} priority={} ctrl={} garbage={}",
        census.resource, census.pusher, census.priority, census.ctrl, census.garbage
    );
}

fn main() {
    let scenario = Scenario::builder("fault recovery")
        .topology(TopologySpec::Random { n: 20, seed: 5 })
        .protocol(ProtocolSpec::Ss)
        .kl(2, 4)
        .workload(WorkloadSpec::Uniform { seed: 11, p_request: 0.02, max_units: 2, max_hold: 15 })
        .daemon(DaemonSpec::RandomFair { seed: 77 })
        .warmup_spec(WarmupSpec { max_steps: 4_000_000, window: Some(2_000), daemon: None })
        .fault(13, FaultPlanSpec::Catastrophic)
        .stop(StopSpec::Predicate {
            name: "legitimate".into(),
            max_steps: 8_000_000,
            sustained_for: 2_000,
        })
        .metrics(&["converged", "convergence_activations", "warmup_activations"])
        .build()
        .expect("the fault-recovery scenario validates");

    // Act 1: the scenario end-to-end — stabilize, corrupt, recover, one call.
    let outcome = scenario.run();
    assert_eq!(outcome.metric("converged"), Some(1.0), "the protocol must recover");
    println!(
        "scenario run: bootstrapped in {} activations, recovered from the catastrophic fault \
         in {} activations",
        outcome.metric("warmup_activations").unwrap(),
        outcome.metric("convergence_activations").unwrap()
    );

    // Act 2: the same spec, replayed by hand to watch the token census across the fault.
    let cfg = scenario.spec().config.to_kl(20);
    let mut net = scenario.build_ss().expect("ss scenario");
    let mut sched = scenario.make_daemon();

    // Phase 1: bootstrap.
    let boot = measure_convergence(&mut net, &mut sched, &cfg, 4_000_000, 2_000);
    assert!(boot.converged());
    print_census("after bootstrap:", &count_tokens(&net));

    // Phase 2: catastrophe — the spec's fault plan, injected by hand.
    let fault = scenario.spec().fault.as_ref().expect("the spec injects a fault");
    let mut injector = FaultInjector::new(fault.seed);
    let report = injector.inject(&mut net, &fault.plan.to_plan(&cfg));
    println!(
        "fault injected: {} nodes corrupted, {} garbage messages, {} messages dropped",
        report.nodes_corrupted, report.garbage_inserted, report.messages_dropped
    );
    print_census("after fault:", &count_tokens(&net));
    let fault_time = net.now();

    // Phase 3: recovery, unattended.
    let recovery = measure_convergence(&mut net, &mut sched, &cfg, 8_000_000, 2_000);
    match recovery {
        analysis::ConvergenceOutcome::Converged { stabilized_at, .. } => {
            println!(
                "recovered without intervention in {} activations",
                stabilized_at - fault_time
            );
        }
        analysis::ConvergenceOutcome::DidNotConverge => {
            panic!("the protocol must recover from any transient fault");
        }
    }
    print_census("after recovery:", &count_tokens(&net));

    // Phase 4: service continues as if nothing happened.
    net.trace_mut().clear();
    run_for(&mut net, &mut sched, 150_000);
    let fairness = FairnessReport::from_trace(net.trace(), net.len());
    println!("critical sections in the 150k activations after recovery: {}", fairness.total_entries());
    assert!(count_tokens(&net).matches(cfg.l));
}
