//! Exhaustive verification of the paper's claims on small instances.
//!
//! ```text
//! cargo run --release --example model_checking
//! ```
//!
//! **Paper scenario:** the Figure-2 deadlock and Figure-3 livelock anomalies, plus the
//! safety and closure halves of Definition 1, verified exhaustively on small instances.
//!
//! The simulation experiments sample executions; this example instead *enumerates* every
//! reachable configuration of small instances under every possible scheduling.  Every check
//! is a declarative [`ScenarioSpec`] lowered into the checker by the unified scenario API:
//!
//! 1. the naive ℓ-token circulation reaches a Figure-2-style deadlock;
//! 2. the pusher-only protocol has a **fair starvation cycle** on the exact Figure-3
//!    instance (the paper's livelock), reported as a lasso (stem + cycle) witness by the
//!    SCC-based fair-cycle pass, and the priority token removes it — the `"liveness"`
//!    check property drives the whole pipeline declaratively;
//! 3. the self-stabilizing protocol satisfies *closure*: from a legitimate configuration
//!    (`check.from_legitimate` stabilizes the instance before exploring), every reachable
//!    configuration is again legitimate and safe.

use kl_exclusion::prelude::*;

fn main() {
    // ---------------------------------------------------------------- 1. Figure-2 deadlock
    // Minimal instance of the Figure-2 phenomenon: two requesters that each need both of the
    // ℓ = 2 tokens.  The regime is a declarative scenario; `check()` lowers it into the
    // explorer (stateless drivers, every interleaving from the clean initial state).
    let report = Scenario::builder("naive deadlock, minimal instance")
        .topology(TopologySpec::Chain { n: 3 })
        .protocol(ProtocolSpec::Naive)
        .kl(2, 2)
        .workload(WorkloadSpec::Needs { needs: vec![0, 2, 2], hold: 0 })
        .check(CheckSpec {
            max_configurations: 500_000,
            max_depth: 0,
            properties: vec![],
            ..CheckSpec::default()
        })
        .build()
        .expect("the checking scenario validates")
        .check()
        .expect("the naive rung lowers into the checker");
    println!("naive protocol, 3-node chain, l=2, needs 2+2:");
    println!(
        "  {} configurations explored exhaustively ({} transitions)",
        report.configurations, report.transitions
    );
    println!(
        "  deadlocks found: {} (first one blocks processes {:?} after {} activations)",
        report.deadlocks.len(),
        report.deadlocks.first().map(|d| d.blocked.clone()).unwrap_or_default(),
        report.deadlocks.first().map(|d| d.depth).unwrap_or(0),
    );
    assert!(!report.deadlock_free(), "the naive protocol must deadlock somewhere");

    // ---------------------------------------------------------------- 2. Figure-3 livelock
    // The exact Figure-3 instance: 2-out-of-3 exclusion on the 3-node tree, needs r=1, a=2,
    // b=1, with critical sections that span an activation (the livelock needs the small
    // requesters to hold their tokens while the pusher passes).  The `"liveness"` check
    // property turns on graph recording plus the SCC fair-cycle pass; its lasso witnesses
    // arrive in `report.liveness`.
    let fig3_liveness = |name: &str, protocol: ProtocolSpec, budget: usize| {
        Scenario::builder(name)
            .topology(TopologySpec::Figure3)
            .protocol(protocol)
            .kl(2, 3)
            .workload(WorkloadSpec::Needs { needs: vec![1, 2, 1], hold: 1 })
            .check(CheckSpec {
                max_configurations: budget,
                max_depth: 0,
                properties: vec!["safety".into(), "liveness".into()],
                ..CheckSpec::default()
            })
            .build()
            .expect("the liveness scenario validates")
            .check()
            .expect("the tree rungs lower into the checker")
    };

    let pusher_report = fig3_liveness("figure3 pusher livelock", ProtocolSpec::Pusher, 800_000);
    println!("\npusher-only protocol on the Figure-3 instance:");
    println!("  {} configurations explored exhaustively", pusher_report.configurations);
    match pusher_report.liveness.first() {
        Some(witness) => println!(
            "  fair starvation lasso found: stem {} + cycle {} activations, processes {:?} \
             keep entering their critical sections while process {} never does",
            witness.stem_len(),
            witness.cycle_len(),
            witness.progress_nodes,
            witness.victim,
        ),
        None => println!("  no fair starvation lasso (unexpected!)"),
    }
    assert!(!pusher_report.live(), "the pusher-only rung livelocks on Figure 3");
    assert!(pusher_report.ok(), "the livelock does not break safety");

    let prio_report =
        fig3_liveness("figure3 with the priority token", ProtocolSpec::NonStab, 1_500_000);
    println!("\nwith the priority token (same instance):");
    println!("  {} configurations explored exhaustively", prio_report.configurations);
    println!(
        "  fair starvation lasso: {}",
        if prio_report.live() {
            "none — the priority token removes the livelock"
        } else {
            "still present (unexpected!)"
        }
    );
    assert!(prio_report.live());

    // ---------------------------------------------------------------- 3. Closure
    // Closure (Definition 1): from a legitimate configuration, every reachable
    // configuration is legitimate again.  `check.from_legitimate` stabilizes the lowered
    // instance under a deterministic fair schedule before the exploration starts.
    let closure = Scenario::builder("closure of the self-stabilizing protocol")
        .topology(TopologySpec::Figure3)
        .protocol(ProtocolSpec::Ss)
        .config(ConfigSpec::new(2, 2).with_cmax(0))
        .workload(WorkloadSpec::Saturated { units: 1, hold: 0 })
        .check(CheckSpec {
            max_configurations: 300_000,
            max_depth: 0,
            properties: vec!["legitimate".into(), "safety".into()],
            from_legitimate: true,
            ..CheckSpec::default()
        })
        .build()
        .expect("the closure scenario validates")
        .check()
        .expect("the ss rung lowers into the checker");
    println!("\nself-stabilizing protocol, closure from a legitimate configuration:");
    println!(
        "  {} configurations explored{}, {} property violations, {} deadlocks",
        closure.configurations,
        if closure.exhaustive() { " exhaustively" } else { " (bounded)" },
        closure.violations.len(),
        closure.deadlocks.len()
    );
    assert!(closure.ok() && closure.deadlock_free());
    println!("\nall exhaustive checks passed");
}
