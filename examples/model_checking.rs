//! Exhaustive verification of the paper's claims on small instances.
//!
//! ```text
//! cargo run --release --example model_checking
//! ```
//!
//! **Paper scenario:** the Figure-2 deadlock and Figure-3 livelock anomalies, plus the
//! safety and closure halves of Definition 1, verified exhaustively on small instances.
//!
//! The simulation experiments sample executions; this example instead *enumerates* every
//! reachable configuration of small instances under every possible scheduling and checks:
//!
//! 1. the naive ℓ-token circulation reaches a Figure-2-style deadlock — expressed as a
//!    declarative scenario and lowered into the checker by the unified scenario API;
//! 2. the pusher-only protocol has a reachable starvation cycle on the exact Figure-3
//!    instance (the paper's livelock), and the priority token removes it (the cycle search
//!    needs the recorded state graph, so this part drives the explorer directly);
//! 3. the self-stabilizing protocol satisfies *closure*: from a legitimate configuration,
//!    every reachable configuration is again legitimate and safe (the legitimate starting
//!    configuration comes from a stabilization run, so this part too drives the explorer).

use kl_exclusion::prelude::*;

use checker::{cycles, drivers, properties, scenarios, Explorer, Limits};

fn main() {
    // ---------------------------------------------------------------- 1. Figure-2 deadlock
    // Minimal instance of the Figure-2 phenomenon: two requesters that each need both of the
    // ℓ = 2 tokens.  The regime is a declarative scenario; `check()` lowers it into the
    // explorer (stateless drivers, every interleaving from the clean initial state).
    let report = Scenario::builder("naive deadlock, minimal instance")
        .topology(TopologySpec::Chain { n: 3 })
        .protocol(ProtocolSpec::Naive)
        .kl(2, 2)
        .workload(WorkloadSpec::Needs { needs: vec![0, 2, 2], hold: 0 })
        .check(CheckSpec { max_configurations: 500_000, max_depth: 0, properties: vec![] })
        .build()
        .expect("the checking scenario validates")
        .check()
        .expect("the naive rung lowers into the checker");
    println!("naive protocol, 3-node chain, l=2, needs 2+2:");
    println!(
        "  {} configurations explored exhaustively ({} transitions)",
        report.configurations, report.transitions
    );
    println!(
        "  deadlocks found: {} (first one blocks processes {:?} after {} activations)",
        report.deadlocks.len(),
        report.deadlocks.first().map(|d| d.blocked.clone()).unwrap_or_default(),
        report.deadlocks.first().map(|d| d.depth).unwrap_or(0),
    );
    assert!(!report.deadlock_free(), "the naive protocol must deadlock somewhere");

    // ---------------------------------------------------------------- 2. Figure-3 livelock
    // The exact Figure-3 instance: 2-out-of-3 exclusion on the 3-node tree, needs r=1, a=2,
    // b=1, with critical sections that span an activation (the livelock needs the small
    // requesters to hold their tokens while the pusher passes).
    let fig3 = topology::builders::figure3_tree();
    let cfg3 = KlConfig::new(2, 3, 3);
    let needs3 = [1usize, 2, 1];

    let mut pusher_net =
        protocol::pusher::network(fig3.clone(), cfg3, drivers::from_needs_holding(&needs3));
    let mut explorer = Explorer::new(&mut pusher_net)
        .with_limits(Limits { max_configurations: 600_000, max_depth: usize::MAX })
        .record_graph(true);
    let pusher_report = explorer.run();
    let pusher_cycle = cycles::find_progress_cycle(explorer.graph(), 1);
    println!("\npusher-only protocol on the Figure-3 instance:");
    println!("  {} configurations explored exhaustively", pusher_report.configurations);
    match &pusher_cycle {
        Some(witness) => println!(
            "  starvation cycle found: {} transitions long, processes {:?} keep entering their \
             critical sections while process a never does",
            witness.len(),
            witness.progress_nodes
        ),
        None => println!("  no starvation cycle (unexpected!)"),
    }
    assert!(pusher_cycle.is_some());

    let mut prio_net =
        protocol::nonstab::network(fig3, cfg3, drivers::from_needs_holding(&needs3));
    let mut explorer = Explorer::new(&mut prio_net)
        .with_limits(Limits { max_configurations: 1_500_000, max_depth: usize::MAX })
        .record_graph(true);
    let prio_report = explorer.run();
    let prio_cycle = cycles::find_progress_cycle(explorer.graph(), 1);
    println!("\nwith the priority token (same instance):");
    println!("  {} configurations explored exhaustively", prio_report.configurations);
    println!(
        "  starvation cycle: {}",
        if prio_cycle.is_some() { "still present (unexpected!)" } else { "none — the priority token removes the livelock" }
    );
    assert!(prio_cycle.is_none());

    // ---------------------------------------------------------------- 3. Closure
    let tree = topology::builders::figure3_tree();
    let cfg_ss = KlConfig::new(2, 2, 3).with_cmax(0);
    let mut stabilized = scenarios::stabilized_ss(
        tree,
        cfg_ss,
        |_| drivers::AlwaysRequest::boxed(1),
        500_000,
    );
    let closure = Explorer::new(&mut stabilized)
        .with_limits(Limits { max_configurations: 300_000, max_depth: usize::MAX })
        .with_property(properties::legitimate(cfg_ss))
        .with_property(properties::safety(cfg_ss))
        .run();
    println!("\nself-stabilizing protocol, closure from a legitimate configuration:");
    println!(
        "  {} configurations explored{}, {} property violations, {} deadlocks",
        closure.configurations,
        if closure.exhaustive() { " exhaustively" } else { " (bounded)" },
        closure.violations.len(),
        closure.deadlocks.len()
    );
    assert!(closure.ok() && closure.deadlock_free());
    println!("\nall exhaustive checks passed");
}
