//! Heterogeneous bandwidth allocation — the motivation the paper gives for generalising
//! ℓ-exclusion to k-out-of-ℓ exclusion: "requests may vary from 1 to k units of a given
//! resource", e.g. bandwidth for audio versus video streams.
//!
//! ```text
//! cargo run --release --example bandwidth_allocation
//! ```
//!
//! **Paper scenario:** the introduction's motivating application — heterogeneous requests
//! of 1..k units (audio vs video bandwidth) served by one k-out-of-ℓ exclusion instance.
//!
//! A backbone link offers 8 bandwidth units.  Audio calls need 1 unit, standard video needs
//! 2, high-definition video needs 4.  Nodes of a binary distribution tree issue a mix of
//! these requests; an adversarial scheduler slows down the deepest node to show that even the
//! disadvantaged requester keeps being served (fairness), and the waiting times are compared
//! with the Theorem-2 bound.

use kl_exclusion::prelude::*;

fn main() {
    let tree = topology::builders::binary(15);
    let n = tree.len();
    let cfg = KlConfig::new(4, 8, n); // k = 4 (HD video), l = 8 units of bandwidth

    // Traffic mix per node id: HD video on nodes divisible by 5, video on even nodes, audio
    // elsewhere.  Every node keeps a stream open for 20 activations, then asks again.
    let mut net = protocol::ss::network(tree, cfg, |id| {
        let units = if id % 5 == 0 {
            4
        } else if id % 2 == 0 {
            2
        } else {
            1
        };
        Box::new(workloads::Saturated { units, hold: 20 }) as Box<dyn AppDriver + Send>
    });

    // Bootstrap under a fair scheduler.
    let mut fair = RandomFair::new(99);
    let boot = measure_convergence(&mut net, &mut fair, &cfg, 3_000_000, 2_000);
    assert!(boot.converged());
    net.trace_mut().clear();
    net.metrics_mut().reset();

    // Measurement phase under an adversarial scheduler that starves the deepest node.
    let victim = (0..n).max_by_key(|&v| {
        // depth of v
        net.topology().depth(v)
    }).unwrap();
    let mut adversary = Adversarial::new(vec![victim], 6);
    run_for(&mut net, &mut adversary, 400_000);

    let fairness = FairnessReport::from_trace(net.trace(), n);
    let waits = waiting_times(net.trace());
    let worst = waits.iter().map(|w| w.cs_entries_waited).max().unwrap_or(0);
    let victim_waits: Vec<u64> = analysis::waiting::of_node(&waits, victim);

    println!("bandwidth pool: 8 units; requests of 1 (audio), 2 (video), 4 (HD video)");
    println!("streams admitted per node: {:?}", fairness.entries_per_node);
    println!("victim node {victim} admitted {} streams", fairness.entries_per_node[victim]);
    println!(
        "victim worst waiting time: {} CS entries (bound: {})",
        victim_waits.iter().max().copied().unwrap_or(0),
        topology::euler::theorem2_waiting_bound(cfg.l, n)
    );
    println!("system-wide worst waiting time: {worst}");
    println!("Jain fairness index: {:.3}", fairness.jain_index);
    assert!(
        fairness.entries_per_node[victim] > 0,
        "even the adversarially-delayed node must be served"
    );
}
