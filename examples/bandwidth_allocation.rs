//! Heterogeneous bandwidth allocation — the motivation the paper gives for generalising
//! ℓ-exclusion to k-out-of-ℓ exclusion: "requests may vary from 1 to k units of a given
//! resource", e.g. bandwidth for audio versus video streams.
//!
//! ```text
//! cargo run --release --example bandwidth_allocation
//! ```
//!
//! **Paper scenario:** the introduction's motivating application — heterogeneous requests
//! of 1..k units (audio vs video bandwidth) served by one k-out-of-ℓ exclusion instance.
//!
//! A backbone link offers 8 bandwidth units.  Audio calls need 1 unit, standard video needs
//! 2, high-definition video needs 4.  Nodes of a binary distribution tree issue a mix of
//! these requests.  The whole regime is one [`ScenarioSpec`]: the heterogeneous traffic mix
//! is a [`WorkloadSpec::Needs`] table, stabilization runs under a fair daemon (the warmup
//! override), and the measurement phase runs under the bounded-unfairness adversary that
//! starves the deepest node — which the spec selects declaratively with an empty victim
//! list.  Even the disadvantaged requester keeps being served (fairness), and waiting times
//! are compared with the Theorem-2 bound.

use kl_exclusion::prelude::*;

fn main() {
    let n = 15usize;
    // Traffic mix per node id: HD video (4 units) on nodes divisible by 5, standard video
    // (2) on even nodes, audio (1) elsewhere; every stream stays open for 20 activations.
    let needs: Vec<usize> =
        (0..n).map(|id| if id % 5 == 0 { 4 } else if id % 2 == 0 { 2 } else { 1 }).collect();

    let scenario = Scenario::builder("bandwidth allocation")
        .topology(TopologySpec::Binary { n })
        .protocol(ProtocolSpec::Ss)
        .kl(4, 8) // k = 4 (HD video), ℓ = 8 units of bandwidth
        .workload(WorkloadSpec::Needs { needs: needs.clone(), hold: 20 })
        // Measurement runs under the adversary; an empty victim list targets the deepest
        // node of the tree.
        .daemon(DaemonSpec::Adversarial { victims: vec![], patience: 6 })
        // Stabilization happens under a fair daemon — the adversary alone cannot bootstrap
        // the token population quickly.
        .warmup_spec(WarmupSpec {
            max_steps: 3_000_000,
            window: Some(2_000),
            daemon: Some(DaemonSpec::RandomFair { seed: 99 }),
        })
        .stop(StopSpec::Steps { steps: 400_000 })
        .metrics(&["cs_entries", "jain_index", "waiting_max", "waiting_mean"])
        .build()
        .expect("the bandwidth scenario validates");

    let outcome = scenario.run();
    assert!(outcome.warmup_activations.is_some(), "the protocol must bootstrap");

    let fairness = FairnessReport::from_trace(&outcome.trace, n);
    let victim = analysis::scenario::deepest_node(&scenario.spec().topology.build(0));
    let waits = waiting_times(&outcome.trace);
    let victim_waits: Vec<u64> = analysis::waiting::of_node(&waits, victim);

    println!("bandwidth pool: 8 units; requests of 1 (audio), 2 (video), 4 (HD video)");
    println!("streams admitted per node: {:?}", fairness.entries_per_node);
    println!(
        "victim node {victim} (starved by the adversary, needs {} units) admitted {} streams",
        needs[victim], fairness.entries_per_node[victim]
    );
    println!(
        "victim worst waiting time: {} CS entries (bound: {})",
        victim_waits.iter().max().copied().unwrap_or(0),
        topology::euler::theorem2_waiting_bound(scenario.spec().config.l, n)
    );
    println!("system-wide worst waiting time: {}", outcome.metric("waiting_max").unwrap());
    println!("Jain fairness index: {:.3}", outcome.metric("jain_index").unwrap());
    assert!(
        fairness.entries_per_node[victim] > 0,
        "even the adversarially-delayed node must be served"
    );
}
