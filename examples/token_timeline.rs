//! Visualizing an execution: per-process activity lanes, the virtual ring, and the token
//! census before/after a transient fault.
//!
//! ```text
//! cargo run --release --example token_timeline
//! ```
//!
//! **Paper scenario:** the Figure-1 tree and its DFS virtual ring (Figure 4), plus the
//! token census (ℓ,1,1) that defines legitimacy, before and after a transient fault.
//!
//! Three renderings are printed:
//!
//! * the virtual ring of the Figure-1 tree (the path every token follows);
//! * an activity "Gantt" of the steady state — `·` idle, `r` waiting, `#` in the critical
//!   section;
//! * census sparklines around a transient fault that duplicates resource tokens and forges a
//!   priority token: the counts deviate from (ℓ, 1, 1) and return once the controller has
//!   repaired the population.

use kl_exclusion::prelude::*;

use analysis::{render_activity_gantt, render_virtual_ring};
use protocol::Message;

fn main() {
    let tree = topology::builders::figure1_tree();
    let n = tree.len();
    let cfg = KlConfig::new(2, 4, n);

    println!("virtual ring of the Figure-1 tree (node ids):");
    println!("  {}\n", render_virtual_ring(&tree));

    // Heterogeneous workload: some big requesters, some small, two passive processes.
    let needs = [1usize, 2, 1, 0, 2, 1, 0, 1];
    let mut net = protocol::ss::network(tree, cfg, workloads::from_needs(&needs, 25));
    let mut sched = RandomFair::new(31);

    // Bootstrap, then record a steady-state window.
    let outcome = measure_convergence(&mut net, &mut sched, &cfg, 2_000_000, 2_000);
    assert!(outcome.converged(), "bootstrap must converge");
    net.trace_mut().clear();
    let window_start = net.now();
    run_for(&mut net, &mut sched, 60_000);
    println!("steady state ({} activations, one lane per process):", 60_000);
    print!("{}", render_activity_gantt(net.trace(), n, window_start, net.now(), 72));
    println!("  legend: · idle   r waiting   # in critical section\n");

    // Inject a fault mid-run: duplicate two resource tokens and forge a priority token.
    let mut recorder = CensusRecorder::new();
    net.inject_into(1, 0, Message::ResT);
    net.inject_into(4, 0, Message::ResT);
    net.inject_into(2, 0, Message::PrioT);
    recorder.observe(&net);
    println!("fault injected: +2 resource tokens, +1 priority token");

    for _ in 0..400_000u64 {
        net.step(&mut sched);
        if net.now().is_multiple_of(200) {
            recorder.observe(&net);
        }
    }
    println!("census over time after the fault (resampled to 72 columns):");
    print!("{}", recorder.render_sparklines(72));
    let recovered_at = recorder.first_time_matching(cfg.l);
    let last_bad = recorder.last_time_deviating(cfg.l);
    println!(
        "  census first back to (l,1,1) at activation {:?}; last deviation observed at {:?}",
        recovered_at, last_bad
    );
    assert!(
        is_legitimate(&net, &cfg),
        "the controller must have erased the surplus tokens by the end of the run"
    );
    println!("\nfinal census: {:?}", count_tokens(&net));
}
