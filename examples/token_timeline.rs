//! Visualizing an execution: per-process activity lanes, the virtual ring, and the token
//! census before/after a transient fault.
//!
//! ```text
//! cargo run --release --example token_timeline
//! ```
//!
//! **Paper scenario:** the Figure-1 tree and its DFS virtual ring (Figure 4), plus the
//! token census (ℓ,1,1) that defines legitimacy, before and after a transient fault.
//!
//! Three renderings are printed:
//!
//! * the virtual ring of the Figure-1 tree (the path every token follows);
//! * an activity "Gantt" of the steady state — `·` idle, `r` waiting, `#` in the critical
//!   section — rendered straight from the trace of a declarative scenario run;
//! * census sparklines around a transient fault that duplicates resource tokens and forges a
//!   priority token: the counts deviate from (ℓ, 1, 1) and return once the controller has
//!   repaired the population.

use kl_exclusion::prelude::*;

use analysis::{render_activity_gantt, render_virtual_ring};
use protocol::Message;

fn main() {
    let tree = topology::builders::figure1_tree();
    let n = tree.len();

    println!("virtual ring of the Figure-1 tree (node ids):");
    println!("  {}\n", render_virtual_ring(&tree));

    // Heterogeneous workload: some big requesters, some small, two passive processes —
    // declaratively, as a per-node needs table.  Stabilize (warmup), then record a 60k
    // steady-state window.
    let scenario = Scenario::builder("token timeline")
        .topology(TopologySpec::Figure1)
        .protocol(ProtocolSpec::Ss)
        .kl(2, 4)
        .workload(WorkloadSpec::Needs { needs: vec![1, 2, 1, 0, 2, 1, 0, 1], hold: 25 })
        .daemon(DaemonSpec::RandomFair { seed: 31 })
        .warmup_spec(WarmupSpec { max_steps: 2_000_000, window: Some(2_000), daemon: None })
        .stop(StopSpec::Steps { steps: 60_000 })
        .build()
        .expect("the timeline scenario validates");

    let outcome = scenario.run();
    assert!(outcome.warmup_activations.is_some(), "bootstrap must converge");
    println!("steady state ({} activations, one lane per process):", 60_000);
    print!(
        "{}",
        render_activity_gantt(&outcome.trace, n, outcome.started_at, outcome.ended_at, 72)
    );
    println!("  legend: · idle   r waiting   # in critical section\n");

    // Act 2: replay the same spec by hand and inject a fault mid-run — the census recorder
    // needs to observe the live network while it recovers.
    let cfg = scenario.spec().config.to_kl(n);
    let mut net = scenario.build_ss().expect("ss scenario");
    let mut sched = scenario.make_daemon();
    let boot = measure_convergence(&mut net, &mut sched, &cfg, 2_000_000, 2_000);
    assert!(boot.converged());

    let mut recorder = CensusRecorder::new();
    net.inject_into(1, 0, Message::ResT);
    net.inject_into(4, 0, Message::ResT);
    net.inject_into(2, 0, Message::PrioT);
    recorder.observe(&net);
    println!("fault injected: +2 resource tokens, +1 priority token");

    for _ in 0..400_000u64 {
        net.step(&mut sched);
        if net.now().is_multiple_of(200) {
            recorder.observe(&net);
        }
    }
    println!("census over time after the fault (resampled to 72 columns):");
    print!("{}", recorder.render_sparklines(72));
    let recovered_at = recorder.first_time_matching(cfg.l);
    let last_bad = recorder.last_time_deviating(cfg.l);
    println!(
        "  census first back to (l,1,1) at activation {:?}; last deviation observed at {:?}",
        recovered_at, last_bad
    );
    assert!(
        is_legitimate(&net, &cfg),
        "the controller must have erased the surplus tokens by the end of the run"
    );
    println!("\nfinal census: {:?}", count_tokens(&net));
}
