//! Running k-out-of-ℓ exclusion on an arbitrary rooted network with a **distributed**,
//! self-stabilizing spanning-tree construction — the full composition sketched in the paper's
//! conclusion (the `general_network` example uses an offline/centralized tree extraction; this
//! one builds the tree with a protocol running in the same message-passing model).
//!
//! ```text
//! cargo run --release --example distributed_spanning_tree
//! ```
//!
//! **Paper scenario:** the conclusion's extension to arbitrary rooted networks, here with
//! the spanning tree itself built by a self-stabilizing protocol in the same model.
//!
//! The run has three acts: the beacon protocol constructs a BFS spanning tree of a 20-node
//! mesh; the k-out-of-ℓ exclusion protocol stabilizes on the constructed tree; and finally the
//! spanning-tree layer is hit by a transient fault (all distance estimates corrupted) to show
//! that it re-converges to the same tree.
//!
//! This is the one example that drives the simulator *below* the declarative scenario API:
//! the composition layers two protocols in one network, which a single-protocol
//! [`kl_exclusion::prelude::ScenarioSpec`] does not describe.  The offline-extraction
//! variant of the same composition **is** declarative — `TopologySpec::SpanningTree` — and
//! the `general_network` example runs it end-to-end through `Scenario::run`.

use kl_exclusion::prelude::*;

use rand::rngs::StdRng;
use rand::SeedableRng;
use stree::composed::compose_with_defaults;
use topology::RootedGraph;
use treenet::Corruptible;

fn main() {
    // A 20-node mesh: a random connected graph with 14 redundant links.
    let graph = RootedGraph::random_connected(20, 14, 2026);
    let n = graph.len();
    println!(
        "mesh: {n} nodes, {} links ({} beyond a spanning tree), root = {}",
        graph.edge_count(),
        graph.edge_count() - (n - 1),
        graph.root()
    );

    // Act 1 + 2: layered composition — stabilize the spanning tree, then the exclusion
    // protocol on top of it.  Workload: every process keeps requesting 2 of the 5 units.
    let kl = KlConfig::new(3, 5, n);
    let mut sched = RandomFair::new(99);
    let mut composition = compose_with_defaults(
        graph.clone(),
        kl,
        workloads::all_saturated(2, 8),
        &mut sched,
    )
    .expect("the composition stabilizes");

    println!("\nspanning-tree layer:");
    println!(
        "  stabilized after {} activations and {} beacons",
        composition.st_activations, composition.st_messages
    );
    println!(
        "  tree height {}, virtual-ring length {} (vs {} directed links in the mesh)",
        composition.extracted.tree.height(),
        VirtualRing::of(&composition.extracted.tree).len(),
        graph.directed_channels(),
    );

    println!("\nexclusion layer (on the constructed tree):");
    println!("  legitimate after {} further activations", composition.kl_activations);
    println!(
        "  composition total: {} activations until the whole stack is stabilized",
        composition.total_activations()
    );

    // Serve requests for a while and report the service the composed stack delivers.
    composition.network.trace_mut().clear();
    for _ in 0..150_000 {
        composition.network.step(&mut sched);
    }
    let entries = composition.network.trace().cs_entries(None);
    let fairness = FairnessReport::from_trace(composition.network.trace(), n);
    println!("  critical sections served in 150k activations: {entries}");
    println!("  Jain fairness index: {:.3}", fairness.jain_index);
    assert!(entries > 0 && fairness.starvation_free());

    // Act 3: corrupt the spanning-tree layer and show it re-converges to the same BFS tree.
    println!("\ntransient fault on the spanning-tree layer (all estimates corrupted):");
    let mut st_net = stree::network_with_defaults(graph.clone());
    let mut rng = StdRng::seed_from_u64(5);
    let mut sched2 = RandomFair::new(11);
    // First stabilize, then corrupt every node's spanning-tree state.
    for _ in 0..200_000 {
        st_net.step(&mut sched2);
        if stree::distances_are_exact(&st_net) {
            break;
        }
    }
    let depth_before: Vec<usize> = (0..n).map(|v| st_net.node(v).dist).collect();
    for v in 0..n {
        st_net.node_mut(v).corrupt(&mut rng);
    }
    let mut recovery_steps = 0u64;
    while !stree::distances_are_exact(&st_net) {
        st_net.step(&mut sched2);
        recovery_steps += 1;
        assert!(recovery_steps < 2_000_000, "the spanning tree must re-converge");
    }
    let depth_after: Vec<usize> = (0..n).map(|v| st_net.node(v).dist).collect();
    println!("  re-converged to the same BFS distances after {recovery_steps} activations");
    assert_eq!(depth_before, depth_after);
}
