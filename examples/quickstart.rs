//! Quickstart: run self-stabilizing 3-out-of-5 exclusion on the paper's Figure-1 tree.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! **Paper scenario:** Algorithms 1 & 2 on the Figure-1 tree (Sections 3-4) under the
//! saturated workload of the waiting-time analysis.
//!
//! The whole regime is one declarative [`ScenarioSpec`]: topology, protocol, (k, ℓ),
//! workload, daemon, warmup and stop condition.  The compiled scenario bootstraps the
//! protocol (the controller creates the tokens), runs a steady-state measurement window, and
//! hands back the selected metrics plus the raw trace for anything bespoke.  The identical
//! spec also drives the sharded multi-trial harness and — for small instances — the
//! exhaustive checker, and is what `klex run quickstart` executes.

use kl_exclusion::prelude::*;

fn main() {
    // 1. The regime, declaratively: the 8-process Figure-1 tree, any process may ask for up
    //    to k = 3 of the ℓ = 5 units, every process keeps requesting 2 units and holds them
    //    for 10 activations, under a seeded asynchronous-but-fair daemon.  Stabilize first
    //    (warmup), then measure 200k activations.
    let scenario = Scenario::builder("quickstart")
        .topology(TopologySpec::Figure1)
        .protocol(ProtocolSpec::Ss)
        .kl(3, 5)
        .workload(WorkloadSpec::Saturated { units: 2, hold: 10 })
        .daemon(DaemonSpec::RandomFair { seed: 2024 })
        .warmup_spec(WarmupSpec { max_steps: 2_000_000, window: Some(2_000), daemon: None })
        .stop(StopSpec::Steps { steps: 200_000 })
        .metrics(&[
            "cs_entries",
            "messages_sent",
            "jain_index",
            "waiting_max",
            "resource_tokens",
        ])
        .build()
        .expect("the quickstart scenario validates");

    // 2. Run it.  (The same spec value also feeds `run_harness` and `check`.)
    let outcome = scenario.run();
    println!(
        "bootstrap: stabilized after {} activations",
        outcome.warmup_activations.expect("the protocol must bootstrap")
    );
    println!(
        "token census after bootstrap/measurement: {} resource tokens (ℓ = 5)",
        outcome.metric("resource_tokens").unwrap()
    );

    // 3. The selected metrics of the measurement window.
    let entries = outcome.metric("cs_entries").unwrap();
    let messages = outcome.metric("messages_sent").unwrap();
    println!("critical sections entered in 200k activations: {entries}");
    println!("messages per critical section: {:.1}", messages / entries.max(1.0));
    println!("Jain fairness index: {:.3}", outcome.metric("jain_index").unwrap());
    println!(
        "worst observed waiting time: {} CS entries (Theorem 2 bound: {})",
        outcome.metric("waiting_max").unwrap(),
        topology::euler::theorem2_waiting_bound(
            scenario.spec().config.l,
            scenario.spec().topology.len()
        )
    );

    // 4. The raw trace is still there for anything the metric set does not cover.
    let fairness = FairnessReport::from_trace(&outcome.trace, 8);
    println!("critical sections per process: {:?}", fairness.entries_per_node);
    assert!(fairness.starvation_free(), "no requester may starve once stabilized");
}
