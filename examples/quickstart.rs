//! Quickstart: run self-stabilizing 3-out-of-5 exclusion on the paper's Figure-1 tree.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! **Paper scenario:** Algorithms 1 & 2 on the Figure-1 tree (Sections 3-4) under the
//! saturated workload of the waiting-time analysis.
//!
//! Every process repeatedly requests 2 of the 5 resource units.  The example shows the three
//! phases a user of the library sees: bootstrap (the controller creates the tokens),
//! steady-state service, and the measurements that can be extracted from the trace.

use kl_exclusion::prelude::*;

fn main() {
    // 1. Topology: the 8-process oriented tree of the paper's Figure 1.
    let tree = topology::builders::figure1_tree();
    let n = tree.len();

    // 2. Protocol parameters: any process may ask for up to k = 3 of the l = 5 units.
    let cfg = KlConfig::new(3, 5, n);

    // 3. Application workload: every process keeps requesting 2 units and holds them for 10
    //    activations per critical section.
    let mut net = protocol::ss::network(tree, cfg, workloads::all_saturated(2, 10));

    // 4. An asynchronous-but-fair scheduler (seeded, so the run is reproducible).
    let mut sched = RandomFair::new(2024);

    // 5. Let the protocol bootstrap: from the empty configuration the root's controller
    //    detects the token deficit and creates exactly l resource tokens, one pusher and one
    //    priority token.
    let converged = measure_convergence(&mut net, &mut sched, &cfg, 2_000_000, 2_000);
    println!("bootstrap: {:?}", converged);
    let census = count_tokens(&net);
    println!(
        "token census after bootstrap: {} resource, {} pusher, {} priority",
        census.resource, census.pusher, census.priority
    );

    // 6. Measure a steady-state window.
    net.trace_mut().clear();
    net.metrics_mut().reset();
    run_for(&mut net, &mut sched, 200_000);

    let entries = net.trace().cs_entries(None);
    let messages = net.metrics().messages_sent;
    let fairness = FairnessReport::from_trace(net.trace(), n);
    let waits = waiting_times(net.trace());
    let worst_wait = waits.iter().map(|w| w.cs_entries_waited).max().unwrap_or(0);

    println!("critical sections entered in 200k activations: {entries}");
    println!("messages per critical section: {:.1}", messages as f64 / entries.max(1) as f64);
    println!("critical sections per process: {:?}", fairness.entries_per_node);
    println!("Jain fairness index: {:.3}", fairness.jain_index);
    println!(
        "worst observed waiting time: {worst_wait} CS entries (Theorem 2 bound: {})",
        topology::euler::theorem2_waiting_bound(cfg.l, n)
    );
    assert!(fairness.starvation_free(), "no requester may starve once stabilized");
}
